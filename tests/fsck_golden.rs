//! Golden tests for `check fsck` — the CLI contract CI scripts rely
//! on, exercised over crash-harness-style corpora built with the same
//! WAL primitives `serve` writes with:
//!
//! * a **post-crash** directory (checkpoint + log + torn tail) exits 0
//!   by default and 1 under `--deny-warnings`, reporting `IC062 warn`;
//! * a **post-failover** directory (term fencepost retracting an
//!   orphaned suffix) is clean — the drill leaves no findings;
//! * a **corrupt frame** exits 1 with `IC061 error`;
//! * a **ghost suffix** — a deposed primary's low-term records after a
//!   higher-term fencepost — exits 1 with `IC060 error`, and the
//!   finding is byte-identical across runs;
//! * usage errors (missing or non-directory operand) exit 2.

use intensio_storage::catalog::Database;
use intensio_wal::checkpoint::write_checkpoint;
use intensio_wal::record::Record;
use intensio_wal::segment::{segment_file_name, WAL_SUBDIR};
use std::path::{Path, PathBuf};
use std::process::Command;

fn corpus_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "intensio-fsck-golden-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_segment(dir: &Path, seq: u64, records: &[Record]) {
    let wal = dir.join(WAL_SUBDIR);
    std::fs::create_dir_all(&wal).unwrap();
    let mut buf = Vec::new();
    for r in records {
        buf.extend_from_slice(&r.encode());
    }
    std::fs::write(wal.join(segment_file_name(seq)), &buf).unwrap();
}

fn run_fsck(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_check"))
        .arg("fsck")
        .args(args)
        .output()
        .expect("check binary runs")
}

#[test]
fn post_crash_corpus_warns_on_the_torn_tail_only() {
    // The SIGKILL footprint: a checkpoint, a contiguous log suffix, and
    // a half-written final frame the crash interrupted.
    let dir = corpus_dir("post-crash");
    write_checkpoint(&dir, &Database::new(), None, 2, 2, 0).unwrap();
    write_segment(
        &dir,
        1,
        &[Record::write(3, 3, "a"), Record::write(4, 4, "b")],
    );
    let torn = Record::write(5, 5, "interrupted").encode();
    let seg = dir.join(WAL_SUBDIR).join(segment_file_name(1));
    let mut buf = std::fs::read(&seg).unwrap();
    buf.extend_from_slice(&torn[..torn.len() - 6]);
    std::fs::write(&seg, &buf).unwrap();

    let out = run_fsck(&[dir.to_str().unwrap()]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "a torn tail is recoverable, not a failure:\n{text}"
    );
    assert!(
        text.contains("IC062 warning"),
        "torn tail reported:\n{text}"
    );
    assert!(
        text.contains("0 error(s)"),
        "no errors in a crash shape:\n{text}"
    );

    let strict = run_fsck(&["--deny-warnings", dir.to_str().unwrap()]);
    assert_eq!(
        strict.status.code(),
        Some(1),
        "--deny-warnings promotes the warning to a failing exit"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn post_failover_corpus_is_clean() {
    // The failover-drill footprint: the old primary's term-0 epochs 3-4
    // are retracted by the new primary's term-1 fencepost, which then
    // rewrites epoch 3 onward. Recovery replays this without loss, so
    // the auditor must agree there is nothing to report.
    let dir = corpus_dir("post-failover");
    write_segment(
        &dir,
        1,
        &[
            Record::write(1, 1, "a"),
            Record::write(2, 2, "b"),
            Record::write(3, 3, "orphan3"),
            Record::write(4, 4, "orphan4"),
            Record::term_bump(1, 3, 2),
            Record::write(3, 3, "kept3").with_term(1),
            Record::write(4, 4, "kept4").with_term(1),
        ],
    );
    let out = run_fsck(&["--deny-warnings", dir.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "failover retraction is a healthy shape:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_frame_corpus_fails_with_ic061() {
    let dir = corpus_dir("corrupt");
    write_segment(
        &dir,
        1,
        &[Record::write(1, 1, "a"), Record::write(2, 2, "b")],
    );
    let seg = dir.join(WAL_SUBDIR).join(segment_file_name(1));
    let mut buf = std::fs::read(&seg).unwrap();
    let first = Record::write(1, 1, "a").encode().len();
    buf[first + 12] ^= 0xFF;
    std::fs::write(&seg, &buf).unwrap();

    let out = run_fsck(&[dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "corruption must fail the audit");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("IC061 error"), "corrupt frame named:\n{text}");
    assert!(
        text.contains(&format!("byte {first}")),
        "the finding pins the damaged offset:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ghost_suffix_corpus_fails_with_a_deterministic_ic060() {
    // A deposed primary kept appending term-0 records after the new
    // primary's term-2 history reached the same disk.
    let dir = corpus_dir("ghost");
    write_segment(
        &dir,
        1,
        &[
            Record::write(1, 1, "a").with_term(2),
            Record::write(2, 2, "ghost").with_term(0),
        ],
    );
    let out = run_fsck(&[dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("IC060 error") && text.contains("term 0"),
        "term monotonicity violation named with its term:\n{text}"
    );

    // The finding is stable: a second run renders byte-identically, and
    // the JSON form carries the same code for machine consumers.
    let again = run_fsck(&[dir.to_str().unwrap()]);
    assert_eq!(
        out.stdout, again.stdout,
        "fsck output must be deterministic"
    );
    let json = run_fsck(&["--json", dir.to_str().unwrap()]);
    assert_eq!(json.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&json.stdout).contains(r#""code":"IC060""#),
        "json: {}",
        String::from_utf8_lossy(&json.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_exit_two() {
    let missing = run_fsck(&[]);
    assert_eq!(
        missing.status.code(),
        Some(2),
        "no operand is a usage error"
    );

    let dir = corpus_dir("not-a-dir");
    let file = dir.join("plain-file");
    std::fs::write(&file, b"x").unwrap();
    let nondir = run_fsck(&[file.to_str().unwrap()]);
    assert_eq!(nondir.status.code(), Some(2), "operand must be a directory");
    let _ = std::fs::remove_dir_all(&dir);
}
