//! Property-based tests on cross-crate invariants: interval algebra,
//! induction soundness, QUEL/direct agreement, and the rule-relation
//! round trip — the load-bearing guarantees of the reproduction.

use intensio::prelude::*;
use intensio_induction::{induce_pair, induce_pair_quel, InductionConfig};
use intensio_rules::encode::{decode, encode};
use intensio_storage::tuple::Tuple;
use proptest::prelude::*;

// ---------- strategies ----------

fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::Int),
        (-50i64..50).prop_map(|v| Value::Real(v as f64 / 2.0)),
    ]
}

fn xy_rows() -> impl Strategy<Value = Vec<(i64, u8)>> {
    prop::collection::vec(((0i64..25), (0u8..4)), 1..60)
}

fn xy_relation(rows: &[(i64, u8)]) -> Relation {
    let schema = Schema::new(vec![
        Attribute::new("X", Domain::basic(ValueType::Int)),
        Attribute::new("Y", Domain::char_n(1)),
    ])
    .unwrap();
    let mut rel = Relation::new("R", schema);
    for (x, y) in rows {
        let label = char::from(b'a' + y);
        rel.insert(Tuple::new(vec![
            Value::Int(*x),
            Value::str(label.to_string()),
        ]))
        .unwrap();
    }
    rel
}

fn range_pair() -> impl Strategy<Value = (ValueRange, ValueRange)> {
    let r = (any::<i32>(), any::<i32>()).prop_map(|(a, b)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        ValueRange::closed(i64::from(lo) % 100, i64::from(hi.max(lo)) % 100)
    });
    // Normalize so lo <= hi after the modulo.
    let fix = r.prop_map(|r| {
        let lo = r.lo.clone().unwrap().value;
        let hi = r.hi.clone().unwrap().value;
        if lo.compare(&hi).unwrap().is_le() {
            r
        } else {
            ValueRange::closed(hi, lo)
        }
    });
    (fix.clone(), fix)
}

// ---------- interval algebra ----------

proptest! {
    #[test]
    fn intersect_agrees_with_contains((a, b) in range_pair(), v in -120i64..120) {
        let v = Value::Int(v);
        let both = a.contains(&v) && b.contains(&v);
        match a.intersect(&b) {
            Some(i) => prop_assert_eq!(i.contains(&v), both),
            None => prop_assert!(!both, "empty intersection but {v} is in both"),
        }
    }

    #[test]
    fn subsumption_is_containment((a, b) in range_pair(), v in -120i64..120) {
        let v = Value::Int(v);
        if a.subsumes(&b) && b.contains(&v) {
            prop_assert!(a.contains(&v));
        }
    }

    #[test]
    fn subsumes_is_reflexive_and_antisymmetric_enough((a, b) in range_pair()) {
        prop_assert!(a.subsumes(&a));
        if a.subsumes(&b) && b.subsumes(&a) {
            // Mutual subsumption of closed ranges means equal endpoints.
            prop_assert!(a.lo.clone().unwrap().value.sem_eq(&b.lo.clone().unwrap().value));
            prop_assert!(a.hi.clone().unwrap().value.sem_eq(&b.hi.clone().unwrap().value));
        }
    }

    #[test]
    fn merge_covers_both((a, b) in range_pair(), v in -120i64..120) {
        let v = Value::Int(v);
        if let Some(m) = a.merge(&b) {
            if a.contains(&v) || b.contains(&v) {
                prop_assert!(m.contains(&v));
            }
        }
    }

    #[test]
    fn total_cmp_is_consistent(a in small_value(), b in small_value(), c in small_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        // Transitivity on a sorted triple.
        let mut v = [a, b, c];
        v.sort_by(|x, y| x.total_cmp(y));
        prop_assert_ne!(v[0].total_cmp(&v[1]), Ordering::Greater);
        prop_assert_ne!(v[1].total_cmp(&v[2]), Ordering::Greater);
        prop_assert_ne!(v[0].total_cmp(&v[2]), Ordering::Greater);
    }
}

// ---------- induction soundness ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under the paper's settings, every induced rule is exact: no
    /// training instance satisfies the premise while contradicting the
    /// consequence.
    #[test]
    fn induced_rules_are_exact_on_training_data(rows in xy_rows()) {
        let rel = xy_relation(&rows);
        let rules = induce_pair(&rel, "R", "X", "R", "Y", &InductionConfig::with_min_support(1)).unwrap();
        for r in &rules {
            prop_assert_eq!(r.violations, 0);
            let mut support = 0usize;
            for (x, y) in &rows {
                let label = Value::str(char::from(b'a' + y).to_string());
                let in_range = *x >= r.lo.as_int().unwrap() && *x <= r.hi.as_int().unwrap();
                if in_range {
                    prop_assert!(
                        label.sem_eq(&r.y_value),
                        "instance ({x},{label}) violates {:?}", r
                    );
                    support += 1;
                }
            }
            prop_assert_eq!(support, r.support);
        }
    }

    /// Pruning is monotone in N_c: higher thresholds keep a subset.
    #[test]
    fn pruning_is_monotone(rows in xy_rows(), nc in 1usize..6) {
        let rel = xy_relation(&rows);
        let low = induce_pair(&rel, "R", "X", "R", "Y", &InductionConfig::with_min_support(nc)).unwrap();
        let high = induce_pair(&rel, "R", "X", "R", "Y", &InductionConfig::with_min_support(nc + 1)).unwrap();
        prop_assert!(high.len() <= low.len());
        for r in &high {
            prop_assert!(low.contains(r), "rule {r:?} appeared only at higher N_c");
        }
    }

    /// The published QUEL statement sequence computes the same rules as
    /// the direct implementation, on arbitrary data.
    #[test]
    fn quel_mirror_matches_direct(rows in xy_rows(), nc in 1usize..4) {
        let rel = xy_relation(&rows);
        let cfg = InductionConfig::with_min_support(nc);
        let direct = induce_pair(&rel, "R", "X", "R", "Y", &cfg).unwrap();
        let mut db = Database::new();
        db.create(rel).unwrap();
        let via_quel = induce_pair_quel(&mut db, "R", "X", "Y", &cfg).unwrap();
        prop_assert_eq!(direct, via_quel);
    }

    /// Rules covering disjoint runs: ranges of two rules with different
    /// consequences never overlap (under Remove + full-order runs).
    #[test]
    fn different_consequences_have_disjoint_ranges(rows in xy_rows()) {
        let rel = xy_relation(&rows);
        let rules = induce_pair(&rel, "R", "X", "R", "Y", &InductionConfig::with_min_support(1)).unwrap();
        for (i, a) in rules.iter().enumerate() {
            for b in rules.iter().skip(i + 1) {
                let ra = ValueRange::closed(a.lo.clone(), a.hi.clone());
                let rb = ValueRange::closed(b.lo.clone(), b.hi.clone());
                prop_assert!(
                    !ra.intersects(&rb),
                    "rule ranges overlap: {a:?} vs {b:?}"
                );
            }
        }
    }
}

// ---------- rule relations ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rule_relations_round_trip(rows in xy_rows(), nc in 1usize..3) {
        let rel = xy_relation(&rows);
        let induced = induce_pair(&rel, "R", "X", "R", "Y", &InductionConfig::with_min_support(nc)).unwrap();
        let rules = RuleSet::from_rules(induced.into_iter().map(|r| r.into_rule()));
        let encoded = encode(&rules).unwrap();
        let decoded = decode(&encoded).unwrap();
        prop_assert_eq!(rules.len(), decoded.len());
        for (a, b) in rules.iter().zip(decoded.iter()) {
            prop_assert_eq!(&a.lhs, &b.lhs);
            prop_assert_eq!(&a.rhs, &b.rhs);
            prop_assert_eq!(a.support, b.support);
        }
    }
}

// ---------- storage / CSV ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_round_trips_arbitrary_relations(
        rows in prop::collection::vec((any::<i64>(), "[a-zA-Z ,\"\n]{0,12}"), 0..40)
    ) {
        let schema = Schema::new(vec![
            Attribute::new("N", Domain::basic(ValueType::Int)),
            Attribute::new("S", Domain::basic(ValueType::Str)),
        ]).unwrap();
        let mut rel = Relation::new("T", schema.clone());
        for (n, s) in &rows {
            // CSV cannot distinguish an empty string from NULL; keep
            // strings non-empty for exact round-trips.
            let s = if s.is_empty() { "x".to_string() } else { s.clone() };
            rel.insert(Tuple::new(vec![Value::Int(*n), Value::Str(s)])).unwrap();
        }
        let text = intensio_storage::csv::to_csv(&rel);
        let back = intensio_storage::csv::from_csv("T", schema, &text).unwrap();
        prop_assert_eq!(rel.tuples(), back.tuples());
    }

    #[test]
    fn sort_then_scan_is_ordered(xs in prop::collection::vec(any::<i64>(), 0..50)) {
        let schema = Schema::new(vec![Attribute::new("X", Domain::basic(ValueType::Int))]).unwrap();
        let mut rel = Relation::new("T", schema);
        for x in &xs {
            rel.insert(Tuple::new(vec![Value::Int(*x)])).unwrap();
        }
        let sorted = ops::sort(&rel, &["X"]).unwrap();
        let got: Vec<i64> = sorted.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        let mut want = xs.clone();
        want.sort();
        prop_assert_eq!(got, want);
    }
}
