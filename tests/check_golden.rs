//! Golden tests for the `check` CLI and the three analysis passes over
//! the ship test bed.
//!
//! Two layers, pinned to stable lint codes:
//!
//! * **Process level** — the installed binary (`CARGO_BIN_EXE_check`)
//!   exits 0 on the pristine Appendix C database even under
//!   `--deny-warnings`, and exits 1 for each seeded mutation. This is
//!   the exact contract CI scripts rely on.
//! * **Library level** — the same mutations applied through the
//!   `intensio-check` API produce the exact codes and spans the CLI
//!   printed when these goldens were recorded: `IC001` at
//!   `schema:14:49`, `IC020` naming the overlap, `IC044` at
//!   `query:1:81` carrying the refuting rule as provenance.

use intensio::check::{check_rules, check_schema_text, check_sql, RuleCheckConfig, Severity};
use intensio::induction::{Ils, InductionConfig};
use intensio::rules::rule::{AttrId, Clause, Rule};
use intensio::shipdb::{ship_database, ship_model, SHIP_SCHEMA_KER};
use std::process::Command;

fn run_check(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_check"))
        .args(args)
        .output()
        .expect("check binary runs")
}

#[test]
fn cli_pristine_shipdb_is_clean_even_denying_warnings() {
    let out = run_check(&["--shipdb", "--deny-warnings"]);
    assert!(
        out.status.success(),
        "pristine ship db must pass --deny-warnings:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn cli_each_seeded_mutation_fails_with_its_code() {
    for (mutation, code) in [
        ("isa-cycle", "IC001"),
        ("rule-conflict", "IC020"),
        ("empty-query", "IC044"),
    ] {
        let out = run_check(&["--mutate", mutation]);
        assert_eq!(
            out.status.code(),
            Some(1),
            "--mutate {mutation} must exit 1"
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.contains(&format!("{code} error")),
            "--mutate {mutation} must report {code}, got:\n{text}"
        );
    }
}

#[test]
fn cli_json_output_carries_codes_and_severities() {
    let out = run_check(&["--mutate", "isa-cycle", "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(r#""code":"IC001""#), "json: {text}");
    assert!(text.contains(r#""severity":"error""#), "json: {text}");
}

#[test]
fn golden_isa_cycle_is_ic001_at_the_closing_edge() {
    let mutated = format!("{SHIP_SCHEMA_KER}\nCLASS isa SSBN with Type = \"SSBN\"\n");
    let mut report = check_schema_text(&mutated);
    report.sort();

    let cycle: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == "IC001")
        .collect();
    assert_eq!(
        cycle.len(),
        1,
        "exactly one cycle:\n{}",
        report.render_text()
    );
    let d = cycle[0];
    assert_eq!(d.severity, Severity::Error);
    // The walk order is sorted, so the reported cycle is stable.
    assert!(d.message.contains("SSBN -> CLASS -> SSBN"), "{}", d.message);
    let span = d
        .span
        .as_ref()
        .expect("cycle diagnostic points at the isa edge");
    assert_eq!((span.line, span.col), (14, 49), "span drifted: {span:?}");
}

#[test]
fn golden_seeded_conflict_is_ic020_with_the_overlap_named() {
    let db = ship_database().unwrap();
    let model = ship_model().unwrap();
    let cfg = InductionConfig::default();
    let mut rules = Ils::new(&model, cfg).induce(&db).unwrap().rules;
    rules.push(
        Rule::new(
            0,
            vec![Clause::between(
                AttrId::new("CLASS", "Displacement"),
                6000,
                9000,
            )],
            Clause::equals(AttrId::new("CLASS", "Type"), "SSN"),
        )
        .with_subtype("SSN")
        .with_support(4),
    );

    let report = check_rules(
        &rules,
        Some(&db),
        &RuleCheckConfig {
            min_support: cfg.min_support,
        },
    );
    assert_eq!(report.count(Severity::Error), 1, "{}", report.render_text());
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "IC020")
        .expect("the seeded overlap is flagged");
    assert!(
        d.message.contains("CLASS.Displacement in [7250, 9000]"),
        "overlap interval drifted: {}",
        d.message
    );
    // Both rules ride along as provenance.
    assert_eq!(d.notes.len(), 2, "{d:?}");
}

#[test]
fn golden_empty_query_is_ic044_with_the_refuting_rule() {
    let db = ship_database().unwrap();
    let model = ship_model().unwrap();
    let rules = Ils::new(&model, InductionConfig::default())
        .induce(&db)
        .unwrap()
        .rules;

    let sql = "SELECT Class FROM CLASS WHERE Displacement >= 8000 \
               AND Displacement <= 9000 AND Type = \"SSN\"";
    let report = check_sql(sql, &db, &rules);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "IC044")
        .unwrap_or_else(|| panic!("IC044 missing:\n{}", report.render_text()));
    assert_eq!(d.severity, Severity::Error);
    let span = d
        .span
        .as_ref()
        .expect("points at the contradicted conjunct");
    assert_eq!((span.line, span.col), (1, 81), "span drifted: {span:?}");
    assert!(
        d.notes.iter().any(|n| n.contains("refuted by")),
        "the refuting rule is the answer's provenance: {d:?}"
    );
}
