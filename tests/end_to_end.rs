//! Workspace-level integration: the full pipeline from KER schema text
//! through storage, QUEL-driven induction, rule relations, and SQL-driven
//! inference — crossing every crate boundary.

use intensio::prelude::*;
use intensio::shipdb;
use intensio_storage::tuple;

#[test]
fn full_pipeline_on_the_ship_test_bed() {
    let mut iqp = IntensionalQueryProcessor::new(
        shipdb::ship_database().unwrap(),
        shipdb::ship_model().unwrap(),
    );
    let stats = iqp.learn().unwrap();
    assert!(stats.rules_kept >= 14);

    // Example 1 through the assembled system.
    let a = iqp
        .query(
            "SELECT SUBMARINE.ID, CLASS.TYPE FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
        )
        .unwrap();
    assert_eq!(a.extensional.len(), 2);
    assert!(a.intensional.subtypes().contains(&"SSBN"));
}

#[test]
fn rules_survive_csv_relocation_between_databases() {
    // §5.2.2: knowledge is bound to data as rule relations so a database
    // and its rules can be relocated together. Simulate a relocation:
    // learn at site A, export rule relations through CSV, import at
    // site B, and answer intensionally at B without re-learning.
    let mut site_a = IntensionalQueryProcessor::new(
        shipdb::ship_database().unwrap(),
        shipdb::ship_model().unwrap(),
    );
    site_a.learn().unwrap();
    let exported = site_a.dictionary().export_rule_relations().unwrap();

    // Ship as CSV (what would travel with the database files).
    let rules_csv = intensio_storage::csv::to_csv(&exported.rules);
    let map_csv = intensio_storage::csv::to_csv(&exported.value_map);
    let cat_csv = intensio_storage::csv::to_csv(&exported.attr_catalog);
    let meta_csv = intensio_storage::csv::to_csv(&exported.meta);

    let rebuilt = intensio_rules::encode::RuleRelations {
        rules: intensio_storage::csv::from_csv(
            "RULES",
            exported.rules.schema().clone(),
            &rules_csv,
        )
        .unwrap(),
        value_map: intensio_storage::csv::from_csv(
            "ATTRVALUEMAP",
            exported.value_map.schema().clone(),
            &map_csv,
        )
        .unwrap(),
        attr_catalog: intensio_storage::csv::from_csv(
            "ATTRCATALOG",
            exported.attr_catalog.schema().clone(),
            &cat_csv,
        )
        .unwrap(),
        meta: intensio_storage::csv::from_csv(
            "RULEMETA",
            exported.meta.schema().clone(),
            &meta_csv,
        )
        .unwrap(),
    };

    let mut site_b = IntensionalQueryProcessor::new(
        shipdb::ship_database().unwrap(),
        shipdb::ship_model().unwrap(),
    );
    site_b
        .dictionary_mut()
        .import_rule_relations(&rebuilt)
        .unwrap();
    let a = site_b
        .query_intensional(
            "SELECT SUBMARINE.NAME FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = \"SSBN\"",
        )
        .unwrap();
    assert!(!a.partial.is_empty());
}

#[test]
fn quel_and_sql_agree_on_the_same_data() {
    // The same selection through both query languages.
    let mut db = shipdb::ship_database().unwrap();
    let via_sql = intensio::sql::query(
        &db,
        "SELECT Class FROM CLASS WHERE Displacement > 8000 ORDER BY Class",
    )
    .unwrap();

    let mut session = intensio::quel::Session::new();
    session.execute(&mut db, "range of c is CLASS").unwrap();
    let via_quel = session
        .execute(
            &mut db,
            "retrieve (c.Class) where c.Displacement > 8000 sort by Class",
        )
        .unwrap();
    let via_quel = via_quel.relation().unwrap();

    assert_eq!(via_sql.len(), via_quel.len());
    for (a, b) in via_sql.iter().zip(via_quel.iter()) {
        assert_eq!(a.get(0), b.get(0));
    }
}

#[test]
fn database_updates_flow_through_relearning() {
    // Add the R_new instance family the paper discusses: more class-1301
    // boats would push the 1301 rule past N_c and complete Example 2's
    // answer.
    let mut db = shipdb::ship_database().unwrap();
    {
        let sub = db.get_mut("SUBMARINE").unwrap();
        sub.insert(tuple!["SSBN131", "Red October", "1301"])
            .unwrap();
        sub.insert(tuple!["SSBN132", "Arkhangelsk", "1301"])
            .unwrap();
    }
    let mut iqp = IntensionalQueryProcessor::new(db, shipdb::ship_model().unwrap());
    iqp.learn().unwrap();

    // Now SSBN130..SSBN132 form a 3-ship run for class 1301.
    let found = iqp
        .dictionary()
        .rules()
        .iter()
        .any(|r| r.rhs_subtype.as_deref() == Some("C1301") && r.support >= 3);
    assert!(found, "the enlarged 1301 class must clear N_c = 3");
}

#[test]
fn decision_tree_agrees_with_range_rules_on_ship_types() {
    // The ID3 learner and the pairwise algorithm should draw the same
    // SSN/SSBN boundary from the CLASS relation.
    let db = shipdb::ship_database().unwrap();
    let class = db.get("CLASS").unwrap();
    let tree = intensio::induction::tree::learn(
        class,
        &["Displacement"],
        "Type",
        &intensio::induction::tree::TreeConfig::default(),
    )
    .unwrap();
    assert_eq!(tree.accuracy_on(class), 1.0);

    let rules = intensio::induction::induce_pair(
        class,
        "CLASS",
        "Displacement",
        "CLASS",
        "Type",
        &InductionConfig::with_min_support(1),
    )
    .unwrap();
    // Tree threshold between the SSN max (6955) and SSBN min (7250);
    // range rules end/start exactly there.
    let ssn_rule = rules
        .iter()
        .find(|r| r.y_value == Value::str("SSN"))
        .unwrap();
    let ssbn_rule = rules
        .iter()
        .find(|r| r.y_value == Value::str("SSBN"))
        .unwrap();
    assert_eq!(ssn_rule.hi, Value::Int(6955));
    assert_eq!(ssbn_rule.lo, Value::Int(7250));
    assert_eq!(
        tree.classify(&tuple!["????", "?", "??", 7000]),
        Value::str("SSN"),
        "the tree's midpoint threshold (7102.5) puts 7000 on the SSN side"
    );
}

#[test]
fn ker_text_round_trips_through_model_and_rendering() {
    let model = shipdb::ship_model().unwrap();
    let rendered = intensio::ker::render::render_model(&model);
    assert!(rendered.contains("SUBMARINE"));
    assert!(rendered.contains("├── SSBN") || rendered.contains("└── SSBN"));
    // Object-type boxes render the constraint rules.
    assert!(rendered.contains("then x isa SSBN"));
}

#[test]
fn synthetic_fleet_pipeline_at_scale() {
    let fleet = shipdb::generate(shipdb::FleetConfig {
        seed: 3,
        n_types: 5,
        classes_per_type: 6,
        ships_per_class: 10,
        sonars_per_family: 3,
        id_noise: 0.1,
        overlapping_bands: false,
    })
    .unwrap();
    let mut iqp = IntensionalQueryProcessor::new(fleet.db.clone(), fleet.ker_model())
        .with_induction_config(InductionConfig::with_min_support(3));
    iqp.learn().unwrap();

    // Every type is recoverable intensionally from its band.
    for (ty, (lo, hi)) in &fleet.type_band {
        let sql = format!(
            "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS \
             AND CLASS.DISPLACEMENT > {} AND CLASS.DISPLACEMENT < {}",
            lo - 1,
            hi + 1
        );
        let a = iqp.query_intensional(&sql).unwrap();
        assert!(
            a.certain.iter().any(|f| f.value == Value::str(ty.clone())),
            "type {ty} not concluded from its band"
        );
    }
}

#[test]
fn multi_clause_tree_rules_drive_forward_inference() {
    use intensio::induction::Ils;
    use intensio_storage::tuple;

    let schema = Schema::new(vec![
        Attribute::key("EmpId", Domain::char_n(5)),
        Attribute::new("Dept", Domain::char_n(8)),
        Attribute::new("Salary", Domain::basic(ValueType::Int)),
        Attribute::new("Grade", Domain::char_n(8)),
    ])
    .unwrap();
    let mut emp = Relation::new("EMPLOYEE", schema);
    let rows: &[(&str, &str, i64, &str)] = &[
        ("E0001", "ENG", 120_000, "SENIOR"),
        ("E0002", "ENG", 110_000, "SENIOR"),
        ("E0003", "ENG", 95_000, "SENIOR"),
        ("E0004", "ENG", 80_000, "MID"),
        ("E0005", "ENG", 60_000, "MID"),
        ("E0006", "SALES", 120_000, "MID"),
        ("E0007", "SALES", 110_000, "MID"),
        ("E0008", "SALES", 95_000, "MID"),
        ("E0009", "SALES", 50_000, "JUNIOR"),
        ("E0010", "ENG", 40_000, "JUNIOR"),
        ("E0011", "SALES", 45_000, "JUNIOR"),
    ];
    for (id, dept, salary, grade) in rows {
        emp.insert(tuple![*id, *dept, *salary, *grade]).unwrap();
    }
    let mut db = Database::new();
    db.create(emp).unwrap();
    let model = KerModel::parse(
        r#"
        object type EMPLOYEE
          has key: EmpId domain: CHAR[5]
          has: Dept domain: CHAR[8]
          has: Salary domain: INTEGER
          has: Grade domain: CHAR[8]
        EMPLOYEE contains JUNIOR, MID, SENIOR
        JUNIOR isa EMPLOYEE with Grade = "JUNIOR"
        MID    isa EMPLOYEE with Grade = "MID"
        SENIOR isa EMPLOYEE with Grade = "SENIOR"
        "#,
    )
    .unwrap();

    let ils = Ils::new(&model, InductionConfig::with_min_support(2));
    let rules = ils.induce_with_trees(&db).unwrap().rules;
    let engine = InferenceEngine::new(&model, &rules, &db, InferenceConfig::default()).unwrap();

    // Both conditions present: the conjunctive tree rule fires.
    let q =
        intensio::sql::parse("SELECT EmpId FROM EMPLOYEE WHERE Salary > 100000 AND Dept = 'ENG'")
            .unwrap();
    let a = engine.infer(&intensio::sql::analyze(&db, &q).unwrap());
    assert!(
        a.subtypes().contains(&"SENIOR"),
        "conjunctive premise must fire: {:?}",
        a.certain
    );
}
