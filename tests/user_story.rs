//! A full user story across the public API: build, learn, ask, optimize,
//! summarize, relocate, update, re-learn — the lifecycle a downstream
//! adopter of the library would follow.

use intensio::prelude::*;
use intensio_storage::tuple;

#[test]
fn analyst_lifecycle() {
    // Day 1: stand the system up and learn.
    let mut iqp = IntensionalQueryProcessor::new(
        intensio::shipdb::ship_database().unwrap(),
        intensio::shipdb::ship_model().unwrap(),
    );
    let stats = iqp.learn().unwrap();
    assert!(stats.rules_kept >= 14);

    // Ask Example 3; the answer carries all three layers.
    let a = iqp
        .query(
            "SELECT SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE \
             FROM SUBMARINE, CLASS, INSTALL \
             WHERE SUBMARINE.CLASS = CLASS.CLASS \
             AND SUBMARINE.ID = INSTALL.SHIP AND INSTALL.SONAR = \"BQS-04\"",
        )
        .unwrap();
    assert_eq!(a.extensional.len(), 4);
    assert!(a.intensional.subtypes().contains(&"SSN"));
    let rendered = a.render();
    assert!(rendered.contains("In short:"), "{rendered}");
    assert!(rendered.contains("Aggregate response:"), "{rendered}");
    assert!(rendered.contains("all SSN"), "{rendered}");

    // The same rules optimize a heavy query.
    match iqp
        .optimize(
            "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
        )
        .unwrap()
    {
        Optimized::Rewritten { query, added } => {
            assert!(!added.is_empty());
            let before = iqp
                .query_extensional(
                    "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
                     WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
                )
                .unwrap();
            let after = intensio::sql::execute(iqp.db(), &query).unwrap();
            assert_eq!(before.len(), after.len());
        }
        other => panic!("expected a rewrite, got {other:?}"),
    }

    // Ship the workspace to a second site.
    let dir = std::env::temp_dir().join(format!("intensio_story_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    save_workspace(&iqp, &dir).unwrap();
    let mut site_b = load_workspace(&dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();

    // Site B answers without re-learning...
    let b = site_b
        .query_intensional(
            "SELECT SUBMARINE.NAME FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = \"SSBN\"",
        )
        .unwrap();
    assert!(!b.partial.is_empty());

    // ... then receives new boats, invalidating the rules, and re-learns.
    site_b
        .db_mut()
        .get_mut("SUBMARINE")
        .unwrap()
        .insert(tuple!["SSBN131", "Red October", "1301"])
        .unwrap();
    assert!(
        !site_b.dictionary().has_rules(),
        "mutation invalidates rules"
    );
    let stats_b = site_b.learn().unwrap();
    assert!(stats_b.rules_kept > 0);
}

#[test]
fn rule_set_minimize_preserves_answers() {
    let mut iqp = IntensionalQueryProcessor::new(
        intensio::shipdb::ship_database().unwrap(),
        intensio::shipdb::ship_model().unwrap(),
    )
    .with_induction_config(InductionConfig::with_min_support(1));
    iqp.learn().unwrap();

    let before = iqp
        .query_intensional(
            "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
        )
        .unwrap();

    // Minimize the rule set (drop subsumed rules) and re-ask.
    let mut rules = iqp.dictionary().rules().clone();
    let removed = rules.minimize();
    iqp.dictionary_mut().set_rules(rules);
    let after = iqp
        .query_intensional(
            "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
        )
        .unwrap();

    // Forward conclusions are preserved (subsumers answer for the
    // dropped rules); the number removed is reported.
    let before_subtypes: std::collections::BTreeSet<&str> = before.subtypes().into_iter().collect();
    let after_subtypes: std::collections::BTreeSet<&str> = after.subtypes().into_iter().collect();
    assert_eq!(before_subtypes, after_subtypes);
    // (The ship rule set at N_c = 1 may or may not contain subsumed
    // rules; either way minimize must not break answers.)
    let _ = removed;
}
