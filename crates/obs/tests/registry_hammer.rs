//! The metrics registry must be race-free under the same 8-thread
//! pressure the serving layer's hammer test applies: concurrent counter
//! increments, histogram records, gauge writes, and snapshots must
//! neither lose updates nor corrupt state.

use intensio_obs::{Registry, Stage};
use std::sync::Arc;

const THREADS: usize = 8;
const ITERS: u64 = 5_000;

#[test]
fn eight_threads_hammering_one_registry_lose_nothing() {
    let registry = Arc::new(Registry::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let registry = registry.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..ITERS {
                registry.inc("hammer.shared");
                registry.add(&format!("hammer.thread.{t}"), 2);
                registry.stage(Stage::Request).record_us(i % 1_000);
                registry.gauge("hammer.gauge", i as i64);
                if i % 64 == 0 {
                    // Snapshots interleave with writers; they must see a
                    // consistent (never corrupted, never panicking) view.
                    let snap = registry.snapshot();
                    assert!(snap.counters.get("hammer.shared").copied().unwrap_or(0) > 0);
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("hammer thread panicked");
    }

    let snap = registry.snapshot();
    assert_eq!(snap.counters["hammer.shared"], THREADS as u64 * ITERS);
    for t in 0..THREADS {
        assert_eq!(snap.counters[&format!("hammer.thread.{t}")], 2 * ITERS);
    }
    let request = snap.stage("request").expect("request stage present");
    assert_eq!(request.count, THREADS as u64 * ITERS);
    assert_eq!(request.buckets.iter().sum::<u64>(), request.count);
    let gauge = snap.gauges["hammer.gauge"];
    assert!((0..ITERS as i64).contains(&gauge));
}

#[test]
fn concurrent_stage_spans_on_the_global_registry_count_exactly() {
    // Spans funnel through the process-global registry; record a large
    // known number across threads and check the delta.
    let before = intensio_obs::metrics().stage(Stage::Scan).count();
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        handles.push(std::thread::spawn(|| {
            for _ in 0..ITERS {
                drop(intensio_obs::Span::stage("hammer.scan", Stage::Scan));
            }
        }));
    }
    for h in handles {
        h.join().expect("span thread panicked");
    }
    let after = intensio_obs::metrics().stage(Stage::Scan).count();
    assert!(after - before >= THREADS as u64 * ITERS);
}
