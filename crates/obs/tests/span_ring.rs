//! Span ring buffer coverage: wraparound past the 512-entry capacity,
//! nested spans surviving `catch_unwind` (the serve tier's worker
//! restart path), and N concurrent writer threads (the same hammer
//! pattern as the registry tests).
//!
//! The ring and the enabled flag are process-global, so every test in
//! this binary serializes on one gate.

use intensio_obs::span::{clear_spans, RING_CAPACITY};
use intensio_obs::{recent_spans, Span};
use std::sync::{Mutex, MutexGuard};

fn ring_gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    let guard = GATE.lock().unwrap_or_else(|e| e.into_inner());
    clear_spans();
    guard
}

#[test]
fn ring_wraps_past_capacity_keeping_the_newest_spans() {
    let _gate = ring_gate();
    // 3 batches of spans, far past capacity; names cycle through a
    // small static set (span names are &'static str).
    const NAMES: [&str; 4] = ["wrap.a", "wrap.b", "wrap.c", "wrap.d"];
    let total = RING_CAPACITY * 3;
    for i in 0..total {
        drop(Span::enter(NAMES[i % NAMES.len()]).with_field("i", i));
    }
    let spans = recent_spans();
    assert_eq!(spans.len(), RING_CAPACITY, "ring is bounded at capacity");
    // The survivors are exactly the newest `RING_CAPACITY` spans, in
    // completion order: their `i` fields are contiguous and end at the
    // last one pushed.
    let seqs: Vec<usize> = spans
        .iter()
        .map(|s| s.fields[0].1.parse::<usize>().unwrap())
        .collect();
    assert_eq!(*seqs.last().unwrap(), total - 1);
    assert_eq!(*seqs.first().unwrap(), total - RING_CAPACITY);
    assert!(
        seqs.windows(2).all(|w| w[1] == w[0] + 1),
        "oldest evicted first, order kept"
    );
}

#[test]
fn nested_spans_survive_catch_unwind_without_corrupting_the_stack() {
    let _gate = ring_gate();
    // A panic mid-span (the worker-restart path): the open span's drop
    // still runs during unwinding, the thread-local stack pops back to
    // empty, and spans opened after the restart nest correctly.
    let unwound = std::panic::catch_unwind(|| {
        let _outer = Span::enter("unwind.outer");
        let _inner = Span::enter("unwind.inner");
        panic!("worker dies mid-span");
    });
    assert!(unwound.is_err());
    {
        let _outer = Span::enter("unwind.after.outer");
        drop(Span::enter("unwind.after.inner"));
    }
    let spans = recent_spans();
    // Both panicked spans were recorded on the way out, innermost first.
    let inner_pos = spans.iter().position(|s| s.name == "unwind.inner");
    let outer_pos = spans.iter().position(|s| s.name == "unwind.outer");
    assert!(inner_pos.is_some() && inner_pos < outer_pos);
    // The post-restart spans see a clean stack: depth restarts at 0.
    let after_outer = spans
        .iter()
        .find(|s| s.name == "unwind.after.outer")
        .expect("post-unwind span recorded");
    assert_eq!(after_outer.depth, 0);
    assert_eq!(after_outer.parent, None);
    let after_inner = spans
        .iter()
        .find(|s| s.name == "unwind.after.inner")
        .expect("post-unwind nested span recorded");
    assert_eq!(after_inner.depth, 1);
    assert_eq!(after_inner.parent, Some("unwind.after.outer"));
}

#[test]
fn concurrent_writers_never_corrupt_the_ring() {
    let _gate = ring_gate();
    const THREADS: usize = 8;
    const ITERS: usize = 2_000; // well past capacity in aggregate
    const NAMES: [&str; 8] = [
        "hammer.t0",
        "hammer.t1",
        "hammer.t2",
        "hammer.t3",
        "hammer.t4",
        "hammer.t5",
        "hammer.t6",
        "hammer.t7",
    ];
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..ITERS {
                    let outer = Span::enter(NAMES[t]).with_field("i", i);
                    drop(Span::enter("hammer.inner"));
                    drop(outer);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("hammer thread never panics");
    }
    let spans = recent_spans();
    assert_eq!(
        spans.len(),
        RING_CAPACITY,
        "ring stays bounded under contention"
    );
    // Every record is intact: a known name, sane depth, parented inner
    // spans (nesting is per-thread, so an inner span's parent is its
    // own thread's outer span, whatever interleaving happened).
    for s in &spans {
        assert!(
            s.name == "hammer.inner" || NAMES.contains(&s.name),
            "unexpected record {s:?}"
        );
        if s.name == "hammer.inner" {
            assert_eq!(s.depth, 1);
            assert!(NAMES.contains(&s.parent.expect("inner has a parent")));
        } else {
            assert_eq!(s.depth, 0);
        }
    }
}
