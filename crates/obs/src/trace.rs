//! Distributed tracing: 64-bit trace ids minted at request admission,
//! per-hop span ids, thread-local trace-context propagation, a bounded
//! JSONL trace sink, and a per-thread span collector for `PROFILE`.
//!
//! A trace context is two 64-bit ids: the trace id (constant across
//! every hop of one logical request, including a REDIRECT to the
//! primary and the `#repl` record that ships its write) and the parent
//! span id (the most recent span on the *previous* hop, so a
//! follower's apply span links to the primary's commit span). The wire
//! encoding is `<trace:016x>/<span:016x>`.

use crate::span::SpanRecord;
use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A propagated trace context: the request's trace id plus the span id
/// of the nearest enclosing span on the sending hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The 64-bit trace id, constant across every hop (never 0).
    pub trace_id: u64,
    /// The parent span id from the previous hop (0 = no parent).
    pub parent_span: u64,
}

impl TraceContext {
    /// Wire encoding: `<trace:016x>/<span:016x>`.
    pub fn encode(&self) -> String {
        format!("{:016x}/{:016x}", self.trace_id, self.parent_span)
    }

    /// Parse the wire encoding produced by [`TraceContext::encode`].
    pub fn parse(s: &str) -> Option<TraceContext> {
        let (t, p) = s.split_once('/')?;
        if t.len() != 16 || p.len() != 16 {
            return None;
        }
        let trace_id = u64::from_str_radix(t, 16).ok()?;
        let parent_span = u64::from_str_radix(p, 16).ok()?;
        if trace_id == 0 {
            return None;
        }
        Some(TraceContext {
            trace_id,
            parent_span,
        })
    }
}

/// Mint a fresh nonzero 64-bit id (trace or span). A splitmix64 walk
/// over a process-global counter seeded from the clock and the pid:
/// unique within a process, collision-unlikely across a cluster.
pub fn mint_id() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    static SEED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    let seed = *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        nanos ^ ((std::process::id() as u64) << 32)
    });
    loop {
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        // splitmix64 finalizer over seed + counter.
        let mut z = seed
            .wrapping_add(n)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        if z != 0 {
            return z;
        }
    }
}

thread_local! {
    /// The trace context installed on this thread, if any. Spans opened
    /// while a context is installed mint span ids and join the trace.
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };

    /// When `Some`, every span closed on this thread is also appended
    /// here (the `PROFILE` collector).
    static COLLECT: RefCell<Option<Vec<SpanRecord>>> = const { RefCell::new(None) };
}

/// The trace context installed on this thread, if any.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(Cell::get)
}

/// Install `ctx` as this thread's trace context for the guard's
/// lifetime; the previous context (worker threads are reused across
/// requests) is restored on drop.
pub fn with_context(ctx: Option<TraceContext>) -> ContextGuard {
    let prev = CURRENT.with(|c| c.replace(ctx));
    ContextGuard { prev }
}

/// Restores the previously installed trace context on drop. Created by
/// [`with_context`].
#[derive(Debug)]
pub struct ContextGuard {
    prev: Option<TraceContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev.take()));
    }
}

/// The JSONL trace sink: one bounded file per process.
#[derive(Debug)]
struct Sink {
    file: std::io::BufWriter<std::fs::File>,
    written: u64,
}

/// Sink file size cap: past it, events are counted as dropped rather
/// than written, so a long-lived server cannot fill the disk.
const SINK_BYTE_CAP: u64 = 32 * 1024 * 1024;

static SINK: Mutex<Option<Sink>> = Mutex::new(None);
/// Sampling rate in permille (0..=1000); 0 means the sink is inactive.
static SAMPLE_PERMILLE: AtomicU64 = AtomicU64::new(0);
/// Admission counter driving the deterministic sampling decision.
static SAMPLE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Open (or truncate) the JSONL trace sink at
/// `dir/trace-<pid>.jsonl` and set the sampling rate (`0.0..=1.0`).
/// Returns the sink path. Passing `sample <= 0` closes the sink.
pub fn set_trace_sink(dir: &Path, sample: f64) -> std::io::Result<PathBuf> {
    let permille = (sample.clamp(0.0, 1.0) * 1000.0).round() as u64;
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("trace-{}.jsonl", std::process::id()));
    let file = std::fs::File::create(&path)?;
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = Some(Sink {
        file: std::io::BufWriter::new(file),
        written: 0,
    });
    SAMPLE_PERMILLE.store(permille, Ordering::Relaxed);
    // Events buffer through a BufWriter; a background flusher bounds
    // how stale the on-disk file can be, so readers (and a crash) see
    // recent traces without paying a write syscall per span.
    static FLUSHER: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    FLUSHER.get_or_init(|| {
        let spawned = std::thread::Builder::new()
            .name("intensio-trace-flush".to_string())
            .spawn(|| loop {
                std::thread::sleep(std::time::Duration::from_millis(200));
                flush_trace_sink();
            });
        // Best-effort: without the thread, events still land on flush
        // calls from shutdown paths.
        drop(spawned);
    });
    Ok(path)
}

/// Whether the trace sink is open and sampling at a nonzero rate.
pub fn sink_active() -> bool {
    SAMPLE_PERMILLE.load(Ordering::Relaxed) > 0
}

/// Flush buffered trace events to disk (tests and shutdown paths).
pub fn flush_trace_sink() {
    if let Some(sink) = SINK.lock().unwrap_or_else(|e| e.into_inner()).as_mut() {
        let _ = sink.file.flush();
    }
}

/// Mint a fresh root trace context for a request admitted without one,
/// subject to the sink's sampling rate. Returns `None` when the sink is
/// inactive or this request lost the sampling draw.
pub fn start_trace() -> Option<TraceContext> {
    let permille = SAMPLE_PERMILLE.load(Ordering::Relaxed);
    if permille == 0 {
        return None;
    }
    let n = SAMPLE_SEQ.fetch_add(1, Ordering::Relaxed);
    if n % 1000 >= permille {
        return None;
    }
    Some(TraceContext {
        trace_id: mint_id(),
        parent_span: 0,
    })
}

/// Dispatch a closed span: to the per-thread `PROFILE` collector when
/// one is active, and to the JSONL sink when the span belongs to a
/// trace. Called from `Span`'s drop.
pub(crate) fn record_closed(record: &SpanRecord) {
    COLLECT.with(|c| {
        if let Some(buf) = c.borrow_mut().as_mut() {
            buf.push(record.clone());
        }
    });
    if record.trace_id == 0 || !sink_active() {
        return;
    }
    let mut line = String::with_capacity(128);
    let _ = write!(
        line,
        "{{\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\",\"name\":\"{}\",\"us\":{},\"depth\":{}",
        record.trace_id,
        record.span_id,
        record.parent_span,
        escape(record.name),
        record.duration_us,
        record.depth
    );
    if !record.fields.is_empty() {
        line.push_str(",\"fields\":{");
        for (i, (k, v)) in record.fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "\"{}\":\"{}\"", escape(k), escape(v));
        }
        line.push('}');
    }
    line.push_str("}\n");
    let mut guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(sink) = guard.as_mut() {
        if sink.written >= SINK_BYTE_CAP {
            drop(guard);
            crate::inc("trace.events_dropped");
            return;
        }
        sink.written += line.len() as u64;
        if sink.file.write_all(line.as_bytes()).is_ok() {
            drop(guard);
            crate::inc("trace.events");
        }
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// Start collecting every span closed on this thread (the `PROFILE`
/// path). Single level: a nested collector replaces the outer one.
pub fn collect_spans() -> Collector {
    COLLECT.with(|c| *c.borrow_mut() = Some(Vec::new()));
    Collector { _private: () }
}

/// Owns the thread's span collection started by [`collect_spans`];
/// call [`Collector::take`] to stop collecting and get the spans.
#[derive(Debug)]
pub struct Collector {
    _private: (),
}

impl Collector {
    /// Stop collecting and return every span closed on this thread
    /// since [`collect_spans`], in close order (children first).
    pub fn take(self) -> Vec<SpanRecord> {
        COLLECT.with(|c| c.borrow_mut().take()).unwrap_or_default()
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        COLLECT.with(|c| {
            c.borrow_mut().take();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_encoding_round_trips() {
        let ctx = TraceContext {
            trace_id: 0xdead_beef_0000_1234,
            parent_span: 7,
        };
        let wire = ctx.encode();
        assert_eq!(wire, "deadbeef00001234/0000000000000007");
        assert_eq!(TraceContext::parse(&wire), Some(ctx));
        assert_eq!(TraceContext::parse("garbage"), None);
        assert_eq!(TraceContext::parse("00/00"), None);
        // A zero trace id is "no trace", never a valid context.
        assert_eq!(
            TraceContext::parse("0000000000000000/0000000000000001"),
            None
        );
    }

    #[test]
    fn minted_ids_are_nonzero_and_distinct() {
        let a = mint_id();
        let b = mint_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn with_context_restores_the_previous_context_on_drop() {
        let outer = TraceContext {
            trace_id: 1,
            parent_span: 0,
        };
        let inner = TraceContext {
            trace_id: 2,
            parent_span: 9,
        };
        let _g1 = with_context(Some(outer));
        assert_eq!(current(), Some(outer));
        {
            let _g2 = with_context(Some(inner));
            assert_eq!(current(), Some(inner));
        }
        assert_eq!(current(), Some(outer));
    }
}
