//! # intensio-obs
//!
//! A zero-dependency structured tracing and metrics layer for the
//! intensional query pipeline. The paper's value proposition is
//! *explanatory* — an intensional answer is only trustworthy if you can
//! see which induced rules fired, in which inference direction, and at
//! what cost — so every stage of the pipeline (parse → inference →
//! induction → storage scan → serve) records into this crate:
//!
//! * **Spans** ([`Span`]): RAII-timed regions with key/value fields,
//!   parent/child nesting (thread-local), and thread-safe collection
//!   into a bounded ring buffer ([`recent_spans`]).
//! * **Metrics** ([`Registry`]): named counters, gauges, and
//!   fixed-bucket latency histograms per pipeline [`Stage`], with
//!   p50/p95/p99 estimation, exported as Prometheus-style text and as
//!   JSON ([`MetricsSnapshot`]).
//! * **Verbosity and slow-span logging**: a global [`Level`]
//!   (silent/normal/verbose, also settable via the `INTENSIO_LOG`
//!   environment variable) and a configurable slow-span threshold that
//!   logs any span exceeding it to stderr.
//!
//! All recording funnels through one process-global [`Registry`]
//! (instrumented crates cannot thread a handle through every
//! signature); independent registries can still be constructed for
//! tests. Recording is gated on a global enabled flag so benchmarks can
//! measure the instrumentation's own overhead:
//!
//! ```
//! use intensio_obs::{self as obs, Span, Stage};
//!
//! let _span = Span::stage("inference.forward", Stage::Inference)
//!     .with_field("rules_fired", 3);
//! obs::add("inference.rules_fired", 3);
//! drop(_span);
//! let snap = obs::metrics().snapshot();
//! assert!(snap.counters["inference.rules_fired"] >= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flightrec;
pub mod metrics;
pub mod span;
pub mod trace;

pub use flightrec::flight_record;
pub use metrics::{Histogram, HistogramSnapshot, MetricsSnapshot, Registry, Stage};
pub use span::{recent_spans, Span, SpanRecord};
pub use trace::{flush_trace_sink, set_trace_sink, start_trace, with_context, TraceContext};

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// How chatty the observability layer is on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Level {
    /// Nothing is printed (metrics still record).
    Silent,
    /// Slow-span warnings only.
    #[default]
    Normal,
    /// Every closed span is printed.
    Verbose,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Silent,
            2 => Level::Verbose,
            _ => Level::Normal,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Level::Silent => 0,
            Level::Normal => 1,
            Level::Verbose => 2,
        }
    }

    /// Parse a level name as used by `INTENSIO_LOG`.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "silent" | "quiet" | "off" | "0" | "none" => Some(Level::Silent),
            "normal" | "info" | "1" | "on" => Some(Level::Normal),
            "verbose" | "debug" | "trace" | "2" => Some(Level::Verbose),
            _ => None,
        }
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(true);
static LEVEL: AtomicU8 = AtomicU8::new(1);
static SLOW_US: AtomicU64 = AtomicU64::new(0);

/// The process-global metrics registry all instrumentation records into.
pub fn metrics() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Whether recording is enabled (cheap relaxed load; hot paths check
/// this before doing any work).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable all recording (spans, histograms, counters).
/// Benchmarks toggle this to bound instrumentation overhead.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The current verbosity level.
pub fn level() -> Level {
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Set the verbosity level.
pub fn set_level(level: Level) {
    LEVEL.store(level.as_u8(), Ordering::Relaxed);
}

/// Initialize the level from the `INTENSIO_LOG` environment variable
/// (`silent`/`quiet`/`off`, `normal`/`info`, `verbose`/`debug`).
/// Unset or unrecognized values leave the current level unchanged.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("INTENSIO_LOG") {
        if let Some(l) = Level::parse(&v) {
            set_level(l);
        }
    }
}

/// The slow-span threshold in microseconds (`0` disables the log).
pub fn slow_span_threshold_us() -> u64 {
    SLOW_US.load(Ordering::Relaxed)
}

/// Set the slow-span threshold. Any span whose duration meets or
/// exceeds it is logged to stderr (unless the level is silent).
pub fn set_slow_span_threshold(d: Duration) {
    SLOW_US.store(
        d.as_micros().min(u64::MAX as u128) as u64,
        Ordering::Relaxed,
    );
}

static SLOW_STAGE_US: [AtomicU64; Stage::ALL.len()] =
    [const { AtomicU64::new(0) }; Stage::ALL.len()];

/// The per-stage slow-span threshold in microseconds (`0` means the
/// stage falls back to the request-scope [`slow_span_threshold_us`]).
pub fn stage_slow_threshold_us(stage: Stage) -> u64 {
    SLOW_STAGE_US[stage.index()].load(Ordering::Relaxed)
}

/// Set a per-stage slow-span threshold. A stage span whose duration
/// meets or exceeds it is logged even when the request-scope threshold
/// would let it pass — a 2 ms scan is notable inside a 50 ms budget.
pub fn set_stage_slow_threshold(stage: Stage, d: Duration) {
    SLOW_STAGE_US[stage.index()].store(
        d.as_micros().min(u64::MAX as u128) as u64,
        Ordering::Relaxed,
    );
}

/// Increment a named counter on the global registry by 1.
pub fn inc(name: &str) {
    add(name, 1);
}

/// Increment a named counter on the global registry.
pub fn add(name: &str, n: u64) {
    if enabled() {
        metrics().add(name, n);
    }
}

/// Set a named gauge on the global registry.
pub fn gauge(name: &str, value: i64) {
    if enabled() {
        metrics().gauge(name, value);
    }
}

/// Record a duration into a stage histogram on the global registry.
pub fn record_stage(stage: Stage, d: Duration) {
    if enabled() {
        metrics().stage(stage).record(d);
    }
}
