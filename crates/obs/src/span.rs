//! The span API: RAII-timed regions with fields, thread-local
//! parent/child nesting, and a bounded global ring buffer of completed
//! spans.

use crate::metrics::Stage;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Display;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How many completed spans the ring buffer retains.
pub const RING_CAPACITY: usize = 512;

/// A completed span as collected in the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span's name (e.g. `inference.forward`).
    pub name: &'static str,
    /// The enclosing span's name on the same thread, if any.
    pub parent: Option<&'static str>,
    /// Nesting depth on its thread (0 = top level).
    pub depth: usize,
    /// Wall-clock duration in microseconds (monotonic clock).
    pub duration_us: u64,
    /// Key/value fields attached while the span was open.
    pub fields: Vec<(&'static str, String)>,
}

impl SpanRecord {
    /// One-line rendering, used by verbose and slow-span logging.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{:indent$}{} {}us",
            "",
            self.name,
            self.duration_us,
            indent = self.depth * 2
        );
        for (k, v) in &self.fields {
            let _ = write!(out, " {k}={v}");
        }
        out
    }
}

fn ring() -> &'static Mutex<VecDeque<SpanRecord>> {
    static RING: OnceLock<Mutex<VecDeque<SpanRecord>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(RING_CAPACITY)))
}

/// The most recent completed spans, oldest first (bounded by
/// [`RING_CAPACITY`]).
pub fn recent_spans() -> Vec<SpanRecord> {
    ring()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .cloned()
        .collect()
}

/// Drop every buffered span (test convenience).
pub fn clear_spans() {
    ring().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

thread_local! {
    /// Names of the open spans on this thread, innermost last.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An open, RAII-timed span. Created with [`Span::enter`] (trace-only)
/// or [`Span::stage`] (also records the duration into the stage's
/// latency histogram on close). Dropping the span closes it.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    stage: Option<Stage>,
    parent: Option<&'static str>,
    depth: usize,
    start: Instant,
    fields: Vec<(&'static str, String)>,
}

impl Span {
    /// Open a span. Nesting is tracked per thread: the innermost open
    /// span on this thread becomes the parent.
    pub fn enter(name: &'static str) -> Span {
        let (parent, depth) = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            let depth = s.len();
            s.push(name);
            (parent, depth)
        });
        Span {
            name,
            stage: None,
            parent,
            depth,
            start: Instant::now(),
            fields: Vec::new(),
        }
    }

    /// Open a span that also records into `stage`'s latency histogram
    /// on the global registry when it closes.
    pub fn stage(name: &'static str, stage: Stage) -> Span {
        let mut s = Span::enter(name);
        s.stage = Some(stage);
        s
    }

    /// Attach a key/value field (builder style).
    pub fn with_field(mut self, key: &'static str, value: impl Display) -> Span {
        self.field(key, value);
        self
    }

    /// Attach a key/value field.
    pub fn field(&mut self, key: &'static str, value: impl Display) {
        self.fields.push((key, value.to_string()));
    }

    /// Microseconds since the span opened.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop our own entry; spans are dropped innermost-first in
            // normal control flow, but be tolerant of odd drop orders.
            if let Some(pos) = s.iter().rposition(|n| *n == self.name) {
                s.remove(pos);
            }
        });
        if !crate::enabled() {
            return;
        }
        let duration_us = self.elapsed_us();
        if let Some(stage) = self.stage {
            crate::metrics().stage(stage).record_us(duration_us);
        }
        let record = SpanRecord {
            name: self.name,
            parent: self.parent,
            depth: self.depth,
            duration_us,
            fields: std::mem::take(&mut self.fields),
        };
        let level = crate::level();
        if level >= crate::Level::Verbose {
            eprintln!("[span] {}", record.render());
        } else {
            let slow = crate::slow_span_threshold_us();
            if slow > 0 && duration_us >= slow && level >= crate::Level::Normal {
                eprintln!("[slow] {}", record.render());
            }
        }
        let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that read or toggle the global enabled flag must not
    /// overlap (the test harness runs tests on parallel threads).
    static ENABLED_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_nest_and_record_parents() {
        let _guard = ENABLED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // The ring is global and other tests run concurrently: identify
        // this test's spans by unique names instead of clearing.
        {
            let _outer = Span::enter("test.nest.outer").with_field("k", 7);
            {
                let _inner = Span::enter("test.nest.inner");
            }
        }
        let spans = recent_spans();
        let inner = spans
            .iter()
            .find(|s| s.name == "test.nest.inner")
            .expect("inner span recorded");
        assert_eq!(inner.parent, Some("test.nest.outer"));
        assert_eq!(inner.depth, 1);
        let outer = spans
            .iter()
            .find(|s| s.name == "test.nest.outer")
            .expect("outer span recorded");
        assert_eq!(outer.parent, None);
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.fields, vec![("k", "7".to_string())]);
        // Children close (and are buffered) before their parents.
        let inner_pos = spans.iter().position(|s| s.name == "test.nest.inner");
        let outer_pos = spans.iter().position(|s| s.name == "test.nest.outer");
        assert!(inner_pos < outer_pos);
    }

    #[test]
    fn stage_spans_record_into_the_global_histogram() {
        let _guard = ENABLED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = crate::metrics().stage(Stage::Induction).count();
        drop(Span::stage("test.stage", Stage::Induction));
        assert!(crate::metrics().stage(Stage::Induction).count() > before);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = ENABLED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(false);
        drop(Span::enter("test.disabled.span"));
        crate::set_enabled(true);
        assert!(recent_spans()
            .iter()
            .all(|s| s.name != "test.disabled.span"));
    }

    #[test]
    fn render_is_indented_by_depth() {
        let r = SpanRecord {
            name: "a.b",
            parent: Some("a"),
            depth: 2,
            duration_us: 5,
            fields: vec![("n", "3".to_string())],
        };
        assert_eq!(r.render(), "    a.b 5us n=3");
    }
}
