//! The span API: RAII-timed regions with fields, thread-local
//! parent/child nesting, and a bounded global ring buffer of completed
//! spans.

use crate::metrics::Stage;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Display;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How many completed spans the ring buffer retains.
pub const RING_CAPACITY: usize = 512;

/// A completed span as collected in the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span's name (e.g. `inference.forward`).
    pub name: &'static str,
    /// The enclosing span's name on the same thread, if any.
    pub parent: Option<&'static str>,
    /// Nesting depth on its thread (0 = top level).
    pub depth: usize,
    /// Wall-clock duration in microseconds (monotonic clock).
    pub duration_us: u64,
    /// The trace this span belongs to (0 = not traced).
    pub trace_id: u64,
    /// This span's id within its trace (0 = not traced).
    pub span_id: u64,
    /// The parent span's id: the enclosing span on this thread, or the
    /// previous hop's span for a cross-node trace (0 = root).
    pub parent_span: u64,
    /// Key/value fields attached while the span was open.
    pub fields: Vec<(&'static str, String)>,
}

impl SpanRecord {
    /// One-line rendering, used by verbose and slow-span logging.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{:indent$}{} {}us",
            "",
            self.name,
            self.duration_us,
            indent = self.depth * 2
        );
        for (k, v) in &self.fields {
            let _ = write!(out, " {k}={v}");
        }
        out
    }
}

fn ring() -> &'static Mutex<VecDeque<SpanRecord>> {
    static RING: OnceLock<Mutex<VecDeque<SpanRecord>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(RING_CAPACITY)))
}

/// The most recent completed spans, oldest first (bounded by
/// [`RING_CAPACITY`]).
pub fn recent_spans() -> Vec<SpanRecord> {
    ring()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .cloned()
        .collect()
}

/// Drop every buffered span (test convenience).
pub fn clear_spans() {
    ring().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

thread_local! {
    /// The open spans on this thread (name, span id), innermost last.
    static STACK: RefCell<Vec<(&'static str, u64)>> = const { RefCell::new(Vec::new()) };
}

/// An open, RAII-timed span. Created with [`Span::enter`] (trace-only)
/// or [`Span::stage`] (also records the duration into the stage's
/// latency histogram on close). Dropping the span closes it.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    stage: Option<Stage>,
    parent: Option<&'static str>,
    depth: usize,
    trace_id: u64,
    span_id: u64,
    parent_span: u64,
    start: Instant,
    fields: Vec<(&'static str, String)>,
}

impl Span {
    /// Open a span. Nesting is tracked per thread: the innermost open
    /// span on this thread becomes the parent. When a trace context is
    /// installed ([`crate::trace::with_context`]) the span joins the
    /// trace: it mints a span id, and its parent span id is the
    /// enclosing span on this thread or, at the top, the previous
    /// hop's span from the context.
    pub fn enter(name: &'static str) -> Span {
        let (trace_id, span_id, ctx_parent) = match crate::trace::current() {
            Some(ctx) => (ctx.trace_id, crate::trace::mint_id(), ctx.parent_span),
            None => (0, 0, 0),
        };
        let (parent, parent_span, depth) = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().map(|(n, _)| *n);
            let parent_span = s.last().map(|(_, id)| *id).unwrap_or(ctx_parent);
            let depth = s.len();
            s.push((name, span_id));
            (parent, parent_span, depth)
        });
        Span {
            name,
            stage: None,
            parent,
            depth,
            trace_id,
            span_id,
            parent_span,
            start: Instant::now(),
            fields: Vec::new(),
        }
    }

    /// Open a span that also records into `stage`'s latency histogram
    /// on the global registry when it closes.
    pub fn stage(name: &'static str, stage: Stage) -> Span {
        let mut s = Span::enter(name);
        s.stage = Some(stage);
        s
    }

    /// Attach a key/value field (builder style).
    pub fn with_field(mut self, key: &'static str, value: impl Display) -> Span {
        self.field(key, value);
        self
    }

    /// Attach a key/value field.
    pub fn field(&mut self, key: &'static str, value: impl Display) {
        self.fields.push((key, value.to_string()));
    }

    /// Microseconds since the span opened.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// The `(trace_id, span_id)` pair when this span belongs to a
    /// trace, for propagating the context to another hop (the `#repl`
    /// stream ships the commit span's ids to its followers).
    pub fn trace_ids(&self) -> Option<(u64, u64)> {
        (self.trace_id != 0).then_some((self.trace_id, self.span_id))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop our own entry; spans are dropped innermost-first in
            // normal control flow, but be tolerant of odd drop orders.
            if let Some(pos) = s.iter().rposition(|(n, _)| *n == self.name) {
                s.remove(pos);
            }
        });
        if !crate::enabled() {
            return;
        }
        let duration_us = self.elapsed_us();
        if let Some(stage) = self.stage {
            crate::metrics().stage(stage).record_us(duration_us);
        }
        let record = SpanRecord {
            name: self.name,
            parent: self.parent,
            depth: self.depth,
            duration_us,
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_span: self.parent_span,
            fields: std::mem::take(&mut self.fields),
        };
        let level = crate::level();
        if level >= crate::Level::Verbose {
            eprintln!("[span] {}", record.render());
        } else if level >= crate::Level::Normal {
            // The effective threshold is per stage when one is set,
            // falling back to the request-scope global: a 2 ms scan is
            // worth a line even when the request budget is 50 ms.
            let slow = self
                .stage
                .map(crate::stage_slow_threshold_us)
                .filter(|&t| t > 0)
                .unwrap_or_else(crate::slow_span_threshold_us);
            if slow > 0 && duration_us >= slow {
                // trace id + epoch join this line against the sink.
                let trace = if self.trace_id != 0 {
                    format!("{:016x}", self.trace_id)
                } else {
                    "-".to_string()
                };
                let epoch = crate::metrics().gauge_value("serve.epoch").unwrap_or(0);
                eprintln!("[slow] trace={trace} epoch={epoch} {}", record.render());
            }
        }
        crate::trace::record_closed(&record);
        let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that read or toggle the global enabled flag must not
    /// overlap (the test harness runs tests on parallel threads).
    static ENABLED_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_nest_and_record_parents() {
        let _guard = ENABLED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // The ring is global and other tests run concurrently: identify
        // this test's spans by unique names instead of clearing.
        {
            let _outer = Span::enter("test.nest.outer").with_field("k", 7);
            {
                let _inner = Span::enter("test.nest.inner");
            }
        }
        let spans = recent_spans();
        let inner = spans
            .iter()
            .find(|s| s.name == "test.nest.inner")
            .expect("inner span recorded");
        assert_eq!(inner.parent, Some("test.nest.outer"));
        assert_eq!(inner.depth, 1);
        let outer = spans
            .iter()
            .find(|s| s.name == "test.nest.outer")
            .expect("outer span recorded");
        assert_eq!(outer.parent, None);
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.fields, vec![("k", "7".to_string())]);
        // Children close (and are buffered) before their parents.
        let inner_pos = spans.iter().position(|s| s.name == "test.nest.inner");
        let outer_pos = spans.iter().position(|s| s.name == "test.nest.outer");
        assert!(inner_pos < outer_pos);
    }

    #[test]
    fn stage_spans_record_into_the_global_histogram() {
        let _guard = ENABLED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = crate::metrics().stage(Stage::Induction).count();
        drop(Span::stage("test.stage", Stage::Induction));
        assert!(crate::metrics().stage(Stage::Induction).count() > before);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = ENABLED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(false);
        drop(Span::enter("test.disabled.span"));
        crate::set_enabled(true);
        assert!(recent_spans()
            .iter()
            .all(|s| s.name != "test.disabled.span"));
    }

    #[test]
    fn render_is_indented_by_depth() {
        let r = SpanRecord {
            name: "a.b",
            parent: Some("a"),
            depth: 2,
            duration_us: 5,
            trace_id: 0,
            span_id: 0,
            parent_span: 0,
            fields: vec![("n", "3".to_string())],
        };
        assert_eq!(r.render(), "    a.b 5us n=3");
    }

    #[test]
    fn spans_join_an_installed_trace_context() {
        let _guard = ENABLED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let ctx = crate::trace::TraceContext {
            trace_id: 0xabcd,
            parent_span: 0x42,
        };
        let _g = crate::trace::with_context(Some(ctx));
        {
            let outer = Span::enter("test.trace.outer");
            let outer_id = outer.trace_ids().expect("traced").1;
            {
                let inner = Span::enter("test.trace.inner");
                let (tid, sid) = inner.trace_ids().expect("traced");
                assert_eq!(tid, 0xabcd);
                assert_ne!(sid, outer_id);
            }
        }
        let spans = recent_spans();
        let outer = spans
            .iter()
            .find(|s| s.name == "test.trace.outer")
            .expect("outer recorded");
        // The top span's parent is the previous hop's span id.
        assert_eq!(outer.parent_span, 0x42);
        let inner = spans
            .iter()
            .find(|s| s.name == "test.trace.inner")
            .expect("inner recorded");
        assert_eq!(inner.trace_id, 0xabcd);
        assert_eq!(inner.parent_span, outer.span_id);
    }
}
