//! The flight recorder: on a notable failure event (worker panic, BUSY
//! shedding onset, deadline-ladder degradation, shutdown) the span ring
//! buffer and a metrics snapshot are dumped to
//! `<dir>/flightrec-<reason>-<seq>.json`, so every chaos-suite failure
//! leaves a postmortem artifact even when nobody was watching stderr.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Where dumps go; `None` disables the recorder.
static DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
/// Monotonic dump sequence, so filenames never collide within a process.
static SEQ: AtomicU64 = AtomicU64::new(0);
/// Last dump time per reason, for rate limiting.
static LAST: Mutex<Option<BTreeMap<String, Instant>>> = Mutex::new(None);

/// Minimum interval between two dumps for the same reason: a panic
/// storm produces one artifact, not a disk full of identical ones.
const MIN_INTERVAL: std::time::Duration = std::time::Duration::from_secs(10);

/// Arm (or with `None`, disarm) the flight recorder. The serve tier
/// points this at its `--data-dir` when one is configured.
pub fn set_dir(dir: Option<&Path>) {
    *DIR.lock().unwrap_or_else(|e| e.into_inner()) = dir.map(Path::to_path_buf);
}

/// Dump the span ring and a metrics snapshot for `reason` (a short
/// identifier like `worker_panic`). Returns the dump path, or `None`
/// when the recorder is disarmed, rate-limited for this reason, or the
/// write failed. Never panics — this runs on failure paths.
pub fn flight_record(reason: &str) -> Option<PathBuf> {
    let dir = DIR.lock().unwrap_or_else(|e| e.into_inner()).clone()?;
    {
        let mut last = LAST.lock().unwrap_or_else(|e| e.into_inner());
        let map = last.get_or_insert_with(BTreeMap::new);
        let now = Instant::now();
        if let Some(prev) = map.get(reason) {
            if now.duration_since(*prev) < MIN_INTERVAL {
                return None;
            }
        }
        map.insert(reason.to_string(), now);
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("flightrec-{}-{seq}.json", sanitize(reason)));
    let body = render(reason);
    if std::fs::create_dir_all(&dir).is_err() || std::fs::write(&path, body).is_err() {
        return None;
    }
    crate::inc("flightrec.dumps");
    if crate::level() >= crate::Level::Normal {
        eprintln!("[flightrec] {reason}: wrote {}", path.display());
    }
    Some(path)
}

fn render(reason: &str) -> String {
    let mut out = String::from("{\"reason\":\"");
    out.push_str(&sanitize(reason));
    out.push_str("\",\"spans\":[");
    for (i, s) in crate::recent_spans().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"depth\":{},\"us\":{}",
            escape(s.name),
            s.trace_id,
            s.span_id,
            s.depth,
            s.duration_us
        );
        if !s.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (j, (k, v)) in s.fields.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", escape(k), escape(v));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("],\"metrics\":");
    out.push_str(&crate::metrics().snapshot().to_json());
    out.push('}');
    out
}

fn sanitize(reason: &str) -> String {
    reason
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_recorder_writes_nothing() {
        set_dir(None);
        assert_eq!(flight_record("test_disarmed"), None);
    }

    #[test]
    fn armed_recorder_dumps_valid_json_and_rate_limits() {
        let dir = std::env::temp_dir().join(format!("intensio-flightrec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        set_dir(Some(&dir));
        drop(crate::Span::enter("test.flightrec.span"));
        let path = flight_record("test_armed").expect("armed recorder dumps");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("{\"reason\":\"test_armed\""));
        assert!(body.contains("\"spans\":["));
        assert!(body.contains("\"metrics\":{"));
        // The same reason is rate-limited; a different reason is not.
        assert_eq!(flight_record("test_armed"), None);
        assert!(flight_record("test_armed_other").is_some());
        set_dir(None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
