//! The metrics registry: counters, gauges, and fixed-bucket latency
//! histograms with percentile estimation and Prometheus/JSON export.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The instrumented pipeline stages, each backed by one fixed-bucket
/// latency histogram in every [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// SQL / QUEL parsing.
    Parse,
    /// Forward/backward type inference (one query's `infer`).
    Inference,
    /// A full ILS induction pass.
    Induction,
    /// One storage relation scan (selection over a relation).
    Scan,
    /// One serve request, accept-to-reply (execution included).
    Request,
    /// Time a serve request waited in the queue before a worker took it.
    QueueWait,
    /// One durable WAL append, write-to-acknowledgement (fsync
    /// included when the policy demands one).
    WalAppend,
    /// One replicated record applied on a follower, receipt-to-install.
    ReplApply,
}

impl Stage {
    /// Every stage, in display order.
    pub const ALL: [Stage; 8] = [
        Stage::Parse,
        Stage::Inference,
        Stage::Induction,
        Stage::Scan,
        Stage::Request,
        Stage::QueueWait,
        Stage::WalAppend,
        Stage::ReplApply,
    ];

    /// The stage's wire/metric name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Inference => "inference",
            Stage::Induction => "induction",
            Stage::Scan => "scan",
            Stage::Request => "request",
            Stage::QueueWait => "queue_wait",
            Stage::WalAppend => "wal_append",
            Stage::ReplApply => "repl_apply",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::Inference => 1,
            Stage::Induction => 2,
            Stage::Scan => 3,
            Stage::Request => 4,
            Stage::QueueWait => 5,
            Stage::WalAppend => 6,
            Stage::ReplApply => 7,
        }
    }
}

/// Histogram bucket upper bounds in microseconds (a final unbounded
/// overflow bucket is added on top). Roughly logarithmic from 1 µs to
/// 10 s, which spans a sub-microsecond scan to a multi-second induction.
pub const BUCKET_BOUNDS_US: [u64; 22] = [
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

const N_BUCKETS: usize = BUCKET_BOUNDS_US.len() + 1; // + overflow

/// A thread-safe fixed-bucket latency histogram (microsecond units).
///
/// Recording is three relaxed atomic increments; snapshots are
/// near-consistent (counts may be mid-update by at most the number of
/// concurrently recording threads, never corrupted).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Record one observation in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(N_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Record one observation as a [`Duration`].
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy with percentile estimates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let sum_us = self.sum_us.load(Ordering::Relaxed);
        let pct = |p: f64| percentile_from_buckets(&buckets, count, p);
        HistogramSnapshot {
            count,
            sum_us,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            buckets,
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_us.store(0, Ordering::Relaxed);
    }
}

/// Percentile as the upper bound of the bucket holding the rank
/// (Prometheus-style conservative estimate). The overflow bucket
/// reports the largest finite bound.
fn percentile_from_buckets(buckets: &[u64], count: u64, p: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((count as f64) * p).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return BUCKET_BOUNDS_US
                .get(i)
                .copied()
                .unwrap_or(BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]);
        }
    }
    BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations, in microseconds.
    pub sum_us: u64,
    /// Estimated 50th percentile (µs, bucket upper bound).
    pub p50_us: u64,
    /// Estimated 95th percentile (µs, bucket upper bound).
    pub p95_us: u64,
    /// Estimated 99th percentile (µs, bucket upper bound).
    pub p99_us: u64,
    /// Per-bucket counts, aligned with [`BUCKET_BOUNDS_US`] plus a
    /// final overflow bucket.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }
}

/// A metrics registry: named counters and gauges plus one latency
/// histogram per pipeline [`Stage`].
///
/// Most code uses the process-global registry via [`crate::metrics`];
/// independent instances exist so tests can assert exact counts.
#[derive(Debug, Default)]
pub struct Registry {
    stages: [Histogram; Stage::ALL.len()],
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, i64>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            stages: std::array::from_fn(|_| Histogram::new()),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
        }
    }

    /// The histogram for a pipeline stage.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage.index()]
    }

    /// Increment a named counter by `n` (created at 0 on first use).
    pub fn add(&self, name: &str, n: u64) {
        let mut counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        match counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(n),
            None => {
                counters.insert(name.to_string(), n);
            }
        }
    }

    /// Increment a named counter by 1.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Read one counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Set a named gauge to `value`.
    pub fn gauge(&self, name: &str, value: i64) {
        self.gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), value);
    }

    /// Read one gauge (`None` when never set).
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .copied()
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
            gauges: self
                .gauges
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
            stages: Stage::ALL
                .iter()
                .map(|s| (s.name().to_string(), self.stage(*s).snapshot()))
                .collect(),
        }
    }

    /// Zero every metric (test/bench convenience).
    pub fn reset(&self) {
        for h in &self.stages {
            h.reset();
        }
        self.counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

/// A point-in-time copy of a whole [`Registry`], exportable as JSON or
/// Prometheus text.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → value.
    pub gauges: BTreeMap<String, i64>,
    /// Stage name → histogram snapshot, in [`Stage::ALL`] order.
    pub stages: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Look up one stage's histogram by name.
    pub fn stage(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.stages.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Encode as a single-line JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{"parse":{"count":..,"sum_us":..,"p50_us":..,"p95_us":..,"p99_us":..},...}}`
    /// (bucket arrays are omitted from JSON; use the Prometheus export
    /// for full bucket detail).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", escape_key(k));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", escape_key(k));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum_us\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
                escape_key(name),
                h.count,
                h.sum_us,
                h.p50_us,
                h.p95_us,
                h.p99_us
            );
        }
        out.push_str("}}");
        out
    }

    /// Encode as Prometheus-style exposition text: counters as
    /// `intensio_<name>_total`, gauges as `intensio_<name>`, and stage
    /// histograms as `intensio_<stage>_latency_us` with cumulative
    /// `_bucket{le=...}` series plus `_sum`/`_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let name = sanitize(k);
            let _ = writeln!(out, "# TYPE intensio_{name}_total counter");
            let _ = writeln!(out, "intensio_{name}_total {v}");
        }
        for (k, v) in &self.gauges {
            let name = sanitize(k);
            let _ = writeln!(out, "# TYPE intensio_{name} gauge");
            let _ = writeln!(out, "intensio_{name} {v}");
        }
        for (stage, h) in &self.stages {
            let name = format!("intensio_{}_latency_us", sanitize(stage));
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (i, c) in h.buckets.iter().enumerate() {
                cumulative += c;
                match BUCKET_BOUNDS_US.get(i) {
                    Some(b) => {
                        let _ = writeln!(out, "{name}_bucket{{le=\"{b}\"}} {cumulative}");
                    }
                    None => {
                        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                    }
                }
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum_us);
            let _ = writeln!(out, "{name}_count {}", h.count);
            // A pre-computed summary alongside the raw buckets, so
            // scrapers without histogram_quantile get p50/p95/p99.
            let _ = writeln!(out, "# TYPE {name}_summary summary");
            for (q, v) in [("0.5", h.p50_us), ("0.95", h.p95_us), ("0.99", h.p99_us)] {
                let _ = writeln!(out, "{name}_summary{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{name}_summary_sum {}", h.sum_us);
            let _ = writeln!(out, "{name}_summary_count {}", h.count);
        }
        out
    }
}

/// Metric names are ASCII identifiers with dots; escape anything that
/// would break a JSON key anyway, defensively.
fn escape_key(k: &str) -> String {
    k.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`.
fn sanitize(k: &str) -> String {
    k.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        let h = Histogram::new();
        h.record_us(1); // -> bucket le=1
        h.record_us(2); // -> bucket le=2
        h.record_us(3); // -> bucket le=5
        h.record_us(10_000_001); // -> overflow
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum_us, 1 + 2 + 3 + 10_000_001);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(*s.buckets.last().unwrap(), 1);
    }

    #[test]
    fn percentiles_estimate_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record_us(40); // le=50
        }
        for _ in 0..9 {
            h.record_us(400); // le=500
        }
        h.record_us(9_000); // le=10000
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p95_us, 500);
        assert_eq!(s.p99_us, 500);
        assert_eq!(s.mean_us(), (90 * 40 + 9 * 400 + 9_000) / 100);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(
            (s.count, s.p50_us, s.p95_us, s.p99_us, s.mean_us()),
            (0, 0, 0, 0, 0)
        );
    }

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::new();
        r.inc("a.b");
        r.add("a.b", 4);
        r.gauge("g", -7);
        assert_eq!(r.counter("a.b"), 5);
        assert_eq!(r.counter("missing"), 0);
        let s = r.snapshot();
        assert_eq!(s.counters["a.b"], 5);
        assert_eq!(s.gauges["g"], -7);
        r.reset();
        assert_eq!(r.counter("a.b"), 0);
        assert_eq!(r.stage(Stage::Parse).count(), 0);
    }

    #[test]
    fn json_and_prometheus_exports_name_every_stage() {
        let r = Registry::new();
        r.stage(Stage::Parse).record_us(10);
        r.inc("serve.cache_hits");
        let s = r.snapshot();
        let json = s.to_json();
        for stage in Stage::ALL {
            assert!(json.contains(&format!("\"{}\"", stage.name())), "{json}");
        }
        assert!(json.contains("\"serve.cache_hits\":1"));
        assert!(!json.contains('\n'));
        let prom = s.to_prometheus();
        assert!(prom.contains("intensio_parse_latency_us_bucket{le=\"10\"} 1"));
        assert!(prom.contains("intensio_serve_cache_hits_total 1"));
        assert!(prom.contains("intensio_parse_latency_us_count 1"));
        assert!(prom.contains("le=\"+Inf\""));
        // Summary quantiles ride alongside the raw buckets, for every
        // stage including the replication-era ones.
        assert!(prom.contains("intensio_parse_latency_us_summary{quantile=\"0.5\"} 10"));
        assert!(prom.contains("intensio_parse_latency_us_summary{quantile=\"0.99\"} 10"));
        assert!(prom.contains("intensio_repl_apply_latency_us_summary{quantile=\"0.95\"} 0"));
        assert!(prom.contains("intensio_wal_append_latency_us_summary{quantile=\"0.5\"} 0"));
    }

    #[test]
    fn snapshot_percentiles_saturate_at_largest_finite_bound() {
        let h = Histogram::new();
        h.record_us(u64::MAX / 2);
        let s = h.snapshot();
        assert_eq!(s.p99_us, BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]);
    }
}
