//! A dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! maps the `criterion` dependency name to this crate by path. It runs
//! each benchmark with a short warm-up followed by an adaptive timed
//! phase and prints mean ns/iter — no statistics machinery, but the
//! same source-level API (`criterion_group!`, `criterion_main!`,
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock for the measurement phase of one benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(200);

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Run a parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&label);
        self
    }

    /// Finish the group (formatting no-op).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier (`from_parameter` / `name + parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Batch sizing hints for `iter_batched` (accepted, not interpreted).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

/// The measurement handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean nanoseconds per iteration, once a routine ran.
    result: Option<(f64, u64)>,
}

impl Bencher {
    /// Measure a routine.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up.
        for _ in 0..3 {
            black_box(routine());
        }
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= MEASURE_TARGET {
                break;
            }
        }
        let nanos = start.elapsed().as_nanos() as f64 / iters as f64;
        self.result = Some((nanos, iters));
    }

    /// Measure a routine with per-iteration setup excluded from timing.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..3 {
            black_box(routine(setup()));
        }
        let mut iters: u64 = 0;
        let mut busy = Duration::ZERO;
        let started = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            busy += t.elapsed();
            iters += 1;
            if busy >= MEASURE_TARGET || started.elapsed() >= 4 * MEASURE_TARGET {
                break;
            }
        }
        let nanos = busy.as_nanos() as f64 / iters as f64;
        self.result = Some((nanos, iters));
    }

    fn report(&self, label: &str) {
        match self.result {
            Some((nanos, iters)) => {
                println!("bench {label:<50} {:>14.0} ns/iter ({iters} iters)", nanos);
            }
            None => println!("bench {label:<50} (no measurement)"),
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher::default();
    f(&mut b);
    b.report(label);
}

/// Collect benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(3), &3usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.bench_with_input(BenchmarkId::new("threads", 2), &2usize, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
