//! # intensio-bench
//!
//! Shared helpers for the table/figure regeneration binaries and the
//! Criterion benchmarks. Each binary regenerates one artifact of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1 — battleship classification characteristics |
//! | `figures_ker` | Figures 1/2/4 — KER renderings of the ship schema |
//! | `figure5` | Figure 5 — hierarchy with induced rules |
//! | `rules17` | §6 — the 17 induced rules, side by side with the paper |
//! | `paper_examples` | §6 Examples 1–3 — extensional + intensional answers |
//! | `nc_sweep` | §5.2.1 step 4 — the N_c pruning tradeoff |
//! | `baseline_compare` | §7 — induced rules vs integrity constraints |
//! | `ablation` | design-choice ablations (run scope, inconsistency) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Print a markdown-style table: a header row, a separator, then rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (c, w) in cells.iter().zip(&widths) {
            s.push_str(&format!(" {c:<w$} |"));
        }
        println!("{s}");
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    {
        let mut s = String::from("|");
        for w in &widths {
            s.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        println!("{s}");
    }
    for row in rows {
        line(row);
    }
}

/// Section header for binary output.
pub fn section(title: &str) {
    println!("\n=== {title} ===\n");
}
