//! The **N_c pruning tradeoff** (§5.2.1 step 4): "N_c provides a
//! tradeoff between the applicability of the rules and the overhead of
//! storing and searching these rules."
//!
//! The sweep runs induction at N_c ∈ {1, 2, 3, 5, 10, 25} over the paper
//! test bed and synthetic fleets at three scales, reporting:
//!
//! * rules kept and rule-relation rows (the storage overhead §5.2.2
//!   worries about);
//! * answer *applicability*: over a fixed workload of type-membership
//!   queries, how many get any intensional characterization;
//! * answer *completeness*: the fraction of backward characterizations
//!   whose description covers all qualifying instances (the paper's
//!   Example 2 incompleteness is exactly a pruning casualty).
//!
//! ```sh
//! cargo run --release -p intensio-bench --bin nc_sweep
//! ```

use intensio_bench::{print_table, section};
use intensio_core::IntensionalQueryProcessor;
use intensio_induction::InductionConfig;
use intensio_ker::model::KerModel;
use intensio_shipdb::{generate, ship_database, ship_model, FleetConfig};
use intensio_storage::catalog::Database;

/// A workload of queries asking for the members of each type.
fn workload(model: &KerModel) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(c) = model.classifier_of("CLASS") {
        for (value, _) in &c.mapping {
            out.push(format!(
                "SELECT SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE \
                 FROM SUBMARINE, CLASS \
                 WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = {value}"
            ));
        }
    }
    out
}

fn sweep(name: &str, db: &Database, model: &KerModel, ncs: &[usize]) {
    section(&format!(
        "{name} ({} tuples across {} relations)",
        db.total_tuples(),
        db.len()
    ));
    let queries = workload(model);
    let mut rows = Vec::new();
    for &nc in ncs {
        let mut iqp = IntensionalQueryProcessor::new(db.clone(), model.clone())
            .with_induction_config(InductionConfig::with_min_support(nc));
        let t0 = std::time::Instant::now();
        let stats = iqp.learn().expect("learning succeeds");
        let learn_ms = t0.elapsed().as_secs_f64() * 1e3;
        let store_rows = iqp
            .dictionary()
            .export_rule_relations()
            .map(|r| r.rules.len() + r.value_map.len() + r.attr_catalog.len())
            .unwrap_or(0);

        let mut answered = 0usize;
        let mut complete = 0usize;
        let mut partials = 0usize;
        let mut coverage_sum = 0.0f64;
        let mut coverage_n = 0usize;
        for q in &queries {
            let full = iqp.query(q).expect("query succeeds");
            let a = &full.intensional;
            if !a.is_empty() {
                answered += 1;
            }
            for b in &a.partial {
                partials += 1;
                if b.complete == Some(true) {
                    complete += 1;
                }
            }
            let quality = intensio_inference::evaluate(db, &full.extensional, a)
                .expect("evaluation succeeds");
            assert!(quality.is_sound(), "soundness guarantee violated");
            if !full.extensional.is_empty() {
                coverage_sum += quality.backward_coverage;
                coverage_n += 1;
            }
        }
        rows.push(vec![
            nc.to_string(),
            format!("{}", stats.rules_constructed),
            format!("{}", stats.rules_kept),
            store_rows.to_string(),
            format!("{answered}/{}", queries.len()),
            if partials == 0 {
                "-".to_string()
            } else {
                format!("{complete}/{partials}")
            },
            if coverage_n == 0 {
                "-".to_string()
            } else {
                format!("{:.2}", coverage_sum / coverage_n as f64)
            },
            format!("{learn_ms:.1}"),
        ]);
    }
    print_table(
        &[
            "N_c",
            "constructed",
            "kept",
            "store rows",
            "answered",
            "complete chars",
            "coverage",
            "learn ms",
        ],
        &rows,
    );
}

fn main() {
    let ncs = [1usize, 2, 3, 5, 10, 25];

    // The paper's own test bed.
    let db = ship_database().expect("test bed builds");
    let model = ship_model().expect("schema parses");
    sweep("Ship test bed (Appendix C)", &db, &model, &ncs);

    // Synthetic fleets at growing scale.
    for (label, ships_per_class) in [("small", 5usize), ("medium", 20), ("large", 80)] {
        let fleet = generate(FleetConfig {
            seed: 0x1991,
            n_types: 3,
            classes_per_type: 8,
            ships_per_class,
            sonars_per_family: 4,
            id_noise: 0.05,
            overlapping_bands: false,
        })
        .expect("generation succeeds");
        sweep(
            &format!("Synthetic fleet ({label})"),
            &fleet.db,
            &fleet.ker_model(),
            &ncs,
        );
    }

    println!(
        "\nShape to check against the paper's prose: raising N_c monotonically\n\
         shrinks the rule store; answers stay available while at least one\n\
         high-support rule per type survives, but backward characterizations\n\
         lose completeness first (the Example 2 effect), and at high N_c the\n\
         system stops answering altogether."
    );
}
