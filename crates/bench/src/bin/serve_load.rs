//! Load generator for `intensio-serve`: a multi-threaded mixed
//! workload over the TCP wire protocol, with an answer oracle.
//!
//! ```text
//! serve_load [--threads N] [--queries N] [--workers N] [--obs on|off]
//!            [--durable] [--data-dir PATH] [--fsync always|batch:N|off]
//!            [--topology 1p2f|failover|partition] [--rounds N]
//!            [--failover-timeout-ms MS]
//! ```
//!
//! `--topology 1p2f` switches to the replication workload: one durable
//! primary and two in-process followers, with reader threads
//! round-robining across all three nodes while a writer streams
//! durable appends into the primary. Every few reads a thread issues a
//! `SQL@<acked epoch>` read-your-writes probe for the most recently
//! acked row (following a `REDIRECT` to the primary if the follower
//! can't serve that epoch in time). Mid-run one follower is killed and
//! a fresh one bootstraps in its place; at quiesce the run fails
//! unless every node converged to the primary's exact epoch, every
//! acked write is readable on every node, the primary shipped records
//! (`repl.records_shipped > 0`), and every lag gauge reads zero. This
//! is how `BENCH_repl.json` measures scale-out read throughput.
//!
//! `--topology failover` runs `--rounds` seeded kill/promote rounds: a
//! durable primary, a durable `--candidate` tailing it, and a
//! memory-only follower. Mid-write-burst the primary is killed; the
//! candidate promotes on heartbeat loss (bumping the term and fsyncing
//! a `TERM` fencepost), the writer retries idempotently against the
//! rotation, and the deposed primary is restarted so the `STALE_TERM`
//! fence demotes it and a snapshot bootstrap retracts any unshipped
//! suffix. Each round ends with an exact-set audit (every acked write
//! present on all three nodes, none applied twice); the run prints
//! time-to-promotion and write-unavailability percentiles, which is
//! how `BENCH_failover.json` is measured.
//!
//! `--topology partition` keeps every process alive and injects link
//! faults instead (`intensio_net`): a symmetric split, a one-way
//! (half-open) link, flapping links, and pure heartbeat delay. All
//! three in-process nodes share this process's fault registry, so one
//! `net.*` spec governs both ends of a link — the same physics a real
//! partition has. Per scenario the run measures time-to-promotion,
//! write unavailability, minority stale-read availability, and
//! time-to-heal after the fault clears, then audits the exact acked
//! set (and, for the one-way split, that minority-acked writes were
//! retracted on rejoin). This is how `BENCH_partition.json` is
//! measured.
//!
//! `--durable` opens the service with a write-ahead log (in a
//! throwaway temp directory unless `--data-dir` is given) and adds a
//! **write phase**: each client thread appends a batch of unique
//! submarines before querying, with write latencies tracked
//! separately. The run ends with the WAL counters (appends, bytes,
//! fsyncs, checkpoints), which is how `BENCH_wal.json` quantifies the
//! durability overhead per `--fsync` policy.
//!
//! `--obs off` disables all observability recording (spans, metrics,
//! the ring buffer) before the run — comparing a `--obs on` run
//! against `--obs off` on the same parameters measures the
//! instrumentation overhead. With observability on, the run ends with
//! a per-stage latency summary read from the service's histograms.
//!
//! The run has two phases per client thread:
//!
//! 1. **Unique phase** — every query has a distinct condition
//!    (`Displacement > n` for a per-request `n`), so the intensional
//!    cache cannot help; each answer is checked against an oracle
//!    computed from the Appendix C class table.
//! 2. **Repeated phase** — threads cycle through a small fixed query
//!    set, so the cache must start hitting. Between the phases one
//!    thread appends a submarine (a QUEL write), which bumps the epoch
//!    and triggers background re-induction; readers keep answering
//!    throughout, and the run verifies the epoch advanced again (the
//!    rule install) while queries were in flight.
//!
//! Exit status is non-zero if any answer was wrong, any request
//! errored, the repeated phase got no cache hits, or the epoch failed
//! to advance.

use intensio_serve::json::{self, Json};
use intensio_serve::{Client, Server, Service, ServiceConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Topology {
    /// One durable primary, two followers, mid-run follower kill.
    OnePrimaryTwoFollowers,
    /// Term-fenced failover rounds: kill the primary, promote the
    /// candidate, fence and rejoin the deposed primary, audit.
    Failover,
    /// Injected link-fault rounds: no process dies, the network does.
    /// Measures availability during the partition, time-to-promotion,
    /// and time-to-heal per scenario; feeds `BENCH_partition.json`.
    Partition,
}

struct Args {
    threads: usize,
    queries: usize,
    workers: usize,
    obs: bool,
    durable: bool,
    data_dir: Option<std::path::PathBuf>,
    fsync: intensio_wal::FsyncPolicy,
    topology: Option<Topology>,
    rounds: usize,
    failover_timeout_ms: u64,
    trace_dir: Option<std::path::PathBuf>,
    trace_sample: f64,
    profile: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_load [--threads N] [--queries N] [--workers N] [--obs on|off]\n\
         \x20                 [--durable] [--data-dir PATH] [--fsync always|batch:N|off]\n\
         \x20                 [--topology 1p2f|failover|partition] [--rounds N]\n\
         \x20                 [--failover-timeout-ms MS] [--trace-dir PATH]\n\
         \x20                 [--trace-sample RATE] [--profile]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        threads: 4,
        queries: 1000,
        workers: 4,
        obs: true,
        durable: false,
        data_dir: None,
        fsync: intensio_wal::FsyncPolicy::Always,
        topology: None,
        rounds: 3,
        failover_timeout_ms: 800,
        trace_dir: None,
        trace_sample: 1.0,
        profile: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |field: &mut usize| {
            *field = it
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| usage());
        };
        match a.as_str() {
            "--threads" => num(&mut args.threads),
            "--queries" => num(&mut args.queries),
            "--workers" => num(&mut args.workers),
            "--obs" => {
                args.obs = match it.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => usage(),
                };
            }
            "--durable" => args.durable = true,
            "--data-dir" => {
                args.durable = true;
                args.data_dir = Some(std::path::PathBuf::from(
                    it.next().unwrap_or_else(|| usage()),
                ));
            }
            "--fsync" => {
                let spec = it.next().unwrap_or_else(|| usage());
                args.fsync = intensio_wal::FsyncPolicy::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("serve_load: {e}");
                    usage()
                });
            }
            "--topology" => match it.next().as_deref() {
                Some("1p2f") => args.topology = Some(Topology::OnePrimaryTwoFollowers),
                Some("failover") => args.topology = Some(Topology::Failover),
                Some("partition") => args.topology = Some(Topology::Partition),
                other => {
                    eprintln!(
                        "serve_load: unsupported topology {other:?} (1p2f, failover, or partition)"
                    );
                    usage()
                }
            },
            "--rounds" => num(&mut args.rounds),
            "--failover-timeout-ms" => {
                args.failover_timeout_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--trace-dir" => {
                args.trace_dir = Some(std::path::PathBuf::from(
                    it.next().unwrap_or_else(|| usage()),
                ));
            }
            "--trace-sample" => {
                args.trace_sample = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|s| (0.0..=1.0).contains(s))
                    .unwrap_or_else(|| usage());
            }
            "--profile" => args.profile = true,
            _ => usage(),
        }
    }
    if args.threads > 99 {
        eprintln!("serve_load: --threads must be <= 99 (write ids are char(7))");
        std::process::exit(2);
    }
    args
}

/// Connect to one of `targets`, rotating from `start` and retrying
/// briefly: under load (or CI) the accept backlog can transiently
/// refuse a burst of simultaneous connects, and in a replicated
/// topology a node may be mid-restart — neither is worth failing a
/// whole run over when a sibling target can serve. Returns the client
/// and the index of the target that accepted.
fn connect_with_retry(targets: &[String], start: usize) -> std::io::Result<(Client, usize)> {
    assert!(!targets.is_empty(), "no targets to connect to");
    let mut last_err = None;
    for round in 0..5 {
        for offset in 0..targets.len() {
            let idx = (start + offset) % targets.len();
            match Client::connect(&targets[idx]) {
                Ok(c) => return Ok((c, idx)),
                Err(e) => last_err = Some(e),
            }
        }
        if round + 1 < 5 {
            std::thread::sleep(Duration::from_millis(100));
        }
    }
    Err(last_err.expect("at least one attempt"))
}

/// Oracle: the classes with displacement strictly above `n`, sorted.
fn expected_classes(n: i64) -> Vec<String> {
    let mut v: Vec<String> = intensio_shipdb::data::CLASSES
        .iter()
        .filter(|(_, _, _, d)| *d > n)
        .map(|(c, _, _, _)| c.to_string())
        .collect();
    v.sort();
    v
}

fn response_classes(v: &Json) -> Vec<String> {
    let mut out: Vec<String> = v
        .get("rows")
        .and_then(Json::as_array)
        .unwrap_or(&[])
        .iter()
        .filter_map(|row| row.as_array()?.first()?.as_str().map(str::to_string))
        .collect();
    out.sort();
    out
}

#[derive(Default)]
struct ThreadOutcome {
    latencies_us: Vec<u64>,
    write_latencies_us: Vec<u64>,
    wrong: u64,
    errors: u64,
    repeated_hits: u64,
    max_epoch: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Build a follower service replicating from `primary`, bound on an
/// ephemeral port. Followers here are memory-only: the topology run
/// exercises wire bootstrap, not follower-local durability (the
/// replication tests cover that).
fn spawn_follower(workers: usize, primary: &str) -> (Arc<Service>, Server) {
    let db = intensio_shipdb::ship_database().expect("ship database");
    let model = intensio_shipdb::ship_model().expect("ship model");
    let cfg = ServiceConfig {
        workers,
        replicate_from: Some(primary.to_string()),
        ..ServiceConfig::default()
    };
    let service = Arc::new(Service::with_config(db, model, cfg).expect("follower opens"));
    let server = Server::bind(service.clone(), "127.0.0.1:0").expect("follower binds");
    (service, server)
}

/// The `--topology 1p2f` workload: durable writes into the primary,
/// reads fanned across the cluster, one follower killed and replaced
/// mid-run, and a zero-loss / zero-lag audit at quiesce.
fn topology_main(args: &Args) {
    use std::sync::RwLock;

    let scratch = std::env::temp_dir().join(format!("intensio-serve-1p2f-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let db = intensio_shipdb::ship_database().expect("ship database");
    let model = intensio_shipdb::ship_model().expect("ship model");
    let pcfg = ServiceConfig {
        workers: args.workers,
        data_dir: Some(args.data_dir.clone().unwrap_or_else(|| scratch.clone())),
        wal: intensio_wal::WalConfig {
            fsync: args.fsync,
            ..intensio_wal::WalConfig::default()
        },
        ..ServiceConfig::default()
    };
    let primary = Arc::new(Service::with_config(db, model, pcfg).expect("primary opens"));
    let pserver = Server::bind(primary.clone(), "127.0.0.1:0").expect("primary binds");
    let paddr = pserver.local_addr().to_string();
    let (f1, f1_server) = spawn_follower(args.workers, &paddr);
    let (f2, f2_server) = spawn_follower(args.workers, &paddr);
    // Reads fan over every node; index 0 is always the primary so a
    // REDIRECT reply has a known place to go.
    let targets = Arc::new(RwLock::new(vec![
        paddr.clone(),
        f1_server.local_addr().to_string(),
        f2_server.local_addr().to_string(),
    ]));
    println!(
        "serve_load 1p2f: primary {paddr} (fsync {}), followers {} + {}; {} reader threads x {} reads",
        args.fsync,
        f1_server.local_addr(),
        f2_server.local_addr(),
        args.threads,
        args.queries / args.threads,
    );

    let total_writes = (args.queries / 10).clamp(30, 2000);
    // The most recent acked write, for read-your-writes probes:
    // (epoch, sequence of the id "TP{seq:04}").
    let acked_epoch = Arc::new(AtomicU64::new(0));
    let acked_seq = Arc::new(AtomicU64::new(u64::MAX));
    let writer = {
        let paddr = paddr.clone();
        let acked_epoch = acked_epoch.clone();
        let acked_seq = acked_seq.clone();
        std::thread::spawn(move || -> (Vec<String>, u64) {
            let (mut client, _) =
                connect_with_retry(std::slice::from_ref(&paddr), 0).expect("writer connects");
            let mut acked = Vec::new();
            let mut errors = 0u64;
            for i in 0..total_writes {
                let id = format!("TP{i:04}");
                let line = client
                    .roundtrip(&format!(
                        "QUEL append to SUBMARINE (Id = \"{id}\", \
                         Name = \"Topo Probe\", Class = \"0101\")"
                    ))
                    .expect("write roundtrip");
                let v = json::parse(&line).expect("write reply parses");
                match (
                    v.get("ok").and_then(Json::as_bool),
                    v.get("epoch").and_then(Json::as_u64),
                ) {
                    (Some(true), Some(epoch)) => {
                        acked.push(id);
                        acked_epoch.store(epoch, Ordering::SeqCst);
                        acked_seq.store(i as u64, Ordering::SeqCst);
                    }
                    _ => errors += 1,
                }
            }
            client.quit();
            (acked, errors)
        })
    };

    let reads_per_thread = (args.queries / args.threads).max(10);
    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..args.threads {
        let targets = targets.clone();
        let acked_epoch = acked_epoch.clone();
        let acked_seq = acked_seq.clone();
        handles.push(std::thread::spawn(move || {
            let snapshot = |targets: &Arc<RwLock<Vec<String>>>| -> Vec<String> {
                targets.read().unwrap_or_else(|e| e.into_inner()).clone()
            };
            let (mut client, mut node) =
                connect_with_retry(&snapshot(&targets), t).expect("reader connects");
            let mut out = ThreadOutcome::default();
            let mut ryw_checked = 0u64;
            let mut redirects = 0u64;
            let mut i = 0usize;
            while i < reads_per_thread {
                // Every 4th read is a read-your-writes probe at the
                // writer's latest acked epoch; the rest are the plain
                // oracle-checked query mix.
                let probe = i % 4 == 3 && acked_seq.load(Ordering::SeqCst) != u64::MAX;
                let (request, oracle, want_id) = if probe {
                    let epoch = acked_epoch.load(Ordering::SeqCst);
                    let seq = acked_seq.load(Ordering::SeqCst);
                    (
                        format!("SQL@{epoch} SELECT Id FROM SUBMARINE WHERE Id = \"TP{seq:04}\""),
                        None,
                        Some(()),
                    )
                } else {
                    let n = 1000 + ((t * reads_per_thread + i) % 20_000) as i64;
                    (
                        format!("SQL SELECT Class FROM CLASS WHERE Displacement > {n}"),
                        Some(expected_classes(n)),
                        None,
                    )
                };
                let sent = Instant::now();
                let line = match client.roundtrip(&request) {
                    Ok(l) => l,
                    Err(_) => {
                        // The node died under us (the mid-run kill):
                        // rotate to the next live target and retry the
                        // same read — node loss must not lose reads.
                        let (c, n) = connect_with_retry(&snapshot(&targets), node + 1)
                            .expect("reader reconnects");
                        client = c;
                        node = n;
                        continue;
                    }
                };
                out.latencies_us
                    .push(sent.elapsed().as_micros().min(u64::MAX as u128) as u64);
                let v = match json::parse(&line) {
                    Ok(v) => v,
                    Err(_) => {
                        out.errors += 1;
                        i += 1;
                        continue;
                    }
                };
                let ok = v.get("ok").and_then(Json::as_bool) == Some(true);
                if !ok {
                    let msg = v.get("error").and_then(Json::as_str).unwrap_or("");
                    if probe && msg.starts_with("REDIRECT") {
                        // The follower couldn't reach the epoch in its
                        // deadline; the contract says the primary can.
                        redirects += 1;
                        let ryw = {
                            let t = snapshot(&targets);
                            let (mut pc, _) =
                                connect_with_retry(&t[..1], 0).expect("redirect connect");
                            let line = pc.roundtrip(&request).expect("redirected read");
                            json::parse(&line).expect("redirected reply parses")
                        };
                        if ryw.get("ok").and_then(Json::as_bool) == Some(true)
                            && ryw.get("rows").and_then(Json::as_array).map(<[Json]>::len)
                                == Some(1)
                        {
                            ryw_checked += 1;
                        } else {
                            out.wrong += 1;
                        }
                    } else {
                        out.errors += 1;
                    }
                    i += 1;
                    continue;
                }
                if let Some(epoch) = v.get("epoch").and_then(Json::as_u64) {
                    out.max_epoch = out.max_epoch.max(epoch);
                }
                if want_id.is_some() {
                    // An ok reply at min_epoch MUST contain the acked row.
                    if v.get("rows").and_then(Json::as_array).map(<[Json]>::len) == Some(1) {
                        ryw_checked += 1;
                    } else {
                        out.wrong += 1;
                    }
                } else if let Some(want) = oracle {
                    if response_classes(&v) != want {
                        out.wrong += 1;
                    }
                }
                i += 1;
            }
            client.quit();
            // Reuse repeated_hits to carry the read-your-writes count
            // and write_latencies to carry redirects (both are unused
            // by the topology reader otherwise).
            out.repeated_hits = ryw_checked;
            out.write_latencies_us = vec![redirects];
            out
        }));
    }

    // Mid-run chaos: once the writer is half done, kill follower #2 and
    // bootstrap a replacement. Acked writes must survive on every node.
    let half = (total_writes / 2) as u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    while acked_seq.load(Ordering::SeqCst) == u64::MAX
        || acked_seq.load(Ordering::SeqCst) < half.saturating_sub(1)
    {
        assert!(Instant::now() < deadline, "writer stalled before the kill");
        std::thread::sleep(Duration::from_millis(5));
    }
    f2_server.shutdown();
    drop(f2);
    let (f2, f2_server) = spawn_follower(args.workers, &paddr);
    {
        let mut t = targets.write().unwrap_or_else(|e| e.into_inner());
        t[2] = f2_server.local_addr().to_string();
    }
    println!(
        "killed follower #2 mid-run; replacement bootstrapping at {}",
        f2_server.local_addr()
    );

    let mut all = ThreadOutcome::default();
    let mut ryw_checked = 0u64;
    let mut redirects = 0u64;
    for h in handles {
        let out = h.join().expect("reader thread panicked");
        all.latencies_us.extend(out.latencies_us);
        all.wrong += out.wrong;
        all.errors += out.errors;
        ryw_checked += out.repeated_hits;
        redirects += out.write_latencies_us.first().copied().unwrap_or(0);
        all.max_epoch = all.max_epoch.max(out.max_epoch);
    }
    let elapsed = started.elapsed();
    let (acked_ids, write_errors) = writer.join().expect("writer thread panicked");

    // Quiesce: primary induction settles, then both followers must hit
    // the primary's exact epoch with zero lag.
    let fresh = primary.wait_rules_fresh(Duration::from_secs(10));
    let deadline = Instant::now() + Duration::from_secs(30);
    let (mut lag1, mut lag2);
    loop {
        let pe = primary.stats().epoch;
        let s1 = f1.stats();
        let s2 = f2.stats();
        lag1 = s1.repl.as_ref().map_or(u64::MAX, |r| r.lag_epochs);
        lag2 = s2.repl.as_ref().map_or(u64::MAX, |r| r.lag_epochs);
        if lag1 == 0 && lag2 == 0 && s1.epoch == pe && s2.epoch == pe {
            break;
        }
        if Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // Zero lost acked writes: every acked id readable on every node.
    let mut lost = 0u64;
    let target_list = targets.read().unwrap_or_else(|e| e.into_inner()).clone();
    for addr in &target_list {
        let (mut c, _) = connect_with_retry(std::slice::from_ref(addr), 0).expect("audit connects");
        let line = c
            .roundtrip("SQL SELECT Id FROM SUBMARINE")
            .expect("audit read");
        let v = json::parse(&line).expect("audit reply parses");
        let present: std::collections::BTreeSet<String> = v
            .get("rows")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(|row| {
                row.as_array()?
                    .first()?
                    .as_str()
                    .map(|s| s.trim().to_string())
            })
            .collect();
        for id in &acked_ids {
            if !present.contains(id) {
                eprintln!("LOST: acked write {id} missing on {addr}");
                lost += 1;
            }
        }
        // Raw quiesce-time STATS, so CI can grep the replication
        // counters (repl.records_shipped, repl.lag_epochs) per node.
        let line = c.roundtrip("STATS").expect("audit stats");
        println!("stats[{addr}]: {}", line.trim_end());
        c.quit();
    }

    // A traced redirect probe: one trace id must span the follower's
    // admission (the REDIRECT) and the primary's execution — the
    // context survives both wire hops. All three nodes live in this
    // process, so one sink file carries both legs.
    let mut trace_ok = true;
    if let Some(trace_dir) = &args.trace_dir {
        let trace = format!("{:016x}", intensio_obs::trace::mint_id());
        let (mut fc, _) = connect_with_retry(&target_list[1..2], 0).expect("trace probe connects");
        let line = fc
            .roundtrip(&format!(
                "#trace {trace}/0000000000000000 SQL@{} SELECT Id FROM SUBMARINE",
                all.max_epoch + 1_000_000
            ))
            .expect("trace probe roundtrip");
        fc.quit();
        let v = json::parse(&line).expect("trace probe reply parses");
        let redirected = v
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.starts_with("REDIRECT"));
        // The client-side stitch: re-issue against the primary under
        // the same trace id, exactly as a redirected caller would.
        let (mut pc, _) = connect_with_retry(&target_list[..1], 0).expect("trace probe primary");
        let _ = pc.roundtrip(&format!(
            "#trace {trace}/0000000000000000 SQL SELECT Id FROM SUBMARINE"
        ));
        pc.quit();
        let has_leg = |needle: &str| -> bool {
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                intensio_obs::flush_trace_sink();
                let found = std::fs::read_dir(trace_dir).ok().is_some_and(|rd| {
                    rd.flatten().any(|entry| {
                        std::fs::read_to_string(entry.path()).is_ok_and(|content| {
                            content
                                .lines()
                                .any(|l| l.contains(&trace) && l.contains(needle))
                        })
                    })
                });
                if found || Instant::now() >= deadline {
                    return found;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        };
        let follower_leg = has_leg("serve.admission");
        let primary_leg = has_leg("serve.request");
        trace_ok = redirected && follower_leg && primary_leg;
        if trace_ok {
            println!(
                "trace-propagation: OK trace {trace} spans follower admission \
                 and primary execution"
            );
        } else {
            eprintln!(
                "trace-propagation: FAIL trace {trace} (redirected {redirected}, \
                 follower leg {follower_leg}, primary leg {primary_leg})"
            );
        }
    }

    let pstats = primary.stats();
    let shipped = pstats
        .metrics
        .counters
        .get("repl.records_shipped")
        .copied()
        .unwrap_or(0);
    all.latencies_us.sort_unstable();
    let total = all.latencies_us.len() as u64;
    let qps = total as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "completed {total} reads in {:.2}s ({qps:.0} q/s aggregate across 3 nodes)",
        elapsed.as_secs_f64()
    );
    println!(
        "read latency p50 {} us, p95 {} us, p99 {} us",
        percentile(&all.latencies_us, 0.50),
        percentile(&all.latencies_us, 0.95),
        percentile(&all.latencies_us, 0.99)
    );
    println!(
        "writes: {} acked ({} errors); read-your-writes: {} verified, {} redirected",
        acked_ids.len(),
        write_errors,
        ryw_checked,
        redirects
    );
    println!(
        "replication: {} records shipped, follower lags at quiesce {} / {}, epoch {}",
        shipped, lag1, lag2, pstats.epoch
    );

    let mut failed = false;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("FAIL: {what}");
            failed = true;
        }
    };
    check(all.wrong == 0, "every answer must match its oracle");
    check(all.errors == 0, "no read may error");
    check(write_errors == 0, "no write may error");
    check(
        lost == 0,
        "zero lost acked writes after follower kill/rejoin",
    );
    check(fresh, "primary induction must settle");
    check(shipped > 0, "the primary must ship records");
    check(
        lag1 == 0 && lag2 == 0,
        "both followers must reach lag 0 at quiesce",
    );
    check(
        ryw_checked > 0,
        "read-your-writes probes must verify at least once",
    );
    check(
        trace_ok,
        "the traced redirect probe must span both wire hops",
    );

    f1_server.shutdown();
    f2_server.shutdown();
    pserver.shutdown();
    drop((f1, f2));
    if args.data_dir.is_none() {
        match Arc::try_unwrap(primary) {
            Ok(s) => drop(s),
            Err(arc) => drop(arc),
        }
        let _ = std::fs::remove_dir_all(&scratch);
    }
    if failed {
        std::process::exit(1);
    }
    println!("PASS");
}

/// What one kill/promote/rejoin round measured and verified.
struct FailoverRound {
    /// Kill of the primary to the candidate's `role == "primary"`.
    promotion: Duration,
    /// Kill of the primary to the first successfully acked write.
    unavailable: Duration,
    acked: Vec<String>,
    lost: u64,
    duplicates: u64,
    stale_fenced: bool,
    deposed_rejoined: bool,
}

/// Write `id` into whichever target currently accepts writes, retrying
/// across the rotation until one acks. Idempotent under lost acks: a
/// presence probe runs before every (re-)issue, so an append whose ack
/// died on the wire is never applied twice in the surviving lineage.
fn write_failover(targets: &[String], id: &str) -> Result<Instant, String> {
    let deadline = Instant::now() + Duration::from_secs(30);
    let probe = format!("SQL SELECT Id FROM SUBMARINE WHERE Id = \"{id}\"");
    let append = format!(
        "QUEL append to SUBMARINE (Id = \"{id}\", \
         Name = \"Failover Probe\", Class = \"0101\")"
    );
    loop {
        for addr in targets {
            let Ok(mut c) = Client::connect(addr) else {
                continue;
            };
            if let Ok(line) = c.roundtrip(&probe) {
                if let Ok(v) = json::parse(&line) {
                    if v.get("ok").and_then(Json::as_bool) == Some(true)
                        && v.get("rows").and_then(Json::as_array).map(<[Json]>::len) == Some(1)
                    {
                        return Ok(Instant::now()); // a lost ack: already applied
                    }
                }
            }
            if let Ok(line) = c.roundtrip(&append) {
                if let Ok(v) = json::parse(&line) {
                    if v.get("ok").and_then(Json::as_bool) == Some(true) {
                        return Ok(Instant::now());
                    }
                    // READONLY / candidate refusal: try the next target.
                }
            }
        }
        if Instant::now() >= deadline {
            return Err(format!("no target acked write {id} within 30s"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Tear a service down, waiting out any straggler connection handlers
/// still holding an `Arc` clone, so its WAL directory can be reopened.
fn drop_service(mut svc: Arc<Service>) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Arc::try_unwrap(svc) {
            Ok(s) => return drop(s),
            Err(arc) => {
                if Instant::now() >= deadline {
                    return drop(arc); // leak rather than hang the run
                }
                svc = arc;
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// One `--topology failover` round: durable primary, durable candidate,
/// and memory-only follower; kill the primary mid-burst, measure the
/// candidate's term-bumped promotion and the write-unavailability
/// window, restart the deposed primary so the term fence (`STALE_TERM`)
/// demotes it, and audit the exact acked-write set on all three nodes.
fn failover_round(args: &Args, round: usize) -> Result<FailoverRound, String> {
    let timeout = Duration::from_millis(args.failover_timeout_ms);
    let base =
        std::env::temp_dir().join(format!("intensio-failover-{}-{round}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mk = |data_dir: Option<std::path::PathBuf>,
              replicate_from: Option<String>,
              candidate: bool,
              seed: u64| ServiceConfig {
        workers: args.workers,
        data_dir,
        wal: intensio_wal::WalConfig {
            fsync: args.fsync,
            ..intensio_wal::WalConfig::default()
        },
        replicate_from,
        candidate,
        failover_timeout: timeout,
        failover_seed: seed,
        repl_heartbeat: Duration::from_millis(100),
        ..ServiceConfig::default()
    };
    let open = |cfg: ServiceConfig| -> Result<(Arc<Service>, Server, String), String> {
        let db = intensio_shipdb::ship_database().map_err(|e| e.to_string())?;
        let model = intensio_shipdb::ship_model().map_err(|e| e.to_string())?;
        let svc = Arc::new(Service::with_config(db, model, cfg).map_err(|e| e.to_string())?);
        let server = Server::bind(svc.clone(), "127.0.0.1:0").map_err(|e| e.to_string())?;
        let addr = server.local_addr().to_string();
        Ok((svc, server, addr))
    };

    let (primary, pserver, paddr) = open(mk(Some(base.join("primary")), None, false, 0))?;
    let (cand, cserver, caddr) = open(mk(
        Some(base.join("candidate")),
        Some(paddr.clone()),
        true,
        0x5eed + round as u64,
    ))?;
    let (follower, fserver, faddr) = open(mk(None, Some(format!("{paddr},{caddr}")), false, 0))?;

    // Both replicas must be caught up before the chaos starts.
    let catchup = Instant::now() + Duration::from_secs(30);
    loop {
        let pe = primary.stats().epoch;
        if cand.stats().epoch == pe && follower.stats().epoch == pe {
            break;
        }
        if Instant::now() >= catchup {
            return Err("replicas never caught up to the primary".to_string());
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let total_writes = 30usize;
    let kill_at = total_writes / 2;
    let targets = vec![paddr.clone(), caddr.clone()];
    let mut acked = Vec::with_capacity(total_writes);
    let mut primary_slot = Some((primary, pserver));
    let mut killed_at = None;
    let mut unavailable = None;
    let mut watcher: Option<std::thread::JoinHandle<Option<Duration>>> = None;
    for i in 0..total_writes {
        if i == kill_at {
            // Replication is async and single-copy: an acked term-0
            // write is only guaranteed once shipped. Let the candidate
            // hold the whole prefix before the kill so the audit can
            // demand zero loss of every acked write.
            let ship = Instant::now() + Duration::from_secs(30);
            if let Some((svc, _)) = primary_slot.as_ref() {
                let pe = svc.stats().epoch;
                while cand.stats().epoch < pe {
                    if Instant::now() >= ship {
                        return Err("prefix never shipped to the candidate".to_string());
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            // The kill: stop serving mid-burst and release the WAL so
            // the deposed primary can be restarted from its directory.
            let (svc, server) = primary_slot.take().ok_or("primary already killed")?;
            server.shutdown();
            drop_service(svc);
            let t0 = Instant::now();
            killed_at = Some(t0);
            let cand = cand.clone();
            watcher = Some(std::thread::spawn(move || {
                let deadline = Instant::now() + Duration::from_secs(60);
                while Instant::now() < deadline {
                    if cand.stats().role == "primary" {
                        return Some(t0.elapsed());
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                None
            }));
        }
        let id = format!("TP{i:04}");
        let acked_at = write_failover(&targets, &id)?;
        acked.push(id);
        if let (Some(t0), None) = (killed_at, unavailable) {
            unavailable = Some(acked_at.duration_since(t0));
        }
    }
    let promotion = watcher
        .ok_or("kill never happened")?
        .join()
        .map_err(|_| "promotion watcher panicked")?
        .ok_or("candidate never promoted within 60s")?;
    let unavailable = unavailable.ok_or("no write acked after the kill")?;
    let new_term = cand.stats().term;

    // The deposed primary wakes up: same WAL directory, no knowledge of
    // the failover beyond `--peers`. It boots as a primary of the old
    // term; the fence must demote it, and the new primary's snapshot
    // bootstrap must retract any acked-but-unshipped suffix.
    let (deposed, dserver, daddr) = open(mk(Some(base.join("primary")), None, false, 0))?;
    // A stale-lineage handshake observes the fence directly: any node
    // that has durably seen the new term is rejected with STALE_TERM.
    // Probe *before* handing it peers — once the telemetry poller can
    // discover the new primary it may demote this node first, and a
    // demoted node answers "I'm a follower" instead of the fence.
    let stale_fenced = Client::connect(&daddr)
        .ok()
        .and_then(|mut c| c.roundtrip(&format!("REPLICATE 0 term={new_term}")).ok())
        .is_some_and(|line| line.contains("STALE_TERM"));
    deposed.set_peers(vec![caddr.clone()]);

    // Rejoin: the deposed primary demotes (probe and telemetry poll
    // both fence it) and both replicas converge on the new lineage.
    let converge = Instant::now() + Duration::from_secs(60);
    let mut deposed_rejoined = false;
    while Instant::now() < converge {
        let ce = cand.stats().epoch;
        let ds = deposed.stats();
        let fs = follower.stats();
        if ds.role == "follower" && ds.epoch == ce && fs.epoch == ce {
            deposed_rejoined = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // Exact-set audit on every node: all acked writes present, none
    // applied twice.
    let mut lost = 0u64;
    let mut duplicates = 0u64;
    for addr in [&caddr, &daddr, &faddr] {
        let (mut c, _) = connect_with_retry(std::slice::from_ref(addr), 0)
            .map_err(|e| format!("audit connect {addr}: {e}"))?;
        let line = c
            .roundtrip("SQL SELECT Id FROM SUBMARINE")
            .map_err(|e| format!("audit read {addr}: {e}"))?;
        let v = json::parse(&line).map_err(|e| format!("audit reply {addr}: {e}"))?;
        let mut counts: std::collections::BTreeMap<String, usize> =
            std::collections::BTreeMap::new();
        for row in v.get("rows").and_then(Json::as_array).unwrap_or(&[]) {
            if let Some(id) = row
                .as_array()
                .and_then(|r| r.first())
                .and_then(Json::as_str)
            {
                *counts.entry(id.trim().to_string()).or_insert(0) += 1;
            }
        }
        for id in &acked {
            match counts.get(id).copied().unwrap_or(0) {
                0 => {
                    eprintln!("LOST: acked write {id} missing on {addr}");
                    lost += 1;
                }
                1 => {}
                n => {
                    eprintln!("DUPLICATE: acked write {id} applied {n} times on {addr}");
                    duplicates += 1;
                }
            }
        }
        c.quit();
    }

    dserver.shutdown();
    cserver.shutdown();
    fserver.shutdown();
    drop_service(deposed);
    drop_service(cand);
    drop(follower);
    let _ = std::fs::remove_dir_all(&base);
    Ok(FailoverRound {
        promotion,
        unavailable,
        acked,
        lost,
        duplicates,
        stale_fenced,
        deposed_rejoined,
    })
}

/// The `--topology failover` workload: `--rounds` seeded kill/promote
/// rounds (see [`failover_round`]), with time-to-promotion and
/// write-unavailability percentiles, a zero-loss / zero-duplicate
/// audit, and the replication counters CI greps. This is how
/// `BENCH_failover.json` is measured.
fn failover_main(args: &Args) {
    println!(
        "serve_load failover: {} round(s), failover timeout {} ms (fsync {})",
        args.rounds, args.failover_timeout_ms, args.fsync
    );
    let mut promotions_ms = Vec::with_capacity(args.rounds);
    let mut unavailable_ms = Vec::with_capacity(args.rounds);
    let mut acked_total = 0u64;
    let mut lost = 0u64;
    let mut duplicates = 0u64;
    let mut failed = false;
    for round in 0..args.rounds {
        match failover_round(args, round) {
            Ok(r) => {
                println!(
                    "round {round}: promoted in {} ms, writes unavailable {} ms, \
                     {} acked, stale-term fence {}, deposed primary {}",
                    r.promotion.as_millis(),
                    r.unavailable.as_millis(),
                    r.acked.len(),
                    if r.stale_fenced { "OK" } else { "MISSING" },
                    if r.deposed_rejoined {
                        "demoted and converged"
                    } else {
                        "NEVER REJOINED"
                    },
                );
                promotions_ms.push(r.promotion.as_millis() as u64);
                unavailable_ms.push(r.unavailable.as_millis() as u64);
                acked_total += r.acked.len() as u64;
                lost += r.lost;
                duplicates += r.duplicates;
                if !r.stale_fenced || !r.deposed_rejoined {
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("FAIL: round {round}: {e}");
                failed = true;
            }
        }
    }
    promotions_ms.sort_unstable();
    unavailable_ms.sort_unstable();
    println!(
        "failover timing: rounds={} timeout_ms={} promotion_p50_ms={} promotion_p95_ms={} \
         unavailability_p50_ms={} unavailability_p95_ms={}",
        promotions_ms.len(),
        args.failover_timeout_ms,
        percentile(&promotions_ms, 0.50),
        percentile(&promotions_ms, 0.95),
        percentile(&unavailable_ms, 0.50),
        percentile(&unavailable_ms, 0.95),
    );
    println!(
        "failover audit: acked={acked_total} present={} lost={lost} duplicates={duplicates}",
        acked_total - lost,
    );
    // Process-global counters, so these totals span every round.
    let counters = intensio_obs::metrics().snapshot().counters;
    let counter = |name: &str| counters.get(name).copied().unwrap_or(0);
    println!(
        "counters: repl.promotions={} repl.demotions={} repl.stale_term_rejections={} \
         repl.lineage_bootstraps={} repl.promotion_failures={}",
        counter("repl.promotions"),
        counter("repl.demotions"),
        counter("repl.stale_term_rejections"),
        counter("repl.lineage_bootstraps"),
        counter("repl.promotion_failures"),
    );
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("FAIL: {what}");
            failed = true;
        }
    };
    check(
        promotions_ms.len() == args.rounds,
        "every round must complete",
    );
    check(lost == 0, "zero lost acked writes across all rounds");
    check(
        duplicates == 0,
        "zero duplicate applications across all rounds",
    );
    check(
        counter("repl.promotions") >= args.rounds as u64,
        "every round must record a promotion",
    );
    check(
        counter("repl.stale_term_rejections") >= args.rounds as u64,
        "every round must fence the deposed primary",
    );
    if failed {
        std::process::exit(1);
    }
    println!("PASS");
}

/// What one injected-fault scenario measured and verified.
struct PartitionOutcome {
    /// Fault injection to the winner candidate's `role == "primary"`;
    /// `None` for scenarios that must not promote at all.
    promotion: Option<Duration>,
    /// Fault injection to the first write acked on the majority side.
    unavailable: Option<Duration>,
    /// Stale reads served by the stranded minority primary while the
    /// partition was up: (answered, attempted).
    minority_reads: (u64, u64),
    /// Fault clear to full convergence: one primary, one term,
    /// identical epochs on all three nodes.
    heal: Duration,
    acked: Vec<String>,
    lost: u64,
    duplicates: u64,
    /// Minority-acked writes still visible anywhere after the heal —
    /// the single-copy contract says the rejoin must retract them.
    leaked: u64,
    /// The term the cluster converged on.
    final_term: u64,
    /// Invariant violations observed mid-scenario (empty on success).
    notes: Vec<String>,
}

/// Failover seeds whose deterministic promotion deadlines are far
/// enough apart that the earlier one (the winner) always promotes
/// before the later one's pre-promotion sweep runs — the same scan the
/// dueling-candidates drill in the serve test suite uses. Requires
/// `--failover-timeout-ms >= 400` so the jitter band is wide enough.
fn partition_seeds(timeout: Duration) -> (u64, u64) {
    let deadline_for = |seed: u64| {
        timeout / 2
            + intensio_fault::Backoff::new(timeout, timeout, seed.wrapping_add(1)).delay_for(0)
    };
    let (win, lose) = (1u64..=64)
        .flat_map(|x| (1u64..=64).map(move |y| (x, y)))
        .filter(|(x, y)| x != y && deadline_for(*x) < deadline_for(*y))
        .max_by_key(|(x, y)| deadline_for(*y) - deadline_for(*x))
        .expect("seed pool yields a winner/loser pair");
    assert!(
        deadline_for(lose) - deadline_for(win) >= Duration::from_millis(150),
        "seed pool too narrow for a deterministic winner"
    );
    (win, lose)
}

/// Three in-process nodes sharing this process's link-fault registry:
/// primary `a` polling its peers, durable candidate `b` (seeded to win
/// any promotion race), memory candidate `c` (seeded to lose). Address
/// aliases are registered so a `net.*` spec written in terms of labels
/// also governs dials that only know a peer's address.
struct PartitionCluster {
    a: Arc<Service>,
    b: Arc<Service>,
    c: Arc<Service>,
    servers: Vec<Server>,
    /// `[a, b, c]` listen addresses.
    addrs: [String; 3],
    base: std::path::PathBuf,
}

impl PartitionCluster {
    fn spawn(args: &Args, tag: &str) -> Result<PartitionCluster, String> {
        intensio_net::faults::clear();
        intensio_net::faults::clear_aliases();
        let timeout = Duration::from_millis(args.failover_timeout_ms);
        let (win, lose) = partition_seeds(timeout);
        let base =
            std::env::temp_dir().join(format!("intensio-partition-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let mk = |label: &str,
                  data_dir: Option<std::path::PathBuf>,
                  replicate_from: Option<String>,
                  candidate: bool,
                  seed: u64| ServiceConfig {
            workers: args.workers,
            data_dir,
            wal: intensio_wal::WalConfig {
                fsync: args.fsync,
                ..intensio_wal::WalConfig::default()
            },
            replicate_from,
            candidate,
            failover_timeout: timeout,
            failover_seed: seed,
            repl_heartbeat: Duration::from_millis(100),
            net_label: label.to_string(),
            ..ServiceConfig::default()
        };
        let open = |cfg: ServiceConfig| -> Result<(Arc<Service>, Server, String), String> {
            let db = intensio_shipdb::ship_database().map_err(|e| e.to_string())?;
            let model = intensio_shipdb::ship_model().map_err(|e| e.to_string())?;
            let svc = Arc::new(Service::with_config(db, model, cfg).map_err(|e| e.to_string())?);
            let server = Server::bind(svc.clone(), "127.0.0.1:0").map_err(|e| e.to_string())?;
            let addr = server.local_addr().to_string();
            Ok((svc, server, addr))
        };
        let (a, aserver, paddr) = open(mk("a", Some(base.join("a")), None, false, 0))?;
        let (b, bserver, baddr) = open(mk(
            "b",
            Some(base.join("b")),
            Some(paddr.clone()),
            true,
            win,
        ))?;
        // `c` cannot know `b`'s address before `b` binds, so its
        // rotation is primary-first with the sibling as the fallback
        // the pre-promotion sweep probes.
        let (c, cserver, caddr) =
            open(mk("c", None, Some(format!("{paddr},{baddr}")), true, lose))?;
        intensio_net::faults::register_alias(&paddr, "a");
        intensio_net::faults::register_alias(&baddr, "b");
        intensio_net::faults::register_alias(&caddr, "c");
        // The poller is how a stranded primary discovers a newer term
        // after a heal — without peers it would stay primary forever.
        a.set_peers(vec![baddr.clone(), caddr.clone()]);
        let cluster = PartitionCluster {
            a,
            b,
            c,
            servers: vec![aserver, bserver, cserver],
            addrs: [paddr, baddr, caddr],
            base,
        };
        cluster.await_shipped("initial catch-up")?;
        Ok(cluster)
    }

    /// Wait until all three nodes sit at the same epoch.
    fn await_shipped(&self, what: &str) -> Result<Duration, String> {
        let start = Instant::now();
        loop {
            let (ea, eb, ec) = (
                self.a.stats().epoch,
                self.b.stats().epoch,
                self.c.stats().epoch,
            );
            if ea == eb && eb == ec {
                return Ok(start.elapsed());
            }
            if start.elapsed() >= Duration::from_secs(30) {
                return Err(format!("{what}: epochs stuck at {ea}/{eb}/{ec}"));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Wait until the cluster has exactly one primary, every node is on
    /// `want_term`, and all epochs match; returns the elapsed time.
    fn await_converged(&self, want_term: u64, what: &str) -> Result<Duration, String> {
        let start = Instant::now();
        loop {
            let (sa, sb, sc) = (self.a.stats(), self.b.stats(), self.c.stats());
            let primaries = [&sa, &sb, &sc]
                .iter()
                .filter(|s| s.role == "primary")
                .count();
            if primaries == 1
                && [sa.term, sb.term, sc.term] == [want_term; 3]
                && sa.epoch == sb.epoch
                && sb.epoch == sc.epoch
            {
                return Ok(start.elapsed());
            }
            if start.elapsed() >= Duration::from_secs(60) {
                return Err(format!(
                    "{what}: never converged (roles {}/{}/{}, terms {}/{}/{}, epochs {}/{}/{})",
                    sa.role,
                    sb.role,
                    sc.role,
                    sa.term,
                    sb.term,
                    sc.term,
                    sa.epoch,
                    sb.epoch,
                    sc.epoch,
                ));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Watch `b` (via its in-process handle — the control plane is not
    /// the network) until it reports `role == "primary"`.
    fn watch_promotion(&self, from: Instant) -> std::thread::JoinHandle<Option<Duration>> {
        let b = self.b.clone();
        std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(60);
            while Instant::now() < deadline {
                if b.stats().role == "primary" {
                    return Some(from.elapsed());
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            None
        })
    }

    /// Exact-set audit over the wire on all three nodes: every acked
    /// write present exactly once, every `banned` (retracted) write
    /// absent. Returns `(lost, duplicates, leaked)`.
    fn audit(&self, acked: &[String], banned: &[String]) -> Result<(u64, u64, u64), String> {
        let (mut lost, mut duplicates, mut leaked) = (0u64, 0u64, 0u64);
        for addr in &self.addrs {
            let (mut c, _) = connect_with_retry(std::slice::from_ref(addr), 0)
                .map_err(|e| format!("audit connect {addr}: {e}"))?;
            let line = c
                .roundtrip("SQL SELECT Id FROM SUBMARINE")
                .map_err(|e| format!("audit read {addr}: {e}"))?;
            let v = json::parse(&line).map_err(|e| format!("audit reply {addr}: {e}"))?;
            let mut counts: std::collections::BTreeMap<String, usize> =
                std::collections::BTreeMap::new();
            for row in v.get("rows").and_then(Json::as_array).unwrap_or(&[]) {
                if let Some(id) = row
                    .as_array()
                    .and_then(|r| r.first())
                    .and_then(Json::as_str)
                {
                    *counts.entry(id.trim().to_string()).or_insert(0) += 1;
                }
            }
            for id in acked {
                match counts.get(id).copied().unwrap_or(0) {
                    0 => {
                        eprintln!("LOST: acked write {id} missing on {addr}");
                        lost += 1;
                    }
                    1 => {}
                    n => {
                        eprintln!("DUPLICATE: acked write {id} applied {n} times on {addr}");
                        duplicates += 1;
                    }
                }
            }
            for id in banned {
                if counts.get(id).copied().unwrap_or(0) > 0 {
                    eprintln!("LEAKED: retracted minority write {id} still visible on {addr}");
                    leaked += 1;
                }
            }
            c.quit();
        }
        Ok((lost, duplicates, leaked))
    }

    fn teardown(self) {
        for server in self.servers {
            server.shutdown();
        }
        drop_service(self.a);
        drop_service(self.b);
        drop_service(self.c);
        intensio_net::faults::clear();
        intensio_net::faults::clear_aliases();
        let _ = std::fs::remove_dir_all(&self.base);
    }
}

/// Append one row through a plain client connection (clients dial with
/// the `client` label, so node-targeted link faults never touch them).
fn partition_append(addr: &str, id: &str) -> Result<(), String> {
    let mut c = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let line = c
        .roundtrip(&format!(
            "QUEL append to SUBMARINE (Id = \"{id}\", \
             Name = \"Partition Probe\", Class = \"0101\")"
        ))
        .map_err(|e| format!("append {id} on {addr}: {e}"))?;
    let v = json::parse(&line).map_err(|e| format!("append reply: {e}"))?;
    if v.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("append {id} rejected on {addr}: {}", line.trim()));
    }
    Ok(())
}

/// One stale-read probe: does `addr` still answer a SQL read?
fn partition_read_ok(addr: &str) -> bool {
    Client::connect(addr)
        .ok()
        .and_then(|mut c| c.roundtrip("SQL SELECT Id FROM SUBMARINE").ok())
        .and_then(|line| json::parse(&line).ok())
        .is_some_and(|v| v.get("ok").and_then(Json::as_bool) == Some(true))
}

/// Inject `specs` into the shared registry, failing the scenario on a
/// refused spec rather than silently running without the fault.
fn partition_inject(specs: &str) -> Result<(), String> {
    intensio_net::faults::configure_str(specs).map_err(|e| format!("fault spec {specs:?}: {e}"))
}

/// Symmetric split: `a` loses both followers at once. The majority
/// promotes `b`, the stranded primary keeps serving stale reads until
/// the term fence demotes it, and the heal converges everyone on the
/// new lineage.
fn partition_scenario_symmetric(args: &Args) -> Result<PartitionOutcome, String> {
    let cluster = PartitionCluster::spawn(args, "symmetric")?;
    let [paddr, baddr, caddr] = cluster.addrs.clone();
    let mut notes = Vec::new();
    let mut acked = Vec::new();
    for i in 0..4 {
        let id = format!("SP{i:04}");
        partition_append(&paddr, &id)?;
        acked.push(id);
    }
    cluster.await_shipped("pre-cut prefix")?;

    partition_inject("net.partition=a<->b;net.partition#2=a<->c")?;
    let cut = Instant::now();
    let watcher = cluster.watch_promotion(cut);
    // The writer fails over to the majority rotation; the first ack
    // bounds the write-unavailability window.
    let mut unavailable = None;
    let majority = [baddr.clone(), caddr.clone()];
    for i in 0..4 {
        let id = format!("SPM{i:04}");
        let at = write_failover(&majority, &id)?;
        acked.push(id);
        if unavailable.is_none() {
            unavailable = Some(at.duration_since(cut));
        }
    }
    let promotion = watcher
        .join()
        .map_err(|_| "promotion watcher panicked")?
        .ok_or("b never promoted behind the symmetric split")?;
    // The stranded minority primary must keep answering stale reads
    // (and must still believe it is the term-0 primary).
    let mut minority_reads = (0u64, 0u64);
    for _ in 0..20 {
        minority_reads.1 += 1;
        if partition_read_ok(&paddr) {
            minority_reads.0 += 1;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let stranded = cluster.a.stats();
    if stranded.role != "primary" || stranded.term != 0 {
        notes.push(format!(
            "stranded primary should still be term-0 primary, is {} at term {}",
            stranded.role, stranded.term
        ));
    }
    // The fence, observed directly: a handshake carrying the new term
    // is rejected with STALE_TERM and demotes the stranded primary.
    let new_term = cluster.b.stats().term;
    let fenced = Client::connect(&paddr)
        .ok()
        .and_then(|mut c| c.roundtrip(&format!("REPLICATE 0 term={new_term}")).ok())
        .is_some_and(|line| line.contains("STALE_TERM"));
    if !fenced {
        notes.push("stale-term fence missing on the stranded primary".to_string());
    }

    intensio_net::faults::clear();
    let heal = cluster.await_converged(new_term, "post-heal")?;
    let _ = caddr;
    let (lost, duplicates, leaked) = cluster.audit(&acked, &[])?;
    cluster.teardown();
    Ok(PartitionOutcome {
        promotion: Some(promotion),
        unavailable,
        minority_reads,
        heal,
        acked,
        lost,
        duplicates,
        leaked,
        final_term: new_term,
        notes,
    })
}

/// One-way (half-open) link: `a`'s frames to `b` vanish while `b`'s
/// dials still reach `a`. `b` starves and takes over; writes acked by
/// the oblivious minority primary during the split must be retracted
/// when it rejoins the new lineage.
fn partition_scenario_oneway(args: &Args) -> Result<PartitionOutcome, String> {
    let cluster = PartitionCluster::spawn(args, "oneway")?;
    let [paddr, baddr, _caddr] = cluster.addrs.clone();
    let mut notes = Vec::new();
    let mut acked = Vec::new();
    for i in 0..4 {
        let id = format!("OW{i:04}");
        partition_append(&paddr, &id)?;
        acked.push(id);
    }
    cluster.await_shipped("pre-cut prefix")?;

    partition_inject("net.oneway=a->b")?;
    let cut = Instant::now();
    let watcher = cluster.watch_promotion(cut);
    let mut unavailable = None;
    for i in 0..4 {
        let id = format!("OWM{i:04}");
        let at = write_failover(std::slice::from_ref(&baddr), &id)?;
        acked.push(id);
        if unavailable.is_none() {
            unavailable = Some(at.duration_since(cut));
        }
    }
    let promotion = watcher
        .join()
        .map_err(|_| "promotion watcher panicked")?
        .ok_or("b never promoted behind the one-way link")?;
    // Split brain, live: `a` cannot hear the new term (its poll dials
    // toward `b` die on the severed direction), so it keeps acking
    // writes. The single-copy contract retracts them on rejoin.
    let mut banned = Vec::new();
    for i in 0..2 {
        let id = format!("OWX{i:03}");
        partition_append(&paddr, &id)?;
        banned.push(id);
    }
    let oblivious = cluster.a.stats();
    if oblivious.role != "primary" || oblivious.term != 0 {
        notes.push(format!(
            "minority primary should still be term-0 primary, is {} at term {}",
            oblivious.role, oblivious.term
        ));
    }
    if cluster.c.stats().term != 0 {
        notes.push("follower c crossed terms before the heal".to_string());
    }
    let new_term = cluster.b.stats().term;

    intensio_net::faults::clear();
    let heal = cluster.await_converged(new_term, "post-heal")?;
    let (lost, duplicates, leaked) = cluster.audit(&acked, &banned)?;
    cluster.teardown();
    Ok(PartitionOutcome {
        promotion: Some(promotion),
        unavailable,
        minority_reads: (0, 0),
        heal,
        acked,
        lost,
        duplicates,
        leaked,
        final_term: new_term,
        notes,
    })
}

/// Flapping links: short full cuts, each healed well inside the
/// failover timeout. Nobody may promote; every blackholed record must
/// resync after each heal (a post-heal marker write trips the
/// followers' gap detection — heartbeats alone never replay history).
fn partition_scenario_flapping(args: &Args) -> Result<PartitionOutcome, String> {
    let cluster = PartitionCluster::spawn(args, "flapping")?;
    let [paddr, _baddr, _caddr] = cluster.addrs.clone();
    let mut notes = Vec::new();
    let mut acked = Vec::new();
    let flap_hold = Duration::from_millis((args.failover_timeout_ms / 4).min(150));
    let mut heal = Duration::ZERO;
    for flap in 0..4 {
        partition_inject("net.partition=a<->b;net.partition#2=a<->c")?;
        for i in 0..2 {
            let id = format!("FL{flap}{i:03}");
            partition_append(&paddr, &id)?;
            acked.push(id);
        }
        std::thread::sleep(flap_hold);
        intensio_net::faults::clear();
        let marker = format!("FLM{flap:04}");
        partition_append(&paddr, &marker)?;
        acked.push(marker);
        heal = heal.max(cluster.await_shipped(&format!("flap {flap} resync"))?);
    }
    let (sa, sb, sc) = (cluster.a.stats(), cluster.b.stats(), cluster.c.stats());
    if sa.role != "primary" || sb.role == "primary" || sc.role == "primary" {
        notes.push(format!(
            "flapping must not change roles (got {}/{}/{})",
            sa.role, sb.role, sc.role
        ));
    }
    if [sa.term, sb.term, sc.term] != [0; 3] {
        notes.push(format!(
            "flapping must not bump terms (got {}/{}/{})",
            sa.term, sb.term, sc.term
        ));
    }
    let (lost, duplicates, leaked) = cluster.audit(&acked, &[])?;
    cluster.teardown();
    Ok(PartitionOutcome {
        promotion: None,
        unavailable: None,
        minority_reads: (0, 0),
        heal,
        acked,
        lost,
        duplicates,
        leaked,
        final_term: 0,
        notes,
    })
}

/// Pure heartbeat delay, well past the failover timeout: candidates
/// come due, but their pre-promotion sweep still reaches the primary
/// (poll replies ride unlabeled connections), so slow must never be
/// mistaken for dead — no promotion, no term bump, full availability.
fn partition_scenario_delay(args: &Args) -> Result<PartitionOutcome, String> {
    let cluster = PartitionCluster::spawn(args, "delay")?;
    let [paddr, _baddr, _caddr] = cluster.addrs.clone();
    let mut notes = Vec::new();
    let mut acked = Vec::new();
    for i in 0..2 {
        let id = format!("DL{i:04}");
        partition_append(&paddr, &id)?;
        acked.push(id);
    }
    cluster.await_shipped("pre-delay prefix")?;

    let delay_ms = args.failover_timeout_ms * 2;
    partition_inject(&format!(
        "net.delay:{delay_ms}=a->b;net.delay:{delay_ms}#2=a->c"
    ))?;
    // Several failover timeouts under delayed heartbeats: every
    // candidate becomes due at least once.
    std::thread::sleep(Duration::from_millis(args.failover_timeout_ms * 3));
    let mut minority_reads = (0u64, 0u64);
    for _ in 0..10 {
        minority_reads.1 += 1;
        if partition_read_ok(&paddr) {
            minority_reads.0 += 1;
        }
    }
    let id = "DLW0000".to_string();
    partition_append(&paddr, &id)?;
    acked.push(id);
    let (sb, sc) = (cluster.b.stats(), cluster.c.stats());
    if sb.role == "primary" || sc.role == "primary" || sb.term != 0 || sc.term != 0 {
        notes.push(format!(
            "delay caused a false promotion (roles {}/{}, terms {}/{})",
            sb.role, sc.role, sb.term, sc.term
        ));
    }

    intensio_net::faults::clear();
    let heal = cluster.await_converged(0, "post-delay")?;
    let (lost, duplicates, leaked) = cluster.audit(&acked, &[])?;
    cluster.teardown();
    Ok(PartitionOutcome {
        promotion: None,
        unavailable: None,
        minority_reads,
        heal,
        acked,
        lost,
        duplicates,
        leaked,
        final_term: 0,
        notes,
    })
}

/// The `--topology partition` workload: four injected-link-fault
/// scenarios (see the module docs), each with promotion / availability
/// / heal timings and a zero-loss, zero-duplicate, zero-leak audit.
/// This is how `BENCH_partition.json` is measured.
fn partition_main(args: &Args) {
    if args.failover_timeout_ms < 400 {
        eprintln!(
            "serve_load: --topology partition needs --failover-timeout-ms >= 400 \
             (the deterministic winner/loser seed scan needs the jitter band)"
        );
        std::process::exit(2);
    }
    let seed = std::env::var("INTENSIO_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    intensio_net::faults::set_seed(seed);
    println!(
        "serve_load partition: 4 scenario(s), failover timeout {} ms, chaos seed {seed} (fsync {})",
        args.failover_timeout_ms, args.fsync
    );
    let counters_before = intensio_obs::metrics().snapshot().counters;
    type Scenario = fn(&Args) -> Result<PartitionOutcome, String>;
    let scenarios: [(&str, Scenario); 4] = [
        ("symmetric-split", partition_scenario_symmetric),
        ("oneway-link", partition_scenario_oneway),
        ("flapping-links", partition_scenario_flapping),
        ("heartbeat-delay", partition_scenario_delay),
    ];
    let mut failed = false;
    let mut acked_total = 0u64;
    for (name, run) in scenarios {
        match run(args) {
            Ok(o) => {
                let promotion = match o.promotion {
                    Some(d) => format!("promoted in {} ms", d.as_millis()),
                    None => "no promotion (by design)".to_string(),
                };
                let unavailable = match o.unavailable {
                    Some(d) => format!("writes unavailable {} ms", d.as_millis()),
                    None => "writes never unavailable".to_string(),
                };
                println!(
                    "scenario {name}: {promotion}, {unavailable}, \
                     minority stale reads {}/{}, healed in {} ms, \
                     {} acked, lost {}, duplicates {}, leaked {}, final term {}",
                    o.minority_reads.0,
                    o.minority_reads.1,
                    o.heal.as_millis(),
                    o.acked.len(),
                    o.lost,
                    o.duplicates,
                    o.leaked,
                    o.final_term,
                );
                acked_total += o.acked.len() as u64;
                for note in &o.notes {
                    eprintln!("FAIL: {name}: {note}");
                    failed = true;
                }
                if o.lost > 0 || o.duplicates > 0 || o.leaked > 0 {
                    failed = true;
                }
                if o.minority_reads.0 < o.minority_reads.1 {
                    eprintln!(
                        "FAIL: {name}: {} of {} minority stale reads went unanswered",
                        o.minority_reads.1 - o.minority_reads.0,
                        o.minority_reads.1
                    );
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("FAIL: scenario {name}: {e}");
                failed = true;
            }
        }
    }
    // Counter deltas across the whole run: exactly the two scenarios
    // that partition the majority away may promote, and the symmetric
    // split must have fenced its stranded primary.
    let counters = intensio_obs::metrics().snapshot().counters;
    let delta = |name: &str| {
        counters.get(name).copied().unwrap_or(0) - counters_before.get(name).copied().unwrap_or(0)
    };
    println!(
        "counters: repl.promotions={} repl.demotions={} repl.stale_term_rejections={} \
         repl.half_open_drops={} repl.lineage_bootstraps={}",
        delta("repl.promotions"),
        delta("repl.demotions"),
        delta("repl.stale_term_rejections"),
        delta("repl.half_open_drops"),
        delta("repl.lineage_bootstraps"),
    );
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("FAIL: {what}");
            failed = true;
        }
    };
    check(
        delta("repl.promotions") == 2,
        "exactly two promotions (symmetric split and one-way link, nothing else)",
    );
    check(
        delta("repl.stale_term_rejections") >= 1,
        "the stranded primary must be fenced at least once",
    );
    check(
        delta("repl.demotions") >= 2,
        "both partition scenarios must demote the stranded primary",
    );
    check(acked_total > 0, "scenarios must ack writes");
    if failed {
        std::process::exit(1);
    }
    println!("PASS");
}

fn main() {
    let args = parse_args();
    intensio_obs::set_enabled(args.obs);
    if let Some(dir) = &args.trace_dir {
        let path = intensio_obs::set_trace_sink(dir, args.trace_sample).expect("open trace sink");
        println!(
            "serve_load tracing: {} (sample {})",
            path.display(),
            args.trace_sample
        );
    }
    match args.topology {
        Some(Topology::OnePrimaryTwoFollowers) => return topology_main(&args),
        Some(Topology::Failover) => return failover_main(&args),
        Some(Topology::Partition) => return partition_main(&args),
        None => {}
    }
    let db = intensio_shipdb::ship_database().expect("ship database");
    let model = intensio_shipdb::ship_model().expect("ship model");
    // In durable mode, stage the WAL in a throwaway directory unless the
    // caller pinned one (to measure a specific filesystem, say).
    let scratch_dir = if args.durable && args.data_dir.is_none() {
        let dir = std::env::temp_dir().join(format!("intensio-serve-load-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Some(dir)
    } else {
        None
    };
    let cfg = ServiceConfig {
        workers: args.workers,
        data_dir: args.data_dir.clone().or_else(|| scratch_dir.clone()),
        wal: intensio_wal::WalConfig {
            fsync: args.fsync,
            ..intensio_wal::WalConfig::default()
        },
        ..ServiceConfig::default()
    };
    let service = Arc::new(Service::with_config(db, model, cfg).expect("service opens"));
    let server = Server::bind(service.clone(), "127.0.0.1:0").expect("server binds");
    let addr = server.local_addr().to_string();
    println!(
        "serve_load: {} threads x {} queries against {} ({} workers){}",
        args.threads,
        args.queries / args.threads,
        addr,
        args.workers,
        if args.durable {
            format!("; durable (fsync {})", args.fsync)
        } else {
            String::new()
        }
    );

    let per_thread = (args.queries / args.threads).max(2);
    let repeated = [
        "SELECT Class FROM CLASS WHERE Displacement > 8000",
        "SELECT CLASS.CLASS FROM CLASS WHERE CLASS.DISPLACEMENT > 8000",
        "SELECT SUBMARINE.ID, CLASS.TYPE FROM SUBMARINE, CLASS \
         WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
        "SELECT Class FROM CLASS WHERE Displacement < 3000",
    ];

    // Durable mode: how many appends each thread issues in its write
    // phase, before any querying, so the WAL is on the critical path.
    let writes_per_thread = if args.durable {
        (per_thread / 4).clamp(2, 999)
    } else {
        0
    };

    let write_done = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..args.threads {
        let addr = addr.clone();
        let write_done = write_done.clone();
        handles.push(std::thread::spawn(move || {
            let (mut client, _) =
                connect_with_retry(std::slice::from_ref(&addr), 0).expect("client connects");
            let mut out = ThreadOutcome::default();
            for i in 0..writes_per_thread {
                // Unique char(7) id per (thread, write): "L" tt iii.
                let sent = Instant::now();
                let line = client
                    .roundtrip(&format!(
                        "QUEL append to SUBMARINE (Id = \"L{t:02}{i:03}\", \
                         Name = \"WAL Probe\", Class = \"0101\")"
                    ))
                    .expect("write roundtrip");
                out.write_latencies_us
                    .push(sent.elapsed().as_micros().min(u64::MAX as u128) as u64);
                let v = json::parse(&line).expect("write reply parses");
                if v.get("ok").and_then(Json::as_bool) != Some(true) {
                    out.errors += 1;
                }
            }
            let unique_phase = per_thread / 2;
            for i in 0..per_thread {
                // Thread 0 issues the mid-run write between the phases.
                if t == 0 && i == unique_phase {
                    let line = client
                        .roundtrip(
                            "QUEL append to SUBMARINE (Id = \"SSBL000\", \
                             Name = \"Load Probe\", Class = \"0101\")",
                        )
                        .expect("write roundtrip");
                    let v = json::parse(&line).expect("write reply parses");
                    if v.get("ok").and_then(Json::as_bool) != Some(true) {
                        out.errors += 1;
                    } else {
                        write_done.store(
                            v.get("epoch").and_then(Json::as_u64).unwrap_or(0),
                            Ordering::SeqCst,
                        );
                    }
                }

                let in_unique = i < unique_phase;
                let (request, oracle) = if in_unique {
                    // Globally unique threshold: no fingerprint repeats.
                    let n = 1000 + (t * per_thread + i) as i64;
                    (
                        format!("SQL SELECT Class FROM CLASS WHERE Displacement > {n}"),
                        Some(expected_classes(n)),
                    )
                } else {
                    let q = repeated[(t + i) % repeated.len()];
                    let oracle = if q.contains("> 8000") && !q.contains("SUBMARINE") {
                        Some(expected_classes(8000))
                    } else {
                        None
                    };
                    (format!("SQL {q}"), oracle)
                };

                let sent = Instant::now();
                let line = match client.roundtrip(&request) {
                    Ok(l) => l,
                    Err(_) => {
                        out.errors += 1;
                        continue;
                    }
                };
                out.latencies_us
                    .push(sent.elapsed().as_micros().min(u64::MAX as u128) as u64);
                let v = match json::parse(&line) {
                    Ok(v) => v,
                    Err(_) => {
                        out.errors += 1;
                        continue;
                    }
                };
                if v.get("ok").and_then(Json::as_bool) != Some(true) {
                    out.errors += 1;
                    continue;
                }
                if let Some(epoch) = v.get("epoch").and_then(Json::as_u64) {
                    out.max_epoch = out.max_epoch.max(epoch);
                }
                if !in_unique && v.get("cached").and_then(Json::as_bool) == Some(true) {
                    out.repeated_hits += 1;
                }
                if let Some(want) = oracle {
                    if response_classes(&v) != want {
                        out.wrong += 1;
                    }
                }
            }
            client.quit();
            out
        }));
    }

    let mut all = ThreadOutcome::default();
    for h in handles {
        let out = h.join().expect("load thread panicked");
        all.latencies_us.extend(out.latencies_us);
        all.write_latencies_us.extend(out.write_latencies_us);
        all.wrong += out.wrong;
        all.errors += out.errors;
        all.repeated_hits += out.repeated_hits;
        all.max_epoch = all.max_epoch.max(out.max_epoch);
    }
    let elapsed = started.elapsed();

    // `--profile`: ask the live server to PROFILE a representative
    // intensional query and print the flattened stage list, so CI can
    // grep the plan stages out of a load run.
    let mut profile_ok = true;
    if args.profile {
        fn flat_names(node: &Json, out: &mut Vec<String>) {
            if let Some(name) = node.get("name").and_then(Json::as_str) {
                out.push(name.to_string());
            }
            for child in node.get("children").and_then(Json::as_array).unwrap_or(&[]) {
                flat_names(child, out);
            }
        }
        let (mut c, _) =
            connect_with_retry(std::slice::from_ref(&addr), 0).expect("profile connects");
        let line = c
            .roundtrip("PROFILE SELECT Class FROM CLASS WHERE Displacement > 4000")
            .expect("profile roundtrip");
        c.quit();
        let v = json::parse(&line).expect("profile reply parses");
        let mut names = Vec::new();
        for node in v.get("tree").and_then(Json::as_array).unwrap_or(&[]) {
            flat_names(node, &mut names);
        }
        let total_us = v.get("total_us").and_then(Json::as_u64).unwrap_or(0);
        profile_ok = v.get("ok").and_then(Json::as_bool) == Some(true)
            && total_us > 0
            && names.iter().any(|n| n == "parse.sql");
        println!("profile stages ({total_us} us total): {}", names.join(" "));
    }

    // Let the triggered re-induction land, then read the final stats.
    let fresh = service.wait_rules_fresh(Duration::from_secs(10));
    let stats = service.stats();
    server.shutdown();

    all.latencies_us.sort_unstable();
    let total = all.latencies_us.len() as u64;
    println!(
        "completed {total} queries in {:.2}s ({:.0} q/s)",
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    println!(
        "latency p50 {} us, p95 {} us, p99 {} us",
        percentile(&all.latencies_us, 0.50),
        percentile(&all.latencies_us, 0.95),
        percentile(&all.latencies_us, 0.99)
    );
    println!(
        "cache: {} hits / {} misses overall; {} hits in the repeated phase",
        stats.cache_hits, stats.cache_misses, all.repeated_hits
    );
    println!(
        "epochs: write installed epoch {}, max observed {}, final {} \
         ({} inductions, rules {})",
        write_done.load(Ordering::SeqCst),
        all.max_epoch,
        stats.epoch,
        stats.inductions,
        if stats.rules_fresh { "fresh" } else { "stale" }
    );
    println!(
        "incorrect answers: {}, request errors: {}",
        all.wrong, all.errors
    );
    if args.durable {
        all.write_latencies_us.sort_unstable();
        println!(
            "writes: {} durable appends, latency p50 {} us, p95 {} us, p99 {} us",
            all.write_latencies_us.len(),
            percentile(&all.write_latencies_us, 0.50),
            percentile(&all.write_latencies_us, 0.95),
            percentile(&all.write_latencies_us, 0.99)
        );
        match &stats.durability {
            Some(d) => println!(
                "wal (fsync {}): {} appends, {} bytes, {} fsyncs, {} checkpoints, segment {}",
                d.fsync,
                d.wal_appends,
                d.wal_append_bytes,
                d.wal_fsyncs,
                d.wal_checkpoints,
                d.wal_segment_seq
            ),
            None => println!("wal: no durability stats (?)"),
        }
    }
    if args.obs {
        println!("per-stage latency (from service histograms):");
        for stage in intensio_obs::Stage::ALL {
            let h = stats
                .metrics
                .stage(stage.name())
                .cloned()
                .unwrap_or_default();
            println!(
                "  {:<10} count {:>7}  p50 {:>6} us  p95 {:>6} us  p99 {:>6} us  mean {:>6} us",
                stage.name(),
                h.count,
                h.p50_us,
                h.p95_us,
                h.p99_us,
                h.mean_us()
            );
        }
    }

    let write_epoch = write_done.load(Ordering::SeqCst);
    let mut failed = false;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("FAIL: {what}");
            failed = true;
        }
    };
    check(all.wrong == 0, "every answer must match the oracle");
    check(all.errors == 0, "no request may error");
    check(
        all.repeated_hits > 0,
        "the repeated phase must hit the cache",
    );
    check(write_epoch >= 1, "the mid-run write must install an epoch");
    check(
        fresh && stats.epoch > write_epoch,
        "background re-induction must advance the epoch past the write",
    );
    check(
        all.max_epoch >= write_epoch,
        "queries must observe the post-write epoch while answering",
    );
    check(
        profile_ok,
        "the PROFILE probe must return a timed plan with pipeline stages",
    );
    if args.durable {
        let d = stats.durability.as_ref();
        check(d.is_some(), "durable mode must report WAL stats");
        check(
            d.is_some_and(|d| d.wal_appends >= all.write_latencies_us.len() as u64),
            "every acknowledged write must have a WAL append",
        );
    }
    if let Some(dir) = scratch_dir {
        match Arc::try_unwrap(service) {
            Ok(s) => drop(s), // close the WAL before sweeping its directory
            Err(arc) => drop(arc),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    if failed {
        std::process::exit(1);
    }
    println!("PASS");
}
