//! Load generator for `intensio-serve`: a multi-threaded mixed
//! workload over the TCP wire protocol, with an answer oracle.
//!
//! ```text
//! serve_load [--threads N] [--queries N] [--workers N] [--obs on|off]
//!            [--durable] [--data-dir PATH] [--fsync always|batch:N|off]
//! ```
//!
//! `--durable` opens the service with a write-ahead log (in a
//! throwaway temp directory unless `--data-dir` is given) and adds a
//! **write phase**: each client thread appends a batch of unique
//! submarines before querying, with write latencies tracked
//! separately. The run ends with the WAL counters (appends, bytes,
//! fsyncs, checkpoints), which is how `BENCH_wal.json` quantifies the
//! durability overhead per `--fsync` policy.
//!
//! `--obs off` disables all observability recording (spans, metrics,
//! the ring buffer) before the run — comparing a `--obs on` run
//! against `--obs off` on the same parameters measures the
//! instrumentation overhead. With observability on, the run ends with
//! a per-stage latency summary read from the service's histograms.
//!
//! The run has two phases per client thread:
//!
//! 1. **Unique phase** — every query has a distinct condition
//!    (`Displacement > n` for a per-request `n`), so the intensional
//!    cache cannot help; each answer is checked against an oracle
//!    computed from the Appendix C class table.
//! 2. **Repeated phase** — threads cycle through a small fixed query
//!    set, so the cache must start hitting. Between the phases one
//!    thread appends a submarine (a QUEL write), which bumps the epoch
//!    and triggers background re-induction; readers keep answering
//!    throughout, and the run verifies the epoch advanced again (the
//!    rule install) while queries were in flight.
//!
//! Exit status is non-zero if any answer was wrong, any request
//! errored, the repeated phase got no cache hits, or the epoch failed
//! to advance.

use intensio_serve::json::{self, Json};
use intensio_serve::{Client, Server, Service, ServiceConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    threads: usize,
    queries: usize,
    workers: usize,
    obs: bool,
    durable: bool,
    data_dir: Option<std::path::PathBuf>,
    fsync: intensio_wal::FsyncPolicy,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_load [--threads N] [--queries N] [--workers N] [--obs on|off]\n\
         \x20                 [--durable] [--data-dir PATH] [--fsync always|batch:N|off]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        threads: 4,
        queries: 1000,
        workers: 4,
        obs: true,
        durable: false,
        data_dir: None,
        fsync: intensio_wal::FsyncPolicy::Always,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |field: &mut usize| {
            *field = it
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| usage());
        };
        match a.as_str() {
            "--threads" => num(&mut args.threads),
            "--queries" => num(&mut args.queries),
            "--workers" => num(&mut args.workers),
            "--obs" => {
                args.obs = match it.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => usage(),
                };
            }
            "--durable" => args.durable = true,
            "--data-dir" => {
                args.durable = true;
                args.data_dir = Some(std::path::PathBuf::from(
                    it.next().unwrap_or_else(|| usage()),
                ));
            }
            "--fsync" => {
                let spec = it.next().unwrap_or_else(|| usage());
                args.fsync = intensio_wal::FsyncPolicy::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("serve_load: {e}");
                    usage()
                });
            }
            _ => usage(),
        }
    }
    if args.threads > 99 {
        eprintln!("serve_load: --threads must be <= 99 (write ids are char(7))");
        std::process::exit(2);
    }
    args
}

/// Connect to the server, retrying briefly: under load (or CI) the
/// accept backlog can transiently refuse a burst of simultaneous
/// connects, which is not worth failing a whole run over.
fn connect_with_retry(addr: &str) -> std::io::Result<Client> {
    let mut last_err = None;
    for _ in 0..5 {
        match Client::connect(addr) {
            Ok(c) => return Ok(c),
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    Err(last_err.expect("at least one attempt"))
}

/// Oracle: the classes with displacement strictly above `n`, sorted.
fn expected_classes(n: i64) -> Vec<String> {
    let mut v: Vec<String> = intensio_shipdb::data::CLASSES
        .iter()
        .filter(|(_, _, _, d)| *d > n)
        .map(|(c, _, _, _)| c.to_string())
        .collect();
    v.sort();
    v
}

fn response_classes(v: &Json) -> Vec<String> {
    let mut out: Vec<String> = v
        .get("rows")
        .and_then(Json::as_array)
        .unwrap_or(&[])
        .iter()
        .filter_map(|row| row.as_array()?.first()?.as_str().map(str::to_string))
        .collect();
    out.sort();
    out
}

#[derive(Default)]
struct ThreadOutcome {
    latencies_us: Vec<u64>,
    write_latencies_us: Vec<u64>,
    wrong: u64,
    errors: u64,
    repeated_hits: u64,
    max_epoch: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args = parse_args();
    intensio_obs::set_enabled(args.obs);
    let db = intensio_shipdb::ship_database().expect("ship database");
    let model = intensio_shipdb::ship_model().expect("ship model");
    // In durable mode, stage the WAL in a throwaway directory unless the
    // caller pinned one (to measure a specific filesystem, say).
    let scratch_dir = if args.durable && args.data_dir.is_none() {
        let dir = std::env::temp_dir().join(format!("intensio-serve-load-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Some(dir)
    } else {
        None
    };
    let cfg = ServiceConfig {
        workers: args.workers,
        data_dir: args.data_dir.clone().or_else(|| scratch_dir.clone()),
        wal: intensio_wal::WalConfig {
            fsync: args.fsync,
            ..intensio_wal::WalConfig::default()
        },
        ..ServiceConfig::default()
    };
    let service = Arc::new(Service::with_config(db, model, cfg).expect("service opens"));
    let server = Server::bind(service.clone(), "127.0.0.1:0").expect("server binds");
    let addr = server.local_addr().to_string();
    println!(
        "serve_load: {} threads x {} queries against {} ({} workers){}",
        args.threads,
        args.queries / args.threads,
        addr,
        args.workers,
        if args.durable {
            format!("; durable (fsync {})", args.fsync)
        } else {
            String::new()
        }
    );

    let per_thread = (args.queries / args.threads).max(2);
    let repeated = [
        "SELECT Class FROM CLASS WHERE Displacement > 8000",
        "SELECT CLASS.CLASS FROM CLASS WHERE CLASS.DISPLACEMENT > 8000",
        "SELECT SUBMARINE.ID, CLASS.TYPE FROM SUBMARINE, CLASS \
         WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
        "SELECT Class FROM CLASS WHERE Displacement < 3000",
    ];

    // Durable mode: how many appends each thread issues in its write
    // phase, before any querying, so the WAL is on the critical path.
    let writes_per_thread = if args.durable {
        (per_thread / 4).clamp(2, 999)
    } else {
        0
    };

    let write_done = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..args.threads {
        let addr = addr.clone();
        let write_done = write_done.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = connect_with_retry(&addr).expect("client connects");
            let mut out = ThreadOutcome::default();
            for i in 0..writes_per_thread {
                // Unique char(7) id per (thread, write): "L" tt iii.
                let sent = Instant::now();
                let line = client
                    .roundtrip(&format!(
                        "QUEL append to SUBMARINE (Id = \"L{t:02}{i:03}\", \
                         Name = \"WAL Probe\", Class = \"0101\")"
                    ))
                    .expect("write roundtrip");
                out.write_latencies_us
                    .push(sent.elapsed().as_micros().min(u64::MAX as u128) as u64);
                let v = json::parse(&line).expect("write reply parses");
                if v.get("ok").and_then(Json::as_bool) != Some(true) {
                    out.errors += 1;
                }
            }
            let unique_phase = per_thread / 2;
            for i in 0..per_thread {
                // Thread 0 issues the mid-run write between the phases.
                if t == 0 && i == unique_phase {
                    let line = client
                        .roundtrip(
                            "QUEL append to SUBMARINE (Id = \"SSBL000\", \
                             Name = \"Load Probe\", Class = \"0101\")",
                        )
                        .expect("write roundtrip");
                    let v = json::parse(&line).expect("write reply parses");
                    if v.get("ok").and_then(Json::as_bool) != Some(true) {
                        out.errors += 1;
                    } else {
                        write_done.store(
                            v.get("epoch").and_then(Json::as_u64).unwrap_or(0),
                            Ordering::SeqCst,
                        );
                    }
                }

                let in_unique = i < unique_phase;
                let (request, oracle) = if in_unique {
                    // Globally unique threshold: no fingerprint repeats.
                    let n = 1000 + (t * per_thread + i) as i64;
                    (
                        format!("SQL SELECT Class FROM CLASS WHERE Displacement > {n}"),
                        Some(expected_classes(n)),
                    )
                } else {
                    let q = repeated[(t + i) % repeated.len()];
                    let oracle = if q.contains("> 8000") && !q.contains("SUBMARINE") {
                        Some(expected_classes(8000))
                    } else {
                        None
                    };
                    (format!("SQL {q}"), oracle)
                };

                let sent = Instant::now();
                let line = match client.roundtrip(&request) {
                    Ok(l) => l,
                    Err(_) => {
                        out.errors += 1;
                        continue;
                    }
                };
                out.latencies_us
                    .push(sent.elapsed().as_micros().min(u64::MAX as u128) as u64);
                let v = match json::parse(&line) {
                    Ok(v) => v,
                    Err(_) => {
                        out.errors += 1;
                        continue;
                    }
                };
                if v.get("ok").and_then(Json::as_bool) != Some(true) {
                    out.errors += 1;
                    continue;
                }
                if let Some(epoch) = v.get("epoch").and_then(Json::as_u64) {
                    out.max_epoch = out.max_epoch.max(epoch);
                }
                if !in_unique && v.get("cached").and_then(Json::as_bool) == Some(true) {
                    out.repeated_hits += 1;
                }
                if let Some(want) = oracle {
                    if response_classes(&v) != want {
                        out.wrong += 1;
                    }
                }
            }
            client.quit();
            out
        }));
    }

    let mut all = ThreadOutcome::default();
    for h in handles {
        let out = h.join().expect("load thread panicked");
        all.latencies_us.extend(out.latencies_us);
        all.write_latencies_us.extend(out.write_latencies_us);
        all.wrong += out.wrong;
        all.errors += out.errors;
        all.repeated_hits += out.repeated_hits;
        all.max_epoch = all.max_epoch.max(out.max_epoch);
    }
    let elapsed = started.elapsed();

    // Let the triggered re-induction land, then read the final stats.
    let fresh = service.wait_rules_fresh(Duration::from_secs(10));
    let stats = service.stats();
    server.shutdown();

    all.latencies_us.sort_unstable();
    let total = all.latencies_us.len() as u64;
    println!(
        "completed {total} queries in {:.2}s ({:.0} q/s)",
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    println!(
        "latency p50 {} us, p95 {} us, p99 {} us",
        percentile(&all.latencies_us, 0.50),
        percentile(&all.latencies_us, 0.95),
        percentile(&all.latencies_us, 0.99)
    );
    println!(
        "cache: {} hits / {} misses overall; {} hits in the repeated phase",
        stats.cache_hits, stats.cache_misses, all.repeated_hits
    );
    println!(
        "epochs: write installed epoch {}, max observed {}, final {} \
         ({} inductions, rules {})",
        write_done.load(Ordering::SeqCst),
        all.max_epoch,
        stats.epoch,
        stats.inductions,
        if stats.rules_fresh { "fresh" } else { "stale" }
    );
    println!(
        "incorrect answers: {}, request errors: {}",
        all.wrong, all.errors
    );
    if args.durable {
        all.write_latencies_us.sort_unstable();
        println!(
            "writes: {} durable appends, latency p50 {} us, p95 {} us, p99 {} us",
            all.write_latencies_us.len(),
            percentile(&all.write_latencies_us, 0.50),
            percentile(&all.write_latencies_us, 0.95),
            percentile(&all.write_latencies_us, 0.99)
        );
        match &stats.durability {
            Some(d) => println!(
                "wal (fsync {}): {} appends, {} bytes, {} fsyncs, {} checkpoints, segment {}",
                d.fsync,
                d.wal_appends,
                d.wal_append_bytes,
                d.wal_fsyncs,
                d.wal_checkpoints,
                d.wal_segment_seq
            ),
            None => println!("wal: no durability stats (?)"),
        }
    }
    if args.obs {
        println!("per-stage latency (from service histograms):");
        for stage in intensio_obs::Stage::ALL {
            let h = stats
                .metrics
                .stage(stage.name())
                .cloned()
                .unwrap_or_default();
            println!(
                "  {:<10} count {:>7}  p50 {:>6} us  p95 {:>6} us  p99 {:>6} us  mean {:>6} us",
                stage.name(),
                h.count,
                h.p50_us,
                h.p95_us,
                h.p99_us,
                h.mean_us()
            );
        }
    }

    let write_epoch = write_done.load(Ordering::SeqCst);
    let mut failed = false;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("FAIL: {what}");
            failed = true;
        }
    };
    check(all.wrong == 0, "every answer must match the oracle");
    check(all.errors == 0, "no request may error");
    check(
        all.repeated_hits > 0,
        "the repeated phase must hit the cache",
    );
    check(write_epoch >= 1, "the mid-run write must install an epoch");
    check(
        fresh && stats.epoch > write_epoch,
        "background re-induction must advance the epoch past the write",
    );
    check(
        all.max_epoch >= write_epoch,
        "queries must observe the post-write epoch while answering",
    );
    if args.durable {
        let d = stats.durability.as_ref();
        check(d.is_some(), "durable mode must report WAL stats");
        check(
            d.is_some_and(|d| d.wal_appends >= all.write_latencies_us.len() as u64),
            "every acknowledged write must have a WAL append",
        );
    }
    if let Some(dir) = scratch_dir {
        match Arc::try_unwrap(service) {
            Ok(s) => drop(s), // close the WAL before sweeping its directory
            Err(arc) => drop(arc),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    if failed {
        std::process::exit(1);
    }
    println!("PASS");
}
