//! Regenerate the KER figures:
//!
//! * **Figure 1** — the SUBMARINE-style object type box (we print the
//!   test bed's object types in that notation);
//! * **Figure 2** — the submarine type hierarchy tree;
//! * **Figure 4** — the whole ship schema (all hierarchies + types), the
//!   textual form of the KER diagram.
//!
//! ```sh
//! cargo run -p intensio-bench --bin figures_ker
//! ```

use intensio_bench::section;
use intensio_ker::render::{render_hierarchy, render_model, render_object_type};
use intensio_shipdb::ship_model;

fn main() {
    let model = ship_model().expect("schema parses");

    section("Figure 1 style — object type boxes");
    for ty in ["CLASS", "SUBMARINE", "TYPE", "SONAR", "INSTALL"] {
        if let Some(s) = render_object_type(&model, ty) {
            println!("{s}");
        }
    }

    section("Figure 2 — the ship type hierarchy");
    println!(
        "{}",
        render_hierarchy(&model, "CLASS").expect("CLASS hierarchy exists")
    );
    println!(
        "{}",
        render_hierarchy(&model, "SONAR").expect("SONAR hierarchy exists")
    );

    section("Figure 4 — the full ship schema as a KER diagram (textual)");
    println!("{}", render_model(&model));
}
