//! Regenerate the paper's §6 **Examples 1–3**: for each, the SQL query,
//! the extensional answer table (matching the paper's printed tables),
//! and the derived intensional answer with its inference mode.
//!
//! ```sh
//! cargo run -p intensio-bench --bin paper_examples
//! ```

use intensio_bench::section;
use intensio_core::IntensionalQueryProcessor;
use intensio_inference::InferenceConfig;
use intensio_shipdb::{ship_database, ship_model};

struct Example {
    title: &'static str,
    paper_answer: &'static str,
    sql: &'static str,
    expected_rows: usize,
    cfg: InferenceConfig,
}

fn main() {
    let examples = [
        Example {
            title: "Example 1 — submarines with displacement > 8000 (forward inference)",
            paper_answer: "A_I = \"Ship type SSBN has displacement greater than 8000\"",
            sql: "SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE \
                  FROM SUBMARINE, CLASS \
                  WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
            expected_rows: 2,
            cfg: InferenceConfig {
                forward_only: true,
                ..InferenceConfig::default()
            },
        },
        Example {
            title: "Example 2 — names and classes of SSBN ships (backward inference)",
            paper_answer:
                "A_I = \"Ship Classes in the range of 0101 to 0103 are SSBN\" (incomplete: 1301)",
            sql: "SELECT SUBMARINE.NAME, SUBMARINE.CLASS FROM SUBMARINE, CLASS \
                  WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = \"SSBN\"",
            expected_rows: 7,
            cfg: InferenceConfig {
                backward_only: true,
                ..InferenceConfig::default()
            },
        },
        Example {
            title: "Example 3 — submarines equipped with sonar BQS-04 (combined)",
            paper_answer:
                "A_I = \"Ship type SSN with class 0208 to 0215 is equipped with sonar BQS-04\"",
            sql: "SELECT SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE \
                  FROM SUBMARINE, CLASS, INSTALL \
                  WHERE SUBMARINE.CLASS = CLASS.CLASS \
                  AND SUBMARINE.ID = INSTALL.SHIP \
                  AND INSTALL.SONAR = \"BQS-04\"",
            expected_rows: 4,
            cfg: InferenceConfig::default(),
        },
    ];

    for ex in examples {
        let mut iqp = IntensionalQueryProcessor::new(
            ship_database().expect("test bed builds"),
            ship_model().expect("schema parses"),
        )
        .with_inference_config(ex.cfg);
        iqp.learn().expect("learning succeeds");

        section(ex.title);
        println!("{}\n", ex.sql);
        let answer = iqp.query(ex.sql).expect("query succeeds");
        println!("{}", answer.render());
        println!(
            "extensional rows: {} (paper prints {}) — {}",
            answer.extensional.len(),
            ex.expected_rows,
            if answer.extensional.len() == ex.expected_rows {
                "MATCH"
            } else {
                "MISMATCH"
            }
        );
        println!("paper's intensional answer: {}", ex.paper_answer);
    }
}
