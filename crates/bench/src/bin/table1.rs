//! Regenerate **Table 1** — "Classification Characteristics of Navy
//! Battleships": per ship type, the displacement band its instances
//! occupy, recomputed from a generated battleship relation whose
//! instances respect the published bands; then show that pairwise
//! induction recovers the same bands as rules when the bands are
//! separable.
//!
//! ```sh
//! cargo run -p intensio-bench --bin table1
//! ```

use intensio_bench::{print_table, section};
use intensio_induction::{induce_pair, InductionConfig};
use intensio_shipdb::battleships::{battleship_relation, recompute_table1, TABLE1_BANDS};

fn main() {
    let rel = battleship_relation(25, 0x1991).expect("generation succeeds");
    section("Table 1 — recomputed from data (25 ships per type, seed 0x1991)");
    let t1 = recompute_table1(&rel).expect("aggregation succeeds");
    let rows: Vec<Vec<String>> = t1
        .iter()
        .map(|t| {
            vec![
                t.get(0).render_bare(),
                t.get(1).render_bare(),
                t.get(2).render_bare(),
                format!("{} - {}", t.get(3).render_bare(), t.get(4).render_bare()),
            ]
        })
        .collect();
    print_table(
        &["Category", "Type", "Type Name", "Displacement (tons)"],
        &rows,
    );

    section("Check against the published bands");
    let mut ok = true;
    for (row, band) in t1.iter().zip(TABLE1_BANDS) {
        let lo = row.get(3).as_int().unwrap_or(-1);
        let hi = row.get(4).as_int().unwrap_or(-1);
        let matches = lo == band.lo && hi == band.hi;
        ok &= matches;
        println!(
            "  {:>4}: paper [{} - {}], measured [{lo} - {hi}] {}",
            band.ty,
            band.lo,
            band.hi,
            if matches { "MATCH" } else { "MISMATCH" }
        );
    }
    println!(
        "\nAll 12 bands {}",
        if ok {
            "match the paper exactly."
        } else {
            "do NOT all match."
        }
    );

    section("Induced Displacement -> Type rules (N_c = 2)");
    println!(
        "Bands overlap across surface types, so induction removes the\n\
         colliding displacement values (step 2) and splits runs; the\n\
         separable types come back as clean range rules:\n"
    );
    let rules = induce_pair(
        &rel,
        "BATTLESHIP",
        "Displacement",
        "BATTLESHIP",
        "Type",
        &InductionConfig::with_min_support(2),
    )
    .expect("induction succeeds");
    for r in &rules {
        println!(
            "  if {} <= Displacement <= {} then Type = {}   (support {})",
            r.lo.render_bare(),
            r.hi.render_bare(),
            r.y_value.render_bare(),
            r.support
        );
    }
}
