//! Regenerate **Figure 5** — "A Type Hierarchy with Induced Rules for
//! Submarine": the object type box with the *induced* displacement rules
//! attached as `with` knowledge. The rules are not transcribed from the
//! paper; they are re-learned from the Appendix C data, then printed in
//! the figure's notation.
//!
//! ```sh
//! cargo run -p intensio-bench --bin figure5
//! ```

use intensio_bench::section;
use intensio_induction::{induce_pair, InductionConfig};
use intensio_shipdb::{ship_database, ship_model};

fn main() {
    let db = ship_database().expect("test bed builds");
    let model = ship_model().expect("schema parses");
    let class = db.get("CLASS").expect("CLASS relation");

    let rules = induce_pair(
        class,
        "CLASS",
        "Displacement",
        "CLASS",
        "Type",
        &InductionConfig::with_min_support(2),
    )
    .expect("induction succeeds");

    section("Figure 5 — type hierarchy with induced rules");
    println!("SSBN isa CLASS with Type = \"SSBN\"");
    println!("SSN  isa CLASS with Type = \"SSN\"\n");
    println!("object type CLASS");
    println!("  has key: Class         domain: char[4]");
    println!("  has:     Displacement  domain: integer\n");
    println!("with /* x isa CLASS */");
    for r in &rules {
        let subtype = model
            .subtype_label_for("Type", &r.y_value)
            .unwrap_or_else(|| r.y_value.render_bare());
        println!(
            "  if {} <= x.Displacement <= {} then x isa {subtype}",
            r.lo.render_bare(),
            r.hi.render_bare()
        );
    }
    println!();
    println!(
        "Paper's Figure 5 (induced over the figure's own sample) reads:\n\
         \n  if x.Displacement >= 7250 then x isa SSBN\n  if x.Displacement <= 6955 then x isa SSN\n\
         \nThe learned boundaries above close the same gap (6955 / 7250);\n\
         the closed upper and lower ends come from the observed extrema,\n\
         which is how the §5.2.1 algorithm (and our reproduction) writes\n\
         its clauses."
    );
}
