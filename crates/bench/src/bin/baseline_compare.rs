//! The §7 claim: *"type inference with induced rules is a more effective
//! technique to derive intensional answers than using integrity
//! constraints when the database schema has strong type hierarchy and
//! semantic knowledge."*
//!
//! Comparison of three knowledge sources over the same query workload:
//!
//! 1. **induced** — rules learned by the ILS (this paper);
//! 2. **constraints** — only the schema's hand-written `with` rules
//!    (the [MOTR89] integrity-constraint baseline);
//! 3. **both** — union.
//!
//! Run on (a) the ship test bed, whose Appendix B schema happens to
//! encode rich constraints, and (b) a synthetic fleet whose schema
//! declares hierarchy only — the realistic case where induction is the
//! sole knowledge source.
//!
//! ```sh
//! cargo run --release -p intensio-bench --bin baseline_compare
//! ```

use intensio_bench::{print_table, section};
use intensio_induction::{Ils, InductionConfig};
use intensio_inference::{rules_from_schema, InferenceConfig, InferenceEngine};
use intensio_ker::model::KerModel;
use intensio_rules::rule::RuleSet;
use intensio_shipdb::{generate, ship_database, ship_model, FleetConfig};
use intensio_sql::{analyze, parse};
use intensio_storage::catalog::Database;

fn union(a: &RuleSet, b: &RuleSet) -> RuleSet {
    let mut out = a.clone();
    out.extend(b.clone());
    out
}

fn evaluate(
    db: &Database,
    model: &KerModel,
    rules: &RuleSet,
    queries: &[String],
) -> (usize, usize, usize) {
    let engine =
        InferenceEngine::new(model, rules, db, InferenceConfig::default()).expect("engine builds");
    let (mut answered, mut certain, mut partial) = (0, 0, 0);
    for q in queries {
        let parsed = parse(q).expect("query parses");
        let analysis = analyze(db, &parsed).expect("analysis succeeds");
        let a = engine.infer(&analysis);
        if !a.is_empty() {
            answered += 1;
        }
        certain += a.certain.len();
        partial += a.partial.len();
    }
    (answered, certain, partial)
}

fn compare(name: &str, db: &Database, model: &KerModel, queries: &[String]) {
    section(name);
    let induced = Ils::new(model, InductionConfig::with_min_support(3))
        .induce(db)
        .expect("induction succeeds")
        .rules;
    let constraints = rules_from_schema(model);
    let both = union(&induced, &constraints);

    let mut rows = Vec::new();
    for (label, rules) in [
        ("constraints only [MOTR89]", &constraints),
        ("induced rules (this paper)", &induced),
        ("both", &both),
    ] {
        let (answered, certain, partial) = evaluate(db, model, rules, queries);
        rows.push(vec![
            label.to_string(),
            rules.len().to_string(),
            format!("{answered}/{}", queries.len()),
            certain.to_string(),
            partial.to_string(),
        ]);
    }
    print_table(
        &[
            "knowledge",
            "rules",
            "answered",
            "certain facts",
            "partial chars",
        ],
        &rows,
    );
}

fn main() {
    // (a) The paper's test bed with its constraint-rich Appendix B schema.
    let db = ship_database().expect("test bed builds");
    let model = ship_model().expect("schema parses");
    let ship_queries = vec![
        "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
         WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000"
            .to_string(),
        "SELECT SUBMARINE.NAME FROM SUBMARINE, CLASS \
         WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = \"SSBN\""
            .to_string(),
        "SELECT SUBMARINE.NAME FROM SUBMARINE, CLASS, INSTALL \
         WHERE SUBMARINE.CLASS = CLASS.CLASS AND SUBMARINE.ID = INSTALL.SHIP \
         AND INSTALL.SONAR = \"BQS-04\""
            .to_string(),
        "SELECT SUBMARINE.NAME FROM SUBMARINE, CLASS \
         WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT < 3000"
            .to_string(),
        "SELECT Sonar FROM SONAR WHERE SonarType = \"BQS\"".to_string(),
    ];
    compare(
        "Ship test bed — Appendix B schema (hand-written constraints present)",
        &db,
        &model,
        &ship_queries,
    );

    // (b) A synthetic fleet whose schema has hierarchy only.
    let fleet = generate(FleetConfig {
        seed: 7,
        n_types: 3,
        classes_per_type: 8,
        ships_per_class: 20,
        sonars_per_family: 4,
        id_noise: 0.0,
        overlapping_bands: false,
    })
    .expect("generation succeeds");
    let fmodel = fleet.ker_model();
    let mut fleet_queries = Vec::new();
    for (ty, (lo, hi)) in &fleet.type_band {
        fleet_queries.push(format!(
            "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS \
             AND CLASS.DISPLACEMENT > {} AND CLASS.DISPLACEMENT < {}",
            lo - 1,
            hi + 1
        ));
        fleet_queries.push(format!(
            "SELECT SUBMARINE.NAME FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = \"{ty}\""
        ));
    }
    compare(
        "Synthetic fleet — hierarchy-only schema (no hand-written constraints)",
        &fleet.db,
        &fmodel,
        &fleet_queries,
    );

    println!(
        "\nShape to check against §7: on the hand-tuned schema the baseline\n\
         keeps pace (its constraints *are* distilled rules); on the schema\n\
         without hand-written knowledge the constraint-only system answers\n\
         nothing while induced rules answer every query."
    );
}
