//! Regenerate the paper's §6 result: the rule set induced from the ship
//! database, printed side by side with the 17 rules the paper lists
//! (R1–R17), with a match verdict for each.
//!
//! The paper's list is partly hand-curated (its own N_c is never stated;
//! two printed rules are inconsistent with any single threshold — see
//! EXPERIMENTS.md), so the comparison reports three categories:
//! reproduced at N_c = 3, reproduced only at N_c = 1, and extra rules
//! the published algorithm yields that the paper did not print.
//!
//! ```sh
//! cargo run -p intensio-bench --bin rules17
//! ```

use intensio_bench::{print_table, section};
use intensio_induction::{Ils, InductionConfig};
use intensio_rules::rule::RuleSet;
use intensio_shipdb::{ship_database, ship_model};
use intensio_storage::value::Value;

/// The paper's printed rules, normalized: (label, premise object,
/// premise attr, lo, hi, subtype). Ids follow the paper's numbering;
/// SSN/SSBN id-prefix typos in R1 are corrected to the Appendix C data.
fn paper_rules() -> Vec<(
    &'static str,
    &'static str,
    &'static str,
    &'static str,
    &'static str,
    &'static str,
)> {
    vec![
        ("R1", "SUBMARINE", "Id", "SSBN623", "SSBN635", "C0103"),
        ("R2", "SUBMARINE", "Id", "SSN648", "SSN666", "C0204"),
        ("R3", "SUBMARINE", "Id", "SSN673", "SSN686", "C0204"),
        ("R4", "SUBMARINE", "Id", "SSN692", "SSN704", "C0201"),
        ("R5", "CLASS", "Class", "0101", "0103", "SSBN"),
        ("R6", "CLASS", "Class", "0201", "0215", "SSN"),
        ("R7", "CLASS", "ClassName", "Skate", "Thresher", "SSN"),
        ("R8", "CLASS", "Displacement", "2145", "6955", "SSN"),
        ("R9", "CLASS", "Displacement", "7250", "30000", "SSBN"),
        ("R10", "SONAR", "Sonar", "BQQ-2", "BQQ-8", "BQQ"),
        ("R11", "SONAR", "Sonar", "BQS-04", "BQS-15", "BQS"),
        ("R12", "SUBMARINE", "Id", "SSN582", "SSN601", "BQS"),
        ("R13", "SUBMARINE", "Id", "SSN604", "SSN671", "BQQ"),
        ("R14", "SUBMARINE", "Class", "0203", "0203", "BQQ"),
        ("R15", "SUBMARINE", "Class", "0205", "0207", "BQQ"),
        ("R16", "SUBMARINE", "Class", "0208", "0215", "BQS"),
        ("R17", "SONAR", "Sonar", "BQS-04", "BQS-04", "SSN"),
    ]
}

fn parse_value(s: &str) -> Value {
    match s.parse::<i64>() {
        Ok(i) if !s.starts_with('0') || s == "0" => Value::Int(i),
        _ => Value::str(s),
    }
}

fn find_match(rules: &RuleSet, obj: &str, attr: &str, lo: &Value, hi: &Value, sub: &str) -> bool {
    rules.iter().any(|r| {
        r.rhs_subtype.as_deref() == Some(sub)
            && r.lhs.len() == 1
            && r.lhs[0].attr.matches(obj, attr)
            && r.lhs[0].range.lo.as_ref().map(|e| e.value.sem_eq(lo)) == Some(true)
            && r.lhs[0].range.hi.as_ref().map(|e| e.value.sem_eq(hi)) == Some(true)
    })
}

/// Looser match: same premise attribute and subtype, range *contains*
/// the paper's range (runs can extend over adjacent consistent values).
fn find_containing(
    rules: &RuleSet,
    obj: &str,
    attr: &str,
    lo: &Value,
    hi: &Value,
    sub: &str,
) -> bool {
    rules.iter().any(|r| {
        r.rhs_subtype.as_deref() == Some(sub)
            && r.lhs.len() == 1
            && r.lhs[0].attr.matches(obj, attr)
            && r.lhs[0].range.contains(lo)
            && r.lhs[0].range.contains(hi)
    })
}

fn main() {
    let db = ship_database().expect("test bed builds");
    let model = ship_model().expect("schema parses");

    let rules_nc3 = Ils::new(&model, InductionConfig::with_min_support(3))
        .induce(&db)
        .expect("induction succeeds")
        .rules;
    let rules_nc1 = Ils::new(&model, InductionConfig::with_min_support(1))
        .induce(&db)
        .expect("induction succeeds")
        .rules;

    section("Induced rule set (N_c = 3)");
    println!("{rules_nc3}");

    section("Side-by-side with the paper's R1-R17");
    let mut rows = Vec::new();
    let mut exact3 = 0;
    let mut loose = 0;
    for (label, obj, attr, lo, hi, sub) in paper_rules() {
        let (lov, hiv) = (parse_value(lo), parse_value(hi));
        let verdict = if find_match(&rules_nc3, obj, attr, &lov, &hiv, sub) {
            exact3 += 1;
            "exact @ N_c=3"
        } else if find_match(&rules_nc1, obj, attr, &lov, &hiv, sub) {
            loose += 1;
            "exact @ N_c=1"
        } else if find_containing(&rules_nc1, obj, attr, &lov, &hiv, sub) {
            loose += 1;
            "contained in a wider induced rule @ N_c=1"
        } else {
            "NOT reproduced"
        };
        rows.push(vec![
            label.to_string(),
            format!("if {lo} <= {obj}.{attr} <= {hi} then x isa {sub}"),
            verdict.to_string(),
        ]);
    }
    print_table(&["Paper", "Rule", "Verdict"], &rows);
    println!(
        "\n{exact3}/17 exactly at the paper's operating point, {loose} more at N_c = 1 \
         (the paper's list mixes support thresholds; see EXPERIMENTS.md)."
    );

    section("Rules induced by the published algorithm that the paper did not print");
    let printed = paper_rules();
    for r in rules_nc3.iter() {
        let lhs = &r.lhs[0];
        let covered = printed.iter().any(|(_, obj, attr, lo, hi, sub)| {
            r.rhs_subtype.as_deref() == Some(*sub)
                && lhs.attr.matches(obj, attr)
                && lhs
                    .range
                    .lo
                    .as_ref()
                    .map(|e| e.value.sem_eq(&parse_value(lo)))
                    == Some(true)
                && lhs
                    .range
                    .hi
                    .as_ref()
                    .map(|e| e.value.sem_eq(&parse_value(hi)))
                    == Some(true)
        });
        if !covered {
            println!("  {r}  (support {})", r.support);
        }
    }
}
