//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Run scope** — the paper builds rule ranges over maximal runs of
//!    *consecutive observed* X values (a removed inconsistent value
//!    breaks a run). The `RemainingOrder` variant merges across removed
//!    values: fewer, wider rules, but rules that are violated by the
//!    training data itself.
//! 2. **Inconsistency policy** — the paper deletes every X with
//!    conflicting Y (step 2); `MajorityVote` keeps the majority label,
//!    tolerating noise at the cost of exactness.
//! 3. **Subsumption mode** — data-grounded (paper semantics) vs pure
//!    interval containment for forward inference.
//!
//! ```sh
//! cargo run --release -p intensio-bench --bin ablation
//! ```

use intensio_bench::{print_table, section};
use intensio_induction::{Ils, InconsistencyPolicy, InductionConfig, RunScope};
use intensio_inference::{InferenceConfig, InferenceEngine, SubsumptionMode};
use intensio_shipdb::{generate, ship_database, ship_model, FleetConfig};
use intensio_sql::{analyze, parse};

fn main() {
    // Noisy fleet: overlapping bands create inconsistent pairs.
    let fleet = generate(FleetConfig {
        seed: 0xA11,
        n_types: 3,
        classes_per_type: 10,
        ships_per_class: 12,
        sonars_per_family: 4,
        id_noise: 0.15,
        overlapping_bands: true,
    })
    .expect("generation succeeds");
    let model = fleet.ker_model();

    section("Ablation 1+2 — run scope x inconsistency policy (noisy fleet)");
    let mut rows = Vec::new();
    for (scope_label, run_scope) in [
        ("full-order (paper)", RunScope::FullObservedOrder),
        ("remaining-order", RunScope::RemainingOrder),
    ] {
        for (pol_label, inconsistency) in [
            ("remove (paper)", InconsistencyPolicy::Remove),
            ("majority-vote", InconsistencyPolicy::MajorityVote),
        ] {
            let cfg = InductionConfig {
                min_support: 2,
                run_scope,
                inconsistency,
                ..InductionConfig::default()
            };
            let ils = Ils::new(&model, cfg);
            let out = ils.induce(&fleet.db).expect("induction succeeds");
            // Violations are carried on InducedRule, which RuleSet does
            // not preserve; re-derive the aggregate by re-running the
            // pair level for the displacement pair.
            let class = fleet.db.get("CLASS").expect("CLASS");
            let (pair_rules, _) = intensio_induction::induce_pair_ids_with_stats(
                class,
                "Displacement",
                intensio_rules::rule::AttrId::new("CLASS", "Displacement"),
                "Type",
                intensio_rules::rule::AttrId::new("CLASS", "Type"),
                &cfg,
            )
            .expect("pair induction succeeds");
            let violations: usize = pair_rules.iter().map(|r| r.violations).sum();
            let avg_width: f64 = if pair_rules.is_empty() {
                0.0
            } else {
                pair_rules.iter().map(|r| r.distinct_x as f64).sum::<f64>()
                    / pair_rules.len() as f64
            };
            rows.push(vec![
                scope_label.to_string(),
                pol_label.to_string(),
                out.rules.len().to_string(),
                pair_rules.len().to_string(),
                format!("{avg_width:.1}"),
                violations.to_string(),
            ]);
        }
    }
    print_table(
        &[
            "run scope",
            "inconsistency",
            "total rules",
            "D->Type rules",
            "avg run width",
            "violations",
        ],
        &rows,
    );
    println!(
        "\nShape: the paper's settings (full-order + remove) give zero\n\
         violations; remaining-order merges runs (wider, fewer) at the cost\n\
         of rules its own training data contradicts; majority-vote keeps\n\
         more rules under noise, also at the cost of violations."
    );

    section("Ablation 3 — subsumption mode (ship test bed, Example 1)");
    let db = ship_database().expect("test bed builds");
    let smodel = ship_model().expect("schema parses");
    let rules = Ils::new(&smodel, InductionConfig::with_min_support(3))
        .induce(&db)
        .expect("induction succeeds")
        .rules;
    let q = parse(
        "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
         WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
    )
    .expect("query parses");
    let analysis = analyze(&db, &q).expect("analysis succeeds");
    let mut rows = Vec::new();
    for (label, mode) in [
        ("data-grounded (paper)", SubsumptionMode::DataGrounded),
        ("pure interval", SubsumptionMode::PureInterval),
    ] {
        let cfg = InferenceConfig {
            subsumption: mode,
            forward_only: true,
            ..InferenceConfig::default()
        };
        let engine = InferenceEngine::new(&smodel, &rules, &db, cfg).expect("engine builds");
        let a = engine.infer(&analysis);
        rows.push(vec![
            label.to_string(),
            a.certain.len().to_string(),
            a.subtypes().join(", "),
        ]);
    }
    print_table(
        &["subsumption", "certain facts", "subtypes concluded"],
        &rows,
    );
    println!(
        "\nShape: the open-ended condition `> 8000` can only be subsumed by\n\
         the closed induced range when subsumption is grounded in the\n\
         observed data — pure interval containment derives nothing, which\n\
         is why the paper's Example 1 implicitly assumes the data-grounded\n\
         reading."
    );
}
