//! Extensional query cost: SQL execution (restriction push-down + hash
//! joins) and the intensional-vs-extensional latency comparison — the
//! practical argument for intensional answers on large answer sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use intensio_core::IntensionalQueryProcessor;
use intensio_induction::InductionConfig;
use intensio_shipdb::{generate, FleetConfig};

fn fleet(ships_per_class: usize) -> intensio_shipdb::Fleet {
    generate(FleetConfig {
        seed: 0x1991,
        n_types: 3,
        classes_per_type: 8,
        ships_per_class,
        sonars_per_family: 4,
        id_noise: 0.0,
        overlapping_bands: false,
    })
    .expect("generation succeeds")
}

fn bench_join_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("two_way_join");
    for ships_per_class in [5usize, 20, 80, 320] {
        let f = fleet(ships_per_class);
        let total = f.config.total_ships();
        let sql = "SELECT SUBMARINE.ID, CLASS.TYPE FROM SUBMARINE, CLASS \
                   WHERE SUBMARINE.CLASS = CLASS.CLASS";
        g.bench_with_input(BenchmarkId::from_parameter(total), &f.db, |b, db| {
            b.iter(|| intensio_sql::query(db, sql).expect("query succeeds"))
        });
    }
    g.finish();
}

fn bench_three_way_join(c: &mut Criterion) {
    let f = fleet(40);
    let sql = "SELECT SUBMARINE.NAME, CLASS.TYPE, INSTALL.SONAR \
               FROM SUBMARINE, CLASS, INSTALL \
               WHERE SUBMARINE.CLASS = CLASS.CLASS AND SUBMARINE.ID = INSTALL.SHIP";
    c.bench_function("three_way_join_960_ships", |b| {
        b.iter(|| intensio_sql::query(&f.db, sql).expect("query succeeds"))
    });
}

fn bench_intensional_vs_extensional(c: &mut Criterion) {
    let f = fleet(160); // 3840 ships
    let model = f.ker_model();
    let mut iqp = IntensionalQueryProcessor::new(f.db.clone(), model)
        .with_induction_config(InductionConfig::with_min_support(5));
    iqp.learn().expect("learning succeeds");
    let (lo, _) = f.type_band["T01"];
    let sql = format!(
        "SELECT SUBMARINE.ID, SUBMARINE.NAME FROM SUBMARINE, CLASS \
         WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT >= {lo}"
    );

    let mut g = c.benchmark_group("answer_modes_3840_ships");
    g.bench_function("extensional", |b| {
        b.iter(|| iqp.query_extensional(&sql).expect("query succeeds"))
    });
    g.bench_function("intensional", |b| {
        b.iter(|| iqp.query_intensional(&sql).expect("query succeeds"))
    });
    g.bench_function("both", |b| {
        b.iter(|| iqp.query(&sql).expect("query succeeds"))
    });
    g.finish();
}

fn bench_semantic_query_optimization(c: &mut Criterion) {
    // [CHU90]-style rewrite: forward inference injects a Type restriction
    // that lets the executor filter CLASS before the join.
    let f = fleet(160); // 3840 ships
    let model = f.ker_model();
    let mut iqp = IntensionalQueryProcessor::new(f.db.clone(), model)
        .with_induction_config(InductionConfig::with_min_support(5));
    iqp.learn().expect("learning succeeds");
    let (lo, hi) = f.type_band["T01"];
    let sql = format!(
        "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
         WHERE SUBMARINE.CLASS = CLASS.CLASS \
         AND CLASS.DISPLACEMENT > {} AND CLASS.DISPLACEMENT < {}",
        lo - 1,
        hi + 1
    );
    let original = intensio_sql::parse(&sql).expect("query parses");
    let optimized = match iqp.optimize(&sql).expect("optimize succeeds") {
        intensio_inference::Optimized::Rewritten { query, .. } => query,
        other => panic!("expected a rewrite, got {other:?}"),
    };

    let mut g = c.benchmark_group("semantic_query_optimization");
    g.bench_function("original", |b| {
        b.iter(|| intensio_sql::execute(iqp.db(), &original).expect("query succeeds"))
    });
    g.bench_function("rewritten", |b| {
        b.iter(|| intensio_sql::execute(iqp.db(), &optimized).expect("query succeeds"))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_join_scaling,
    bench_three_way_join,
    bench_intensional_vs_extensional,
    bench_semantic_query_optimization
);
criterion_main!(benches);
