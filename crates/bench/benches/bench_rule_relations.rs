//! Rule-relation storage (DESIGN.md S2): encoding/decoding cost and row
//! overhead of the §5.2.2 representation as the rule set grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use intensio_induction::{Ils, InductionConfig};
use intensio_rules::encode::{decode, encode};
use intensio_rules::rule::RuleSet;
use intensio_shipdb::{generate, FleetConfig};

fn rule_sets() -> Vec<RuleSet> {
    let fleet = generate(FleetConfig {
        seed: 0x1991,
        n_types: 4,
        classes_per_type: 12,
        ships_per_class: 40,
        sonars_per_family: 6,
        id_noise: 0.05,
        overlapping_bands: false,
    })
    .expect("generation succeeds");
    let model = fleet.ker_model();
    [50usize, 10, 2]
        .into_iter()
        .map(|nc| {
            Ils::new(&model, InductionConfig::with_min_support(nc))
                .induce(&fleet.db)
                .expect("induction succeeds")
                .rules
        })
        .collect()
}

fn bench_encode_decode(c: &mut Criterion) {
    let sets = rule_sets();
    let mut g = c.benchmark_group("rule_relations_encode");
    for rules in &sets {
        g.bench_with_input(
            BenchmarkId::from_parameter(rules.len()),
            rules,
            |b, rules| b.iter(|| encode(rules).expect("encode succeeds")),
        );
    }
    g.finish();

    let mut g = c.benchmark_group("rule_relations_decode");
    for rules in &sets {
        let encoded = encode(rules).expect("encode succeeds");
        g.bench_with_input(
            BenchmarkId::from_parameter(rules.len()),
            &encoded,
            |b, encoded| b.iter(|| decode(encoded).expect("decode succeeds")),
        );
    }
    g.finish();
}

fn bench_csv_relocation(c: &mut Criterion) {
    let sets = rule_sets();
    let rules = &sets[sets.len() - 1];
    let encoded = encode(rules).expect("encode succeeds");
    c.bench_function("rule_relations_to_csv", |b| {
        b.iter(|| intensio_storage::csv::to_csv(&encoded.rules))
    });
}

criterion_group!(benches, bench_encode_decode, bench_csv_relocation);
criterion_main!(benches);
