//! Inference cost (DESIGN.md S2): intensional-answer latency vs rule-set
//! cardinality — the storing/searching overhead §5.2.2 motivates pruning
//! with.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use intensio_induction::{Ils, InductionConfig};
use intensio_inference::{InferenceConfig, InferenceEngine};
use intensio_shipdb::{generate, ship_database, ship_model, FleetConfig};
use intensio_sql::{analyze, parse};

fn bench_rule_set_size(c: &mut Criterion) {
    let fleet = generate(FleetConfig {
        seed: 0x1991,
        n_types: 4,
        classes_per_type: 12,
        ships_per_class: 40,
        sonars_per_family: 6,
        id_noise: 0.05,
        overlapping_bands: false,
    })
    .expect("generation succeeds");
    let model = fleet.ker_model();
    let (lo, hi) = fleet.type_band["T02"];
    let q = parse(&format!(
        "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
         WHERE SUBMARINE.CLASS = CLASS.CLASS \
         AND CLASS.DISPLACEMENT > {lo} AND CLASS.DISPLACEMENT < {hi}"
    ))
    .expect("query parses");
    let analysis = analyze(&fleet.db, &q).expect("analysis succeeds");

    let mut g = c.benchmark_group("infer_vs_rule_count");
    for nc in [50usize, 20, 5, 1] {
        let rules = Ils::new(&model, InductionConfig::with_min_support(nc))
            .induce(&fleet.db)
            .expect("induction succeeds")
            .rules;
        let engine = InferenceEngine::new(&model, &rules, &fleet.db, InferenceConfig::default())
            .expect("engine builds");
        g.bench_with_input(
            BenchmarkId::from_parameter(rules.len()),
            &engine,
            |b, engine| b.iter(|| engine.infer(&analysis)),
        );
    }
    g.finish();
}

fn bench_paper_examples(c: &mut Criterion) {
    let db = ship_database().expect("test bed builds");
    let model = ship_model().expect("schema parses");
    let rules = Ils::new(&model, InductionConfig::with_min_support(3))
        .induce(&db)
        .expect("induction succeeds")
        .rules;
    let engine = InferenceEngine::new(&model, &rules, &db, InferenceConfig::default())
        .expect("engine builds");

    let mut g = c.benchmark_group("paper_examples");
    for (label, sql) in [
        (
            "example1_forward",
            "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
        ),
        (
            "example2_backward",
            "SELECT SUBMARINE.NAME FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = \"SSBN\"",
        ),
        (
            "example3_combined",
            "SELECT SUBMARINE.NAME FROM SUBMARINE, CLASS, INSTALL \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND SUBMARINE.ID = INSTALL.SHIP \
             AND INSTALL.SONAR = \"BQS-04\"",
        ),
    ] {
        let q = parse(sql).expect("query parses");
        let analysis = analyze(&db, &q).expect("analysis succeeds");
        g.bench_function(label, |b| b.iter(|| engine.infer(&analysis)));
    }
    g.finish();
}

fn bench_engine_construction(c: &mut Criterion) {
    let db = ship_database().expect("test bed builds");
    let model = ship_model().expect("schema parses");
    let rules = Ils::new(&model, InductionConfig::with_min_support(1))
        .induce(&db)
        .expect("induction succeeds")
        .rules;
    c.bench_function("engine_snapshot_build", |b| {
        b.iter(|| {
            InferenceEngine::new(&model, &rules, &db, InferenceConfig::default())
                .expect("engine builds")
        })
    });
}

criterion_group!(
    benches,
    bench_rule_set_size,
    bench_paper_examples,
    bench_engine_construction
);
criterion_main!(benches);
