//! Storage-engine micro-benchmarks: insertion with key checking, scans,
//! sorting, duplicate elimination, and hash joins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use intensio_storage::prelude::*;
use intensio_storage::tuple;

fn ships(n: usize) -> Relation {
    let schema = Schema::new(vec![
        Attribute::key("Id", Domain::char_n(10)),
        Attribute::new("Class", Domain::char_n(4)),
        Attribute::new("Displacement", Domain::basic(ValueType::Int)),
    ])
    .expect("static schema");
    let mut r = Relation::new("SHIPS", schema);
    for i in 0..n {
        r.insert(tuple![
            format!("S{i:08}"),
            format!("{:04}", i % 97),
            2000 + (i as i64 * 37) % 28000
        ])
        .expect("insert succeeds");
    }
    r
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("insert_with_key_check");
    for n in [1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| ships(n))
        });
    }
    g.finish();
}

fn bench_scan_filter(c: &mut Criterion) {
    let r = ships(10_000);
    c.bench_function("restrict_10k", |b| {
        b.iter(|| ops::restrict(&r, "Displacement", CmpOp::Gt, 15000).expect("select"))
    });
}

fn bench_sort_unique(c: &mut Criterion) {
    let r = ships(10_000);
    c.bench_function("sort_10k", |b| {
        b.iter(|| ops::sort(&r, &["Displacement", "Id"]).expect("sort"))
    });
    let classes = ops::project(&r, &["Class"]).expect("project");
    c.bench_function("unique_10k", |b| b.iter(|| ops::unique(&classes)));
}

fn bench_hash_join(c: &mut Criterion) {
    let left = ships(10_000);
    let schema = Schema::new(vec![
        Attribute::key("Class", Domain::char_n(4)),
        Attribute::new("Type", Domain::char_n(4)),
    ])
    .expect("static schema");
    let mut right = Relation::new("CLASS", schema);
    for i in 0..97 {
        right
            .insert(tuple![
                format!("{i:04}"),
                if i % 2 == 0 { "SSN" } else { "SSBN" }
            ])
            .expect("insert succeeds");
    }
    c.bench_function("hash_join_10k_x_97", |b| {
        b.iter(|| ops::equi_join(&left, "s", "Class", &right, "c", "Class").expect("join"))
    });
}

criterion_group!(
    benches,
    bench_insert,
    bench_scan_filter,
    bench_sort_unique,
    bench_hash_join
);
criterion_main!(benches);
