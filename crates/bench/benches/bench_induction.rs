//! Induction cost (DESIGN.md S4): ILS wall-clock vs database size and
//! per-pair induction cost, plus the QUEL-mirror overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use intensio_induction::{induce_pair, induce_pair_quel, Ils, InductionConfig};
use intensio_shipdb::{generate, ship_database, ship_model, FleetConfig};

fn fleet(ships_per_class: usize) -> intensio_shipdb::Fleet {
    generate(FleetConfig {
        seed: 0x1991,
        n_types: 3,
        classes_per_type: 8,
        ships_per_class,
        sonars_per_family: 4,
        id_noise: 0.05,
        overlapping_bands: false,
    })
    .expect("generation succeeds")
}

fn bench_ils_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ils_full_run");
    for ships_per_class in [5usize, 20, 80] {
        let f = fleet(ships_per_class);
        let model = f.ker_model();
        let total = f.config.total_ships();
        g.bench_with_input(BenchmarkId::from_parameter(total), &f, |b, f| {
            let ils = Ils::new(&model, InductionConfig::with_min_support(3));
            b.iter(|| ils.induce(&f.db).expect("induction succeeds"));
        });
    }
    g.finish();
}

fn bench_pairwise(c: &mut Criterion) {
    let mut g = c.benchmark_group("pairwise_displacement_type");
    for classes_per_type in [8usize, 24, 96] {
        let f = generate(FleetConfig {
            seed: 0x1991,
            n_types: 3,
            classes_per_type,
            ships_per_class: 2,
            sonars_per_family: 4,
            id_noise: 0.0,
            overlapping_bands: false,
        })
        .expect("generation succeeds");
        let class = f.db.get("CLASS").expect("CLASS").clone();
        let cfg = InductionConfig::with_min_support(2);
        g.bench_with_input(
            BenchmarkId::from_parameter(class.len()),
            &class,
            |b, rel| {
                b.iter(|| {
                    induce_pair(rel, "CLASS", "Displacement", "CLASS", "Type", &cfg)
                        .expect("induction succeeds")
                })
            },
        );
    }
    g.finish();
}

fn bench_quel_vs_direct(c: &mut Criterion) {
    let mut g = c.benchmark_group("ship_testbed_pair");
    let cfg = InductionConfig::with_min_support(3);
    let db = ship_database().expect("test bed builds");
    let class = db.get("CLASS").expect("CLASS").clone();
    g.bench_function("direct", |b| {
        b.iter(|| {
            induce_pair(&class, "CLASS", "Class", "CLASS", "Type", &cfg)
                .expect("induction succeeds")
        })
    });
    g.bench_function("via_quel", |b| {
        b.iter_batched(
            || ship_database().expect("test bed builds"),
            |mut db| {
                induce_pair_quel(&mut db, "CLASS", "Class", "Type", &cfg)
                    .expect("induction succeeds")
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_ship_testbed_full(c: &mut Criterion) {
    let db = ship_database().expect("test bed builds");
    let model = ship_model().expect("schema parses");
    c.bench_function("ils_ship_testbed_17_rules", |b| {
        let ils = Ils::new(&model, InductionConfig::with_min_support(3));
        b.iter(|| ils.induce(&db).expect("induction succeeds"));
    });
}

fn bench_parallel_ils(c: &mut Criterion) {
    let f = fleet(80); // 1920 ships
    let model = f.ker_model();
    let ils = Ils::new(&model, InductionConfig::with_min_support(3));
    let mut g = c.benchmark_group("ils_parallelism_1920_ships");
    g.bench_function("sequential", |b| {
        b.iter(|| ils.induce(&f.db).expect("induction succeeds"))
    });
    for threads in [2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    ils.induce_parallel(&f.db, threads)
                        .expect("induction succeeds")
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_ils_scaling,
    bench_pairwise,
    bench_quel_vs_direct,
    bench_ship_testbed_full,
    bench_parallel_ils
);
criterion_main!(benches);
