//! The SHIP/PORT/VISIT scenario of §3.1: "the relationship VISIT
//! involves entities of SHIP and PORT and satisfies the constraint that
//! the draft of the ship must be less than the depth of the port."
//!
//! The paper uses this example to motivate inter-object knowledge
//! induction; this module builds a consistent instance so the constraint
//! can be *discovered* rather than asserted.

use intensio_ker::model::{KerModel, ModelError};
use intensio_storage::catalog::Database;
use intensio_storage::domain::Domain;
use intensio_storage::error::Result;
use intensio_storage::relation::Relation;
use intensio_storage::schema::{Attribute, Schema};
use intensio_storage::tuple;
use intensio_storage::value::ValueType;

/// `(Id, Name, Draft)` — ships with their drafts in feet.
pub const SHIPS: [(&str, &str, i64); 8] = [
    ("SH001", "Bonefish", 19),
    ("SH002", "Narwhal", 26),
    ("SH003", "Ohio", 36),
    ("SH004", "Typhoon", 38),
    ("SH005", "Skate", 21),
    ("SH006", "Sturgeon", 29),
    ("SH007", "Skipjack", 28),
    ("SH008", "Barbel", 19),
];

/// `(Port, PortName, Depth)` — ports with channel depths in feet.
pub const PORTS: [(&str, &str, i64); 5] = [
    ("P01", "Norfolk", 50),
    ("P02", "San Diego", 42),
    ("P03", "Pearl Harbor", 45),
    ("P04", "Groton", 40),
    ("P05", "Holy Loch", 65),
];

/// `(Ship, Port)` — visits; every visit satisfies draft < depth.
pub const VISITS: [(&str, &str); 12] = [
    ("SH001", "P01"),
    ("SH001", "P04"),
    ("SH002", "P02"),
    ("SH002", "P03"),
    ("SH003", "P01"),
    ("SH003", "P05"),
    ("SH004", "P05"),
    ("SH005", "P04"),
    ("SH005", "P02"),
    ("SH006", "P03"),
    ("SH007", "P01"),
    ("SH008", "P02"),
];

/// The KER schema for the visit scenario.
pub const VISIT_SCHEMA_KER: &str = r#"
object type SHIP
  has key: Id    domain: CHAR[5]
  has:     Name  domain: CHAR[20]
  has:     Draft domain: INTEGER

object type PORT
  has key: Port     domain: CHAR[3]
  has:     PortName domain: CHAR[20]
  has:     Depth    domain: INTEGER

object type VISIT
  has key: Visit domain: CHAR[6]
  has:     Ship  domain: SHIP
  has:     Port  domain: PORT
"#;

/// Build the visit database.
pub fn visit_database() -> Result<Database> {
    let mut db = Database::new();

    let mut ship = Relation::new(
        "SHIP",
        Schema::new(vec![
            Attribute::key("Id", Domain::char_n(5)),
            Attribute::new("Name", Domain::char_n(20)),
            Attribute::new("Draft", Domain::basic(ValueType::Int)),
        ])?,
    );
    for (id, name, draft) in SHIPS {
        ship.insert(tuple![id, name, draft])?;
    }
    db.create(ship)?;

    let mut port = Relation::new(
        "PORT",
        Schema::new(vec![
            Attribute::key("Port", Domain::char_n(3)),
            Attribute::new("PortName", Domain::char_n(20)),
            Attribute::new("Depth", Domain::basic(ValueType::Int)),
        ])?,
    );
    for (p, name, depth) in PORTS {
        port.insert(tuple![p, name, depth])?;
    }
    db.create(port)?;

    let mut visit = Relation::new(
        "VISIT",
        Schema::new(vec![
            Attribute::key("Visit", Domain::char_n(6)),
            Attribute::new("Ship", Domain::char_n(5)),
            Attribute::new("Port", Domain::char_n(3)),
        ])?,
    );
    for (i, (s, p)) in VISITS.iter().enumerate() {
        visit.insert(tuple![format!("V{i:05}"), *s, *p])?;
    }
    db.create(visit)?;
    Ok(db)
}

/// Parse the visit scenario's KER model.
pub fn visit_model() -> std::result::Result<KerModel, ModelError> {
    KerModel::parse(VISIT_SCHEMA_KER)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intensio_storage::value::Value;

    #[test]
    fn every_visit_satisfies_the_paper_constraint() {
        let db = visit_database().unwrap();
        let ship = db.get("SHIP").unwrap();
        let port = db.get("PORT").unwrap();
        for t in db.get("VISIT").unwrap().iter() {
            let s = ship.find_by_key(&[t.get(1).clone()]).unwrap();
            let p = port.find_by_key(&[t.get(2).clone()]).unwrap();
            let draft = s.get(2).as_int().unwrap();
            let depth = p.get(2).as_int().unwrap();
            assert!(draft < depth, "draft {draft} !< depth {depth}");
        }
    }

    #[test]
    fn model_sees_visit_as_relationship() {
        let m = visit_model().unwrap();
        let v = m.object_type("VISIT").unwrap();
        // Ship and Port attributes are object-valued.
        assert_eq!(v.declared_attrs[1].domain().name(), "SHIP");
        assert_eq!(v.declared_attrs[2].domain().name(), "PORT");
        let _ = Value::Null; // anchor the import
    }
}
