//! Synthetic fleet generator for scaling experiments.
//!
//! The paper's test bed has 24 ships; its prototype never measured how
//! induction and inference behave as the database grows or as the
//! pruning threshold `N_c` moves. This generator produces fleets with
//! the same five-relation shape (TYPE, CLASS, SUBMARINE, SONAR, INSTALL)
//! and the same statistical structure — disjoint per-type displacement
//! bands, classes grouped into types, ship ids mostly contiguous per
//! class — at any scale, deterministically from a seed.

use intensio_ker::model::KerModel;
use intensio_storage::catalog::Database;
use intensio_storage::domain::Domain;
use intensio_storage::error::Result;
use intensio_storage::relation::Relation;
use intensio_storage::schema::{Attribute, Schema};
use intensio_storage::tuple;
use intensio_storage::value::ValueType;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parameters of a synthetic fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// RNG seed; equal configs generate identical fleets.
    pub seed: u64,
    /// Number of ship types (≥ 1).
    pub n_types: usize,
    /// Classes per type (≥ 1).
    pub classes_per_type: usize,
    /// Ships per class (≥ 1).
    pub ships_per_class: usize,
    /// Sonar models per sonar family (one family per ship type).
    pub sonars_per_family: usize,
    /// Fraction of ships whose ids are scattered out of their class's
    /// contiguous id run (0.0 = perfectly contiguous, rule-friendly;
    /// higher values fragment induced rules).
    pub id_noise: f64,
    /// When true, adjacent types' displacement bands overlap, creating
    /// inconsistent (X, Y) pairs the induction step 2 must remove.
    pub overlapping_bands: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 0x1991,
            n_types: 2,
            classes_per_type: 6,
            ships_per_class: 4,
            sonars_per_family: 4,
            id_noise: 0.0,
            overlapping_bands: false,
        }
    }
}

impl FleetConfig {
    /// Total number of ships the config generates.
    pub fn total_ships(&self) -> usize {
        self.n_types * self.classes_per_type * self.ships_per_class
    }
}

/// A generated fleet: the database plus ground truth for evaluation.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// The generated five-relation database.
    pub db: Database,
    /// The generating configuration.
    pub config: FleetConfig,
    /// Ground truth: class code → type code.
    pub class_type: BTreeMap<String, String>,
    /// Ground truth: type code → (min, max) displacement band.
    pub type_band: BTreeMap<String, (i64, i64)>,
    /// The KER schema text describing the fleet's hierarchies.
    pub ker_source: String,
}

impl Fleet {
    /// Parse the fleet's KER schema into a model.
    pub fn ker_model(&self) -> KerModel {
        KerModel::parse(&self.ker_source).expect("generated schema is valid")
    }
}

fn type_code(i: usize) -> String {
    format!("T{i:02}")
}

fn class_code(t: usize, c: usize) -> String {
    format!("{t:02}{c:02}")
}

fn sonar_family(t: usize) -> String {
    format!("F{t:02}")
}

/// Generate a fleet.
pub fn generate(config: FleetConfig) -> Result<Fleet> {
    assert!(config.n_types >= 1, "need at least one type");
    assert!(
        config.classes_per_type >= 1,
        "need at least one class per type"
    );
    assert!(
        config.ships_per_class >= 1,
        "need at least one ship per class"
    );
    assert!(
        config.n_types <= 99 && config.classes_per_type <= 99,
        "type/class codes are two digits each (char[4]); keep both <= 99"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Displacement bands: width per type, disjoint unless overlapping.
    let band_width: i64 = 1000 * config.classes_per_type.max(2) as i64;
    let mut type_band = BTreeMap::new();
    for t in 0..config.n_types {
        let base = 2000
            + t as i64
                * (band_width
                    + if config.overlapping_bands {
                        -band_width / 3
                    } else {
                        500
                    });
        type_band.insert(type_code(t), (base, base + band_width));
    }

    // TYPE relation.
    let mut ty_rel = Relation::new(
        "TYPE",
        Schema::new(vec![
            Attribute::key("Type", Domain::char_n(4)),
            Attribute::new("TypeName", Domain::char_n(30)),
        ])?,
    );
    for t in 0..config.n_types {
        ty_rel.insert(tuple![type_code(t), format!("synthetic type {t}")])?;
    }

    // CLASS relation and ground truth.
    let mut class_rel = Relation::new(
        "CLASS",
        Schema::new(vec![
            Attribute::key("Class", Domain::char_n(4)),
            Attribute::new("ClassName", Domain::char_n(20)),
            Attribute::new("Type", Domain::char_n(4)),
            Attribute::new("Displacement", Domain::basic(ValueType::Int)),
        ])?,
    );
    let mut class_type = BTreeMap::new();
    for t in 0..config.n_types {
        let (lo, hi) = type_band[&type_code(t)];
        for c in 0..config.classes_per_type {
            let code = class_code(t, c);
            // Spread class displacements across the band, endpoints
            // included, so induced ranges recover the band.
            let d = if config.classes_per_type == 1 || c == 0 {
                lo
            } else if c == config.classes_per_type - 1 {
                hi
            } else {
                rng.gen_range(lo + 1..hi)
            };
            // With overlapping bands, quantize to a coarse grid so the
            // *same* displacement value occurs in different types —
            // producing the inconsistent (X, Y) pairs that §5.2.1
            // step 2 exists to remove.
            let d = if config.overlapping_bands {
                let step = (band_width / 4).max(1);
                ((d + step / 2) / step * step).clamp(lo, hi)
            } else {
                d
            };
            class_rel.insert(tuple![
                code.clone(),
                format!("class {code}"),
                type_code(t),
                d
            ])?;
            class_type.insert(code, type_code(t));
        }
    }

    // SUBMARINE relation: ids contiguous per class, with optional noise.
    let total = config.total_ships();
    let mut ship_ids: Vec<String> = (0..total).map(|i| format!("S{i:06}")).collect();
    let n_noisy = (config.id_noise * total as f64).round() as usize;
    if n_noisy > 1 {
        // Shuffle a random subset of id slots among themselves.
        let mut slots: Vec<usize> = (0..total).collect();
        slots.shuffle(&mut rng);
        let noisy = &mut slots[..n_noisy].to_vec();
        let mut ids: Vec<String> = noisy.iter().map(|&i| ship_ids[i].clone()).collect();
        ids.shuffle(&mut rng);
        for (slot, id) in noisy.iter().zip(ids) {
            ship_ids[*slot] = id;
        }
    }
    let mut sub_rel = Relation::new(
        "SUBMARINE",
        Schema::new(vec![
            Attribute::key("Id", Domain::char_n(7)),
            Attribute::new("Name", Domain::char_n(20)),
            Attribute::new("Class", Domain::char_n(4)),
        ])?,
    );
    let mut ship_class: Vec<(String, String)> = Vec::with_capacity(total);
    {
        let mut i = 0usize;
        for t in 0..config.n_types {
            for c in 0..config.classes_per_type {
                for _ in 0..config.ships_per_class {
                    ship_class.push((ship_ids[i].clone(), class_code(t, c)));
                    i += 1;
                }
            }
        }
    }
    for (n, (id, class)) in ship_class.iter().enumerate() {
        sub_rel.insert(tuple![id.clone(), format!("ship {n}"), class.clone()])?;
    }

    // SONAR relation: one family per type, several models per family.
    let mut sonar_rel = Relation::new(
        "SONAR",
        Schema::new(vec![
            Attribute::key("Sonar", Domain::char_n(8)),
            Attribute::new("SonarType", Domain::char_n(8)),
        ])?,
    );
    let mut family_models: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for t in 0..config.n_types {
        let fam = sonar_family(t);
        for m in 0..config.sonars_per_family.max(1) {
            let model = format!("{fam}-{m:02}");
            sonar_rel.insert(tuple![model.clone(), fam.clone()])?;
            family_models.entry(fam.clone()).or_default().push(model);
        }
    }

    // INSTALL: ships of type t get sonars of family t.
    let mut install_rel = Relation::new(
        "INSTALL",
        Schema::new(vec![
            Attribute::key("Ship", Domain::char_n(7)),
            Attribute::new("Sonar", Domain::char_n(8)),
        ])?,
    );
    for (id, class) in &ship_class {
        let ty = &class_type[class];
        let t: usize = ty[1..].parse().expect("type code");
        let fam = sonar_family(t);
        let models = &family_models[&fam];
        let model = &models[rng.gen_range(0..models.len())];
        install_rel.insert(tuple![id.clone(), model.clone()])?;
    }

    let mut db = Database::new();
    db.create(ty_rel)?;
    db.create(class_rel)?;
    db.create(sub_rel)?;
    db.create(sonar_rel)?;
    db.create(install_rel)?;

    let ker_source = render_ker(&config, &class_type);
    Ok(Fleet {
        db,
        config,
        class_type,
        type_band,
        ker_source,
    })
}

/// Generate KER schema text mirroring the ship test bed's hierarchies.
fn render_ker(config: &FleetConfig, class_type: &BTreeMap<String, String>) -> String {
    let mut s = String::new();
    s.push_str(
        "object type CLASS\n  has key: Class domain: CHAR[4]\n  has: ClassName domain: CHAR[20]\n  has: Type domain: CHAR[4]\n  has: Displacement domain: INTEGER\n",
    );
    s.push_str(
        "object type SUBMARINE\n  has key: Id domain: CHAR[7]\n  has: Name domain: CHAR[20]\n  has: Class domain: CLASS\n",
    );
    s.push_str(
        "object type SONAR\n  has key: Sonar domain: CHAR[8]\n  has: SonarType domain: CHAR[8]\n",
    );
    s.push_str(
        "object type INSTALL\n  has key: Ship domain: SUBMARINE\n  has: Sonar domain: SONAR\n",
    );

    let types: Vec<String> = (0..config.n_types).map(type_code).collect();
    let _ = writeln!(s, "CLASS contains {}", types.join(", "));
    for t in &types {
        let _ = writeln!(s, "{t} isa CLASS with Type = \"{t}\"");
    }
    for t in 0..config.n_types {
        let tname = type_code(t);
        let classes: Vec<String> = class_type
            .iter()
            .filter(|(_, ty)| **ty == tname)
            .map(|(c, _)| format!("C{c}"))
            .collect();
        let _ = writeln!(s, "{tname} contains {}", classes.join(", "));
        for c in &classes {
            let _ = writeln!(s, "{c} isa {tname} with Class = \"{}\"", &c[1..]);
        }
    }
    let fams: Vec<String> = (0..config.n_types).map(sonar_family).collect();
    let _ = writeln!(s, "SONAR contains {}", fams.join(", "));
    for f in &fams {
        let _ = writeln!(s, "{f} isa SONAR with SonarType = \"{f}\"");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_fleet_shape() {
        let fleet = generate(FleetConfig::default()).unwrap();
        let cfg = fleet.config;
        assert_eq!(fleet.db.get("TYPE").unwrap().len(), cfg.n_types);
        assert_eq!(
            fleet.db.get("CLASS").unwrap().len(),
            cfg.n_types * cfg.classes_per_type
        );
        assert_eq!(fleet.db.get("SUBMARINE").unwrap().len(), cfg.total_ships());
        assert_eq!(fleet.db.get("INSTALL").unwrap().len(), cfg.total_ships());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(FleetConfig::default()).unwrap();
        let b = generate(FleetConfig::default()).unwrap();
        assert_eq!(
            a.db.get("SUBMARINE").unwrap().tuples(),
            b.db.get("SUBMARINE").unwrap().tuples()
        );
        let c = generate(FleetConfig {
            seed: 7,
            ..FleetConfig::default()
        })
        .unwrap();
        assert_ne!(
            a.db.get("CLASS").unwrap().tuples(),
            c.db.get("CLASS").unwrap().tuples()
        );
    }

    #[test]
    fn bands_disjoint_by_default() {
        let fleet = generate(FleetConfig {
            n_types: 4,
            ..FleetConfig::default()
        })
        .unwrap();
        let bands: Vec<(i64, i64)> = fleet.type_band.values().copied().collect();
        for w in bands.windows(2) {
            assert!(w[0].1 < w[1].0, "bands must not overlap: {w:?}");
        }
    }

    #[test]
    fn overlapping_bands_overlap() {
        let fleet = generate(FleetConfig {
            n_types: 3,
            overlapping_bands: true,
            ..FleetConfig::default()
        })
        .unwrap();
        let bands: Vec<(i64, i64)> = fleet.type_band.values().copied().collect();
        assert!(bands.windows(2).any(|w| w[0].1 >= w[1].0));
    }

    #[test]
    fn ker_model_has_classifiers() {
        let fleet = generate(FleetConfig::default()).unwrap();
        let m = fleet.ker_model();
        assert_eq!(m.classifier_of("CLASS").unwrap().attribute, "Type");
        assert_eq!(m.classifier_of("T00").unwrap().attribute, "Class");
        assert_eq!(m.classifier_of("SONAR").unwrap().attribute, "SonarType");
    }

    #[test]
    fn class_displacements_stay_in_band() {
        let fleet = generate(FleetConfig {
            n_types: 3,
            classes_per_type: 10,
            ..FleetConfig::default()
        })
        .unwrap();
        for t in fleet.db.get("CLASS").unwrap().iter() {
            let ty = t.get(2).as_str().unwrap();
            let d = t.get(3).as_int().unwrap();
            let (lo, hi) = fleet.type_band[ty];
            assert!(d >= lo && d <= hi);
        }
    }

    #[test]
    fn id_noise_scatters_ids() {
        let tidy = generate(FleetConfig::default()).unwrap();
        let noisy = generate(FleetConfig {
            id_noise: 0.5,
            ..FleetConfig::default()
        })
        .unwrap();
        // In the tidy fleet, sorting by id groups classes contiguously.
        let runs = |f: &Fleet| {
            let mut rel = f.db.get("SUBMARINE").unwrap().clone();
            rel.sort_by_names(&["Id"]).unwrap();
            let mut changes = 0;
            let mut last: Option<String> = None;
            for t in rel.iter() {
                let c = t.get(2).as_str().unwrap().to_string();
                if last.as_deref() != Some(&c) {
                    changes += 1;
                }
                last = Some(c);
            }
            changes
        };
        assert!(runs(&noisy) > runs(&tidy));
    }
}
