//! The KER schema of the naval ship test bed (paper Appendix B), written
//! in the Appendix A syntax and extended with explicit `isa` derivations
//! for every hierarchy level so the classifying attributes (`Type`,
//! `Class`, `SonarType`) are machine-readable rather than implicit.

use intensio_ker::model::{KerModel, ModelError};

/// The KER schema source text for the ship database.
pub const SHIP_SCHEMA_KER: &str = r#"
domain: NAME isa CHAR[20]
domain: CLASS_NAME isa NAME
domain: SHIP_NAME isa NAME
domain: TYPE_NAME isa CHAR[30]
domain: SONAR_NAME isa CHAR[8]

object type CLASS
  has key: Class        domain: CHAR[4]
  has:     ClassName    domain: CLASS_NAME
  has:     Type         domain: CHAR[4]
  has:     Displacement domain: INTEGER
with /* x isa CLASS */
  if "0101" <= x.Class <= "0103" then x.Type = "SSBN"
  if "0201" <= x.Class <= "0216" then x.Type = "SSN"
  if 2145 <= x.Displacement <= 6955 then x isa SSN
  if 7250 <= x.Displacement <= 30000 then x isa SSBN

CLASS contains SSBN, SSN

SSBN isa CLASS with Type = "SSBN"
SSN  isa CLASS with Type = "SSN"

SSBN contains C0101, C0102, C0103, C1301
SSN  contains C0201, C0203, C0204, C0205, C0207, C0208, C0209, C0212, C0215

C0101 isa SSBN with Class = "0101"
C0102 isa SSBN with Class = "0102"
C0103 isa SSBN with Class = "0103"
C1301 isa SSBN with Class = "1301"
C0201 isa SSN with Class = "0201"
C0203 isa SSN with Class = "0203"
C0204 isa SSN with Class = "0204"
C0205 isa SSN with Class = "0205"
C0207 isa SSN with Class = "0207"
C0208 isa SSN with Class = "0208"
C0209 isa SSN with Class = "0209"
C0212 isa SSN with Class = "0212"
C0215 isa SSN with Class = "0215"

object type SUBMARINE
  has key: Id    domain: CHAR[7]
  has:     Name  domain: SHIP_NAME
  has:     Class domain: CLASS

object type TYPE
  has key: Type     domain: CHAR[4]
  has:     TypeName domain: TYPE_NAME

object type SONAR
  has key: Sonar     domain: CHAR[8]
  has:     SonarType domain: SONAR_NAME
with /* x isa SONAR */
  if BQQ-2 <= x.Sonar <= BQQ-8 then x isa BQQ
  if BQS-04 <= x.Sonar <= BQS-15 then x isa BQS
  if x.Sonar = "TACTAS" then x isa TACTAS

SONAR contains BQQ, BQS, TACTAS

BQQ    isa SONAR with SonarType = "BQQ"
BQS    isa SONAR with SonarType = "BQS"
TACTAS isa SONAR with SonarType = "TACTAS"

object type INSTALL
  has key: Ship  domain: SUBMARINE
  has:     Sonar domain: SONAR
with /* x isa SUBMARINE and y isa SONAR */
  if x.Class = "0203" then y isa BQQ
  if "0205" <= x.Class <= "0207" then y isa BQQ
  if "0208" <= x.Class <= "0215" then y isa BQS
  if y.Sonar = "BQS-04" then x isa SSN
"#;

/// Parse and resolve the ship schema into a KER model.
pub fn ship_model() -> Result<KerModel, ModelError> {
    KerModel::parse(SHIP_SCHEMA_KER)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intensio_storage::value::Value;

    #[test]
    fn schema_parses_and_resolves() {
        let m = ship_model().unwrap();
        assert!(m.contains_type("CLASS"));
        assert!(m.contains_type("SUBMARINE"));
        assert!(m.is_subtype_of("C0101", "SSBN"));
        assert!(m.is_subtype_of("C0101", "CLASS"));
        assert!(m.is_subtype_of("BQS", "SONAR"));
    }

    #[test]
    fn classifiers_cover_all_levels() {
        let m = ship_model().unwrap();
        assert_eq!(m.classifier_of("CLASS").unwrap().attribute, "Type");
        assert_eq!(m.classifier_of("SSBN").unwrap().attribute, "Class");
        assert_eq!(m.classifier_of("SONAR").unwrap().attribute, "SonarType");
        assert_eq!(
            m.subtype_label_for("Type", &Value::str("SSBN")),
            Some("SSBN".to_string())
        );
        assert_eq!(
            m.subtype_label_for("Class", &Value::str("0103")),
            Some("C0103".to_string())
        );
        assert_eq!(
            m.subtype_label_for("SonarType", &Value::str("BQS")),
            Some("BQS".to_string())
        );
        assert_eq!(m.subtype_label_for("Class", &Value::str("9999")), None);
    }

    #[test]
    fn submarine_class_is_object_valued() {
        let m = ship_model().unwrap();
        let sub = m.object_type("SUBMARINE").unwrap();
        // Class attribute adopts CLASS's key domain (char[4]).
        assert_eq!(
            sub.declared_attrs[2].value_type(),
            intensio_storage::value::ValueType::Str
        );
    }

    #[test]
    fn hierarchy_counts_match_paper() {
        let m = ship_model().unwrap();
        assert_eq!(m.descendants_of("CLASS").len(), 2 + 13);
        assert_eq!(m.descendants_of("SONAR").len(), 3);
    }
}
