//! A deliberately pathological test bed whose *organically induced*
//! rule set conflicts.
//!
//! Pairwise induction over a single relationship relation can never
//! contradict itself — the runs for one `(X, Y)` pair partition the
//! premise axis. But two relationship relations that classify the same
//! object type from the same premise attribute can disagree, and here
//! they do by construction:
//!
//! * `R1` maps entities with `V ∈ [1, 5]` to group `G00A` (`Cat = "A"`),
//! * `R2` maps entities with `V ∈ [3, 8]` to group `G00B` (`Cat = "B"`).
//!
//! Both runs clear the default support threshold, their premise ranges
//! overlap on `[3, 5]`, and their conclusions about `G.Cat` clash —
//! exactly the shape the `IC020` conflicting-rules lint exists to
//! catch, and the fixture the serve-path install gate is tested with.

use intensio_ker::model::{KerModel, ModelError};
use intensio_storage::catalog::Database;
use intensio_storage::domain::Domain;
use intensio_storage::error::Result;
use intensio_storage::relation::Relation;
use intensio_storage::schema::{Attribute, Schema};
use intensio_storage::tuple;
use intensio_storage::value::ValueType;

/// KER schema for the conflicting-induction test bed.
pub const CONFLICT_SCHEMA_KER: &str = r#"
object type G
  has key: Gid domain: CHAR[4]
  has:     Cat domain: CHAR[1]

G contains GA, GB

GA isa G with Cat = "A"
GB isa G with Cat = "B"

object type E
  has key: Eid domain: CHAR[4]
  has:     V   domain: INTEGER

object type R1
  has key: Er domain: E
  has:     Gr domain: G

object type R2
  has key: Er domain: E
  has:     Gr domain: G
"#;

/// Parses [`CONFLICT_SCHEMA_KER`] into a model.
pub fn conflict_model() -> std::result::Result<KerModel, ModelError> {
    KerModel::parse(CONFLICT_SCHEMA_KER)
}

/// Builds the instance whose induced `R1`/`R2` rules conflict.
pub fn conflict_database() -> Result<Database> {
    let mut db = Database::new();

    let g_schema = Schema::new(vec![
        Attribute::key("Gid", Domain::char_n(4)),
        Attribute::new("Cat", Domain::char_n(1)),
    ])
    .expect("static schema");
    let mut g = Relation::new("G", g_schema);
    g.insert(tuple!["G00A", "A"])?;
    g.insert(tuple!["G00B", "B"])?;
    db.create(g)?;

    let e_schema = Schema::new(vec![
        Attribute::key("Eid", Domain::char_n(4)),
        Attribute::new("V", Domain::basic(ValueType::Int)),
    ])
    .expect("static schema");
    let mut e = Relation::new("E", e_schema);
    for v in 1..=8i64 {
        e.insert(tuple![format!("E{v:03}"), v])?;
    }
    db.create(e)?;

    let rel_schema = |name: &str| {
        let schema = Schema::new(vec![
            Attribute::key("Er", Domain::char_n(4)),
            Attribute::new("Gr", Domain::char_n(4)),
        ])
        .expect("static schema");
        Relation::new(name, schema)
    };

    // R1: V ∈ [1, 5] → "A" (support 5).
    let mut r1 = rel_schema("R1");
    for v in 1..=5i64 {
        r1.insert(tuple![format!("E{v:03}"), "G00A"])?;
    }
    db.create(r1)?;

    // R2: V ∈ [3, 8] → "B" (support 6, overlapping R1 on [3, 5]).
    let mut r2 = rel_schema("R2");
    for v in 3..=8i64 {
        r2.insert(tuple![format!("E{v:03}"), "G00B"])?;
    }
    db.create(r2)?;

    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_schema_parses() {
        let model = conflict_model().unwrap();
        assert!(model.is_subtype_of("GA", "G"));
        assert!(model.is_subtype_of("GB", "G"));
    }

    #[test]
    fn conflict_database_builds() {
        let db = conflict_database().unwrap();
        assert_eq!(db.get("G").unwrap().len(), 2);
        assert_eq!(db.get("E").unwrap().len(), 8);
        assert_eq!(db.get("R1").unwrap().len(), 5);
        assert_eq!(db.get("R2").unwrap().len(), 6);
    }
}
