//! # intensio-shipdb
//!
//! The naval ship test bed of Chu & Lee (ICDE 1991), §6 and Appendices
//! B/C: the KER schema, the 24-submarine database instance, the Table 1
//! battleship classification characteristics, and a seeded synthetic
//! fleet generator for the scaling experiments the 1990 prototype could
//! not run.
//!
//! ```
//! let db = intensio_shipdb::ship_database().unwrap();
//! assert_eq!(db.get("SUBMARINE").unwrap().len(), 24);
//! let model = intensio_shipdb::ship_model().unwrap();
//! assert!(model.is_subtype_of("C0101", "SSBN"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battleships;
pub mod conflict;
pub mod data;
pub mod schema;
pub mod synthetic;
pub mod visit;

pub use conflict::{conflict_database, conflict_model, CONFLICT_SCHEMA_KER};
pub use data::ship_database;
pub use schema::{ship_model, SHIP_SCHEMA_KER};
pub use synthetic::{generate, Fleet, FleetConfig};
pub use visit::{visit_database, visit_model};
