//! Navy battleship classification characteristics (paper Table 1).
//!
//! Table 1 lists, per ship type, the displacement band its instances
//! fall in. This module carries the published bands, generates a
//! deterministic battleship relation whose instances respect them, and
//! recomputes the table from data — the "classification semantics" of
//! §3.1 that knowledge induction is meant to recover.

use intensio_storage::catalog::Database;
use intensio_storage::domain::Domain;
use intensio_storage::error::Result;
use intensio_storage::ops::{self, Aggregate};
use intensio_storage::relation::Relation;
use intensio_storage::schema::{Attribute, Schema};
use intensio_storage::tuple;
use intensio_storage::value::{Value, ValueType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One row of Table 1: category, type code, type name, displacement band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Band {
    /// `Subsurface` or `Surface`.
    pub category: &'static str,
    /// The type code (`SSBN`, `CVN`, ...).
    pub ty: &'static str,
    /// The descriptive type name.
    pub name: &'static str,
    /// Minimum displacement (tons).
    pub lo: i64,
    /// Maximum displacement (tons).
    pub hi: i64,
}

/// The twelve bands of Table 1, verbatim.
pub const TABLE1_BANDS: [Band; 12] = [
    Band {
        category: "Subsurface",
        ty: "SSBN",
        name: "Ballistic Nuclear Missile Submarine",
        lo: 7250,
        hi: 16600,
    },
    Band {
        category: "Subsurface",
        ty: "SSN",
        name: "Nuclear Submarine",
        lo: 1720,
        hi: 6000,
    },
    Band {
        category: "Surface",
        ty: "CVN",
        name: "Attack Aircraft Carrier",
        lo: 75700,
        hi: 81600,
    },
    Band {
        category: "Surface",
        ty: "CV",
        name: "Aircraft Carrier",
        lo: 41900,
        hi: 61000,
    },
    Band {
        category: "Surface",
        ty: "BB",
        name: "Battleship",
        lo: 45000,
        hi: 45000,
    },
    Band {
        category: "Surface",
        ty: "CGN",
        name: "Guided Nuclear Missile Crusier",
        lo: 7600,
        hi: 14200,
    },
    Band {
        category: "Surface",
        ty: "CG",
        name: "Guided Missile Crusier",
        lo: 5670,
        hi: 13700,
    },
    Band {
        category: "Surface",
        ty: "CA",
        name: "Gun Cruiser",
        lo: 17000,
        hi: 17000,
    },
    Band {
        category: "Surface",
        ty: "DDG",
        name: "Guided Missile Destroyer",
        lo: 3370,
        hi: 8300,
    },
    Band {
        category: "Surface",
        ty: "DD",
        name: "Destroyer",
        lo: 2425,
        hi: 7810,
    },
    Band {
        category: "Surface",
        ty: "FFG",
        name: "Guided Missile Frigate",
        lo: 3605,
        hi: 3605,
    },
    Band {
        category: "Surface",
        ty: "FF",
        name: "Frigate",
        lo: 2360,
        hi: 3011,
    },
];

/// The schema of the generated BATTLESHIP relation.
pub fn battleship_schema() -> Schema {
    Schema::new(vec![
        Attribute::key("Id", Domain::char_n(10)),
        Attribute::new("Category", Domain::char_n(10)),
        Attribute::new("Type", Domain::char_n(4)),
        Attribute::new("Displacement", Domain::basic(ValueType::Int)),
    ])
    .expect("static schema")
}

/// Generate a battleship relation with `ships_per_type` instances per
/// type. Each type's band endpoints are always included (so recomputed
/// ranges equal Table 1 exactly); interior instances are sampled
/// uniformly with the seeded generator.
pub fn battleship_relation(ships_per_type: usize, seed: u64) -> Result<Relation> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Relation::new("BATTLESHIP", battleship_schema());
    for band in TABLE1_BANDS {
        for i in 0..ships_per_type.max(1) {
            let displacement = if i == 0 {
                band.lo
            } else if i == 1 && ships_per_type > 1 {
                band.hi
            } else {
                rng.gen_range(band.lo..=band.hi)
            };
            let id = format!("{}{:04}", band.ty, i);
            rel.insert(tuple![id, band.category, band.ty, displacement])?;
        }
    }
    Ok(rel)
}

/// A database holding only the battleship relation.
pub fn battleship_database(ships_per_type: usize, seed: u64) -> Result<Database> {
    let mut db = Database::new();
    db.create(battleship_relation(ships_per_type, seed)?)?;
    Ok(db)
}

/// Recompute Table 1 from a battleship relation: per type, the observed
/// displacement range. Returns a relation with columns
/// `(Category, Type, TypeName, MinDisplacement, MaxDisplacement)` in
/// Table 1's row order.
pub fn recompute_table1(rel: &Relation) -> Result<Relation> {
    let grouped = ops::group_by(
        rel,
        &["Type"],
        &[
            ("MinDisplacement", Aggregate::Min, "Displacement"),
            ("MaxDisplacement", Aggregate::Max, "Displacement"),
        ],
    )?;
    let schema = Schema::new(vec![
        Attribute::new("Category", Domain::char_n(10)),
        Attribute::new("Type", Domain::char_n(4)),
        Attribute::new("TypeName", Domain::char_n(40)),
        Attribute::new("MinDisplacement", Domain::basic(ValueType::Int)),
        Attribute::new("MaxDisplacement", Domain::basic(ValueType::Int)),
    ])
    .expect("static schema");
    let mut out = Relation::new("TABLE1", schema);
    for band in TABLE1_BANDS {
        let row = grouped.iter().find(|t| t.get(0) == &Value::str(band.ty));
        if let Some(row) = row {
            out.insert(tuple![
                band.category,
                band.ty,
                band.name,
                row.get(1).as_int().unwrap_or(0),
                row.get(2).as_int().unwrap_or(0)
            ])?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_always_present() {
        let rel = battleship_relation(5, 42).unwrap();
        assert_eq!(rel.len(), 60);
        let t1 = recompute_table1(&rel).unwrap();
        assert_eq!(t1.len(), 12);
        for (row, band) in t1.iter().zip(TABLE1_BANDS) {
            assert_eq!(row.get(3).as_int().unwrap(), band.lo, "{} min", band.ty);
            assert_eq!(row.get(4).as_int().unwrap(), band.hi, "{} max", band.ty);
        }
    }

    #[test]
    fn instances_respect_bands() {
        let rel = battleship_relation(20, 7).unwrap();
        for t in rel.iter() {
            let ty = t.get(2).as_str().unwrap();
            let d = t.get(3).as_int().unwrap();
            let band = TABLE1_BANDS.iter().find(|b| b.ty == ty).unwrap();
            assert!(d >= band.lo && d <= band.hi);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = battleship_relation(10, 99).unwrap();
        let b = battleship_relation(10, 99).unwrap();
        assert_eq!(a.tuples(), b.tuples());
        let c = battleship_relation(10, 100).unwrap();
        assert_ne!(a.tuples(), c.tuples());
    }

    #[test]
    fn single_ship_per_type_uses_lo() {
        let rel = battleship_relation(1, 1).unwrap();
        assert_eq!(rel.len(), 12);
        let bb = rel.iter().find(|t| t.get(2) == &Value::str("BB")).unwrap();
        assert_eq!(bb.get(3).as_int().unwrap(), 45000);
    }
}
