//! The ship database instance of the paper's Appendix C, verbatim.

use intensio_storage::catalog::Database;
use intensio_storage::domain::Domain;
use intensio_storage::error::Result;
use intensio_storage::relation::Relation;
use intensio_storage::schema::{Attribute, Schema};
use intensio_storage::tuple;
use intensio_storage::value::ValueType;

/// `(Id, Name, Class)` — the 24 submarines of Appendix C.
pub const SUBMARINES: [(&str, &str, &str); 24] = [
    ("SSBN130", "Typhoon", "1301"),
    ("SSBN623", "Nathaniel Hale", "0103"),
    ("SSBN629", "Daniel Boone", "0103"),
    ("SSBN635", "Sam Rayburn", "0103"),
    ("SSBN644", "Lewis and Clark", "0102"),
    ("SSBN658", "Mariano G. Vallejo", "0102"),
    ("SSBN730", "Rhode Island", "0101"),
    ("SSN582", "Bonefish", "0215"),
    ("SSN584", "Seadragon", "0212"),
    ("SSN592", "Snook", "0209"),
    ("SSN601", "Robert E. Lee", "0208"),
    ("SSN604", "Haddo", "0205"),
    ("SSN610", "Thomas A. Edison", "0207"),
    ("SSN614", "Greenling", "0205"),
    ("SSN648", "Aspro", "0204"),
    ("SSN660", "Sand Lance", "0204"),
    ("SSN666", "Hawkbill", "0204"),
    ("SSN671", "Narwhal", "0203"),
    ("SSN673", "Flying Fish", "0204"),
    ("SSN679", "Silversides", "0204"),
    ("SSN686", "L. Mendel Rivers", "0204"),
    ("SSN692", "Omaha", "0201"),
    ("SSN698", "Bremerton", "0201"),
    ("SSN704", "Baltimore", "0201"),
];

/// `(Class, ClassName, Type, Displacement)` — the 13 ship classes.
pub const CLASSES: [(&str, &str, &str, i64); 13] = [
    ("0101", "Ohio", "SSBN", 16600),
    ("0102", "Benjamin Franklin", "SSBN", 7250),
    ("0103", "Lafayette", "SSBN", 7250),
    ("0201", "LosAngeles", "SSN", 6000),
    ("0203", "Narwhal", "SSN", 4450),
    ("0204", "Sturgeon", "SSN", 3640),
    ("0205", "Thresher", "SSN", 3750),
    ("0207", "Ethan Allen", "SSN", 6955),
    ("0208", "George Washington", "SSN", 6019),
    ("0209", "Skipjack", "SSN", 3075),
    ("0212", "Skate", "SSN", 2360),
    ("0215", "Barbel", "SSN", 2145),
    ("1301", "Typhoon", "SSBN", 30000),
];

/// `(Type, TypeName)` — the two submarine types.
pub const TYPES: [(&str, &str); 2] = [
    ("SSBN", "ballistic nuclear missile sub"),
    ("SSN", "nuclear submarine"),
];

/// `(Sonar, SonarType)` — the eight sonars.
pub const SONARS: [(&str, &str); 8] = [
    ("BQQ-2", "BQQ"),
    ("BQQ-5", "BQQ"),
    ("BQQ-8", "BQQ"),
    ("BQS-04", "BQS"),
    ("BQS-12", "BQS"),
    ("BQS-13", "BQS"),
    ("BQS-15", "BQS"),
    ("TACTAS", "TACTAS"),
];

/// `(Ship, Sonar)` — the 24 sonar installations.
pub const INSTALLS: [(&str, &str); 24] = [
    ("SSBN130", "BQQ-2"),
    ("SSBN623", "BQQ-5"),
    ("SSBN629", "BQQ-5"),
    ("SSBN635", "BQS-12"),
    ("SSBN644", "BQQ-5"),
    ("SSBN658", "BQS-12"),
    ("SSBN730", "BQQ-5"),
    ("SSN582", "BQS-04"),
    ("SSN584", "BQS-04"),
    ("SSN592", "BQS-04"),
    ("SSN601", "BQS-04"),
    ("SSN604", "BQQ-2"),
    ("SSN610", "BQQ-5"),
    ("SSN614", "BQQ-2"),
    ("SSN648", "BQQ-2"),
    ("SSN660", "BQQ-5"),
    ("SSN666", "BQQ-8"),
    ("SSN671", "BQQ-2"),
    ("SSN673", "BQS-12"),
    ("SSN679", "BQS-13"),
    ("SSN686", "BQQ-2"),
    ("SSN692", "BQS-15"),
    ("SSN698", "TACTAS"),
    ("SSN704", "BQQ-5"),
];

/// The storage schema of the SUBMARINE relation.
pub fn submarine_schema() -> Schema {
    Schema::new(vec![
        Attribute::key("Id", Domain::char_n(7)),
        Attribute::new("Name", Domain::char_n(20)),
        Attribute::new("Class", Domain::char_n(4)),
    ])
    .expect("static schema")
}

/// The storage schema of the CLASS relation.
pub fn class_schema() -> Schema {
    Schema::new(vec![
        Attribute::key("Class", Domain::char_n(4)),
        Attribute::new("ClassName", Domain::char_n(20)),
        Attribute::new("Type", Domain::char_n(4)),
        Attribute::new("Displacement", Domain::basic(ValueType::Int)),
    ])
    .expect("static schema")
}

/// The storage schema of the TYPE relation.
pub fn type_schema() -> Schema {
    Schema::new(vec![
        Attribute::key("Type", Domain::char_n(4)),
        Attribute::new("TypeName", Domain::char_n(30)),
    ])
    .expect("static schema")
}

/// The storage schema of the SONAR relation.
pub fn sonar_schema() -> Schema {
    Schema::new(vec![
        Attribute::key("Sonar", Domain::char_n(8)),
        Attribute::new("SonarType", Domain::char_n(8)),
    ])
    .expect("static schema")
}

/// The storage schema of the INSTALL relationship.
pub fn install_schema() -> Schema {
    Schema::new(vec![
        Attribute::key("Ship", Domain::char_n(7)),
        Attribute::new("Sonar", Domain::char_n(8)),
    ])
    .expect("static schema")
}

/// Build the full Appendix C database.
pub fn ship_database() -> Result<Database> {
    let mut db = Database::new();

    let mut submarine = Relation::new("SUBMARINE", submarine_schema());
    for (id, name, class) in SUBMARINES {
        submarine.insert(tuple![id, name, class])?;
    }
    db.create(submarine)?;

    let mut class = Relation::new("CLASS", class_schema());
    for (c, cn, t, d) in CLASSES {
        class.insert(tuple![c, cn, t, d])?;
    }
    db.create(class)?;

    let mut ty = Relation::new("TYPE", type_schema());
    for (t, tn) in TYPES {
        ty.insert(tuple![t, tn])?;
    }
    db.create(ty)?;

    let mut sonar = Relation::new("SONAR", sonar_schema());
    for (s, st) in SONARS {
        sonar.insert(tuple![s, st])?;
    }
    db.create(sonar)?;

    let mut install = Relation::new("INSTALL", install_schema());
    for (ship, s) in INSTALLS {
        install.insert(tuple![ship, s])?;
    }
    db.create(install)?;

    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intensio_sql::query;
    use intensio_storage::value::Value;

    #[test]
    fn cardinalities_match_appendix_c() {
        let db = ship_database().unwrap();
        assert_eq!(db.get("SUBMARINE").unwrap().len(), 24);
        assert_eq!(db.get("CLASS").unwrap().len(), 13);
        assert_eq!(db.get("TYPE").unwrap().len(), 2);
        assert_eq!(db.get("SONAR").unwrap().len(), 8);
        assert_eq!(db.get("INSTALL").unwrap().len(), 24);
    }

    #[test]
    fn every_submarine_class_exists() {
        let db = ship_database().unwrap();
        let class = db.get("CLASS").unwrap();
        for (_, _, c) in SUBMARINES {
            assert!(
                class.find_by_key(&[Value::str(c)]).is_some(),
                "missing class {c}"
            );
        }
    }

    #[test]
    fn every_install_references_existing_rows() {
        let db = ship_database().unwrap();
        let sub = db.get("SUBMARINE").unwrap();
        let sonar = db.get("SONAR").unwrap();
        for (ship, s) in INSTALLS {
            assert!(sub.find_by_key(&[Value::str(ship)]).is_some());
            assert!(sonar.find_by_key(&[Value::str(s)]).is_some());
        }
    }

    #[test]
    fn example1_extensional_answer_matches_paper() {
        let db = ship_database().unwrap();
        let r = query(
            &db,
            "SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE \
             FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        let names: Vec<&str> = r.iter().map(|t| t.get(1).as_str().unwrap()).collect();
        assert!(names.contains(&"Rhode Island"));
        assert!(names.contains(&"Typhoon"));
    }

    #[test]
    fn example2_extensional_answer_matches_paper() {
        let db = ship_database().unwrap();
        let r = query(
            &db,
            "SELECT SUBMARINE.NAME, SUBMARINE.CLASS FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = \"SSBN\"",
        )
        .unwrap();
        assert_eq!(r.len(), 7, "paper lists 7 SSBN ships");
    }

    #[test]
    fn example3_extensional_answer_matches_paper() {
        let db = ship_database().unwrap();
        let r = query(
            &db,
            "SELECT SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE \
             FROM SUBMARINE, CLASS, INSTALL \
             WHERE SUBMARINE.CLASS = CLASS.CLASS \
             AND SUBMARINE.ID = INSTALL.SHIP \
             AND INSTALL.SONAR = \"BQS-04\"",
        )
        .unwrap();
        assert_eq!(r.len(), 4);
        let names: Vec<&str> = r.iter().map(|t| t.get(0).as_str().unwrap()).collect();
        for n in ["Bonefish", "Seadragon", "Snook", "Robert E. Lee"] {
            assert!(names.contains(&n), "missing {n}");
        }
    }
}
