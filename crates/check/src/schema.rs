//! Schema lints: static analysis over a parsed KER schema.
//!
//! Unlike [`intensio_ker::model::KerModel::from_schema`], which stops at
//! the first resolution error, this pass walks the raw AST and reports
//! *every* finding it can:
//!
//! | code | severity | finding |
//! |---|---|---|
//! | IC000 | error | source failed to parse |
//! | IC001 | error | isa/contains hierarchy cycle |
//! | IC002 | error | reference to an undefined type or domain |
//! | IC003 | error | duplicate object type definition |
//! | IC004 | error | duplicate attribute on one type |
//! | IC005 | warning | attribute shadows an inherited attribute |
//! | IC006 | error | type given two supertypes |
//! | IC007 | error | derivation/premise unsatisfiable (empty range) |
//! | IC008 | warning | vacuously true derivation (no clauses) |
//! | IC009 | error | constraint references an unknown attribute |
//! | IC010 | warning | constant not coercible to the attribute's type, or outside its domain |

use crate::diag::{locate, locate_word, Diagnostic, Report, Severity};
use intensio_ker::ast::{
    AttrPath, AttributeDef, ClauseAst, ConsequenceAst, ConstraintAst, DomainBase, DomainSpec,
    KerSchema, RoleDef,
};
use intensio_ker::coerce_value;
use intensio_rules::range::ValueRange;
use intensio_storage::domain::{Bound, DomainConstraint};
use intensio_storage::value::ValueType;
use std::collections::HashMap;

const ORIGIN: &str = "schema";

fn key(s: &str) -> String {
    s.to_ascii_lowercase()
}

/// Resolved-enough view of one domain definition.
struct DomainInfo {
    base: Option<ValueType>,
    constraints: Vec<DomainConstraint>,
}

/// Resolved-enough view of one type: its own attributes (with resolved
/// base types where possible) and its supertype.
#[derive(Default)]
struct TypeInfo {
    name: String,
    attrs: Vec<(String, Option<ValueType>, Vec<DomainConstraint>)>,
    parent: Option<String>,
}

struct SchemaPass<'a> {
    src: &'a str,
    report: Report,
    domains: HashMap<String, DomainInfo>,
    types: HashMap<String, TypeInfo>,
}

/// Parse `src` and run the schema lints; a parse failure is itself the
/// single diagnostic `IC000`.
pub fn check_schema_text(src: &str) -> Report {
    match intensio_ker::parse(src) {
        Ok(schema) => check_schema(&schema, src),
        Err(e) => {
            let mut r = Report::new();
            r.push(Diagnostic::new(
                "IC000",
                Severity::Error,
                ORIGIN,
                format!("schema failed to parse: {e}"),
            ));
            r
        }
    }
}

/// Run the schema lints over an already-parsed schema. `src` is used
/// only to attach spans; pass the original text when available.
pub fn check_schema(schema: &KerSchema, src: &str) -> Report {
    let mut pass = SchemaPass {
        src,
        report: Report::new(),
        domains: HashMap::new(),
        types: HashMap::new(),
    };
    pass.run(schema);
    let mut report = pass.report;
    report.sort();
    report
}

impl<'a> SchemaPass<'a> {
    fn diag(
        &mut self,
        code: &'static str,
        severity: Severity,
        message: String,
        span_token: Option<&str>,
    ) {
        let span =
            span_token.and_then(|t| locate_word(self.src, t).or_else(|| locate(self.src, t)));
        self.report
            .push(Diagnostic::new(code, severity, ORIGIN, message).with_span(span));
    }

    fn run(&mut self, schema: &KerSchema) {
        self.collect_domains(schema);
        self.collect_types(schema);
        self.link_hierarchy(schema);
        self.check_cycles();
        self.check_shadowing(schema);
        self.check_derivations(schema);
        self.check_constraint_rules(schema);
    }

    // ---- collection --------------------------------------------------

    fn collect_domains(&mut self, schema: &KerSchema) {
        for d in schema.domains() {
            let base = match &d.base {
                DomainBase::Standard(t) => Some(*t),
                DomainBase::CharN(_) => Some(ValueType::Str),
                DomainBase::Named(n) => match self.domains.get(&key(n)) {
                    Some(b) => b.base,
                    None => {
                        self.diag(
                            "IC002",
                            Severity::Error,
                            format!("domain {} references undefined domain {n}", d.name),
                            Some(n),
                        );
                        None
                    }
                },
            };
            let mut constraints: Vec<DomainConstraint> = match &d.base {
                DomainBase::Named(n) => self
                    .domains
                    .get(&key(n))
                    .map(|b| b.constraints.clone())
                    .unwrap_or_default(),
                DomainBase::CharN(n) => vec![DomainConstraint::CharLen(*n)],
                DomainBase::Standard(_) => Vec::new(),
            };
            if let Some(spec) = &d.spec {
                constraints.push(spec_to_constraint(spec));
            }
            self.domains
                .insert(key(&d.name), DomainInfo { base, constraints });
        }
    }

    /// Resolve an attribute's declared domain name to a base type. A
    /// name that is neither a domain, `char[n]`, a standard keyword, nor
    /// an object type is an undefined reference (IC002).
    fn attr_base(
        &self,
        owner: &str,
        a: &AttributeDef,
        type_names: &[String],
    ) -> (Option<ValueType>, Vec<DomainConstraint>, Option<Diagnostic>) {
        if let Some(info) = self.domains.get(&key(&a.domain)) {
            return (info.base, info.constraints.clone(), None);
        }
        if let Some(n) = parse_char_n(&a.domain) {
            return (
                Some(ValueType::Str),
                vec![DomainConstraint::CharLen(n)],
                None,
            );
        }
        if let Some(t) = ValueType::from_keyword(&a.domain) {
            return (Some(t), Vec::new(), None);
        }
        if type_names.iter().any(|t| t.eq_ignore_ascii_case(&a.domain)) {
            // Object-valued attribute; its storage type is the target's
            // key domain, which we do not chase here.
            return (None, Vec::new(), None);
        }
        let span = locate_word(self.src, &a.domain).or_else(|| locate_word(self.src, &a.name));
        let d = Diagnostic::new(
            "IC002",
            Severity::Error,
            ORIGIN,
            format!(
                "attribute {owner}.{} has undefined domain or type {}",
                a.name, a.domain
            ),
        )
        .with_span(span);
        (None, Vec::new(), Some(d))
    }

    fn collect_types(&mut self, schema: &KerSchema) {
        // Every name any statement introduces, for object-valued
        // attribute resolution.
        let mut type_names: Vec<String> = Vec::new();
        for ot in schema.object_types() {
            type_names.push(ot.name.clone());
        }
        for c in schema.contains_defs() {
            type_names.extend(c.subtypes.iter().cloned());
        }
        for i in schema.isa_defs() {
            type_names.push(i.subtype.clone());
        }

        for ot in schema.object_types() {
            if self.types.contains_key(&key(&ot.name)) {
                self.diag(
                    "IC003",
                    Severity::Error,
                    format!("duplicate object type definition: {}", ot.name),
                    Some(&ot.name),
                );
                continue;
            }
            let mut info = TypeInfo {
                name: ot.name.clone(),
                ..TypeInfo::default()
            };
            self.add_attrs(&mut info, &ot.attrs, &type_names);
            self.types.insert(key(&ot.name), info);
        }

        // Hierarchy statements may introduce subtypes and supertype-level
        // attributes.
        for c in schema.contains_defs() {
            for sub in &c.subtypes {
                self.ensure_type(sub);
            }
            if !c.attrs.is_empty() {
                if let Some(sup) = self.types.get_mut(&key(&c.supertype)) {
                    let mut info = TypeInfo {
                        name: sup.name.clone(),
                        attrs: std::mem::take(&mut sup.attrs),
                        parent: None,
                    };
                    self.add_attrs(&mut info, &c.attrs, &type_names);
                    let slot = self.types.get_mut(&key(&c.supertype)).expect("present");
                    slot.attrs = info.attrs;
                }
            }
        }
        for i in schema.isa_defs() {
            self.ensure_type(&i.subtype);
        }
    }

    fn add_attrs(&mut self, info: &mut TypeInfo, attrs: &[AttributeDef], type_names: &[String]) {
        for a in attrs {
            if info
                .attrs
                .iter()
                .any(|(n, _, _)| n.eq_ignore_ascii_case(&a.name))
            {
                let owner = info.name.clone();
                self.diag(
                    "IC004",
                    Severity::Error,
                    format!("duplicate attribute {} on type {owner}", a.name),
                    Some(&a.name),
                );
                continue;
            }
            let owner = info.name.clone();
            let (base, constraints, diag) = self.attr_base(&owner, a, type_names);
            if let Some(d) = diag {
                self.report.push(d);
            }
            info.attrs.push((a.name.clone(), base, constraints));
        }
    }

    fn ensure_type(&mut self, name: &str) {
        self.types.entry(key(name)).or_insert_with(|| TypeInfo {
            name: name.to_string(),
            ..TypeInfo::default()
        });
    }

    fn link_hierarchy(&mut self, schema: &KerSchema) {
        let mut edges: Vec<(String, String)> = Vec::new();
        for c in schema.contains_defs() {
            if !self.types.contains_key(&key(&c.supertype)) {
                self.diag(
                    "IC002",
                    Severity::Error,
                    format!("`contains` on undefined type {}", c.supertype),
                    Some(&c.supertype),
                );
                continue;
            }
            for sub in &c.subtypes {
                edges.push((sub.clone(), c.supertype.clone()));
            }
        }
        for i in schema.isa_defs() {
            if !self.types.contains_key(&key(&i.supertype)) {
                self.diag(
                    "IC002",
                    Severity::Error,
                    format!("`isa` on undefined type {}", i.supertype),
                    Some(&i.supertype),
                );
                continue;
            }
            edges.push((i.subtype.clone(), i.supertype.clone()));
        }
        for (child, parent) in edges {
            let slot = self.types.get_mut(&key(&child)).expect("ensured");
            match &slot.parent {
                Some(p) if !p.eq_ignore_ascii_case(&parent) => {
                    let msg = format!("type {child} has two supertypes: {p} and {parent}");
                    self.diag("IC006", Severity::Error, msg, Some(&child));
                }
                _ => slot.parent = Some(parent),
            }
        }
    }

    fn check_cycles(&mut self) {
        let mut reported: Vec<String> = Vec::new();
        // Walk in sorted order: `types` is a HashMap, and letting its
        // iteration order pick the entry point would make the reported
        // cycle (and its span) differ from run to run.
        let mut keys: Vec<String> = self.types.keys().cloned().collect();
        keys.sort_unstable();
        for start in keys {
            if reported.contains(&start) {
                continue;
            }
            let mut seen = vec![start.clone()];
            let mut cur = start.clone();
            while let Some(parent) = self.types.get(&cur).and_then(|t| t.parent.clone()) {
                let pk = key(&parent);
                if let Some(pos) = seen.iter().position(|s| *s == pk) {
                    let cycle: Vec<String> = seen[pos..]
                        .iter()
                        .map(|k| self.types[k].name.clone())
                        .collect();
                    if !cycle.iter().any(|n| reported.contains(&key(n))) {
                        reported.extend(cycle.iter().map(|n| key(n)));
                        let head = cycle[0].clone();
                        let msg = format!("type hierarchy cycle: {} -> {head}", cycle.join(" -> "));
                        self.diag("IC001", Severity::Error, msg, Some(&head));
                    }
                    break;
                }
                seen.push(pk.clone());
                cur = pk;
            }
        }
    }

    // ---- attribute resolution along the hierarchy ---------------------

    /// The attribute's base type on `type_name` or any ancestor, plus
    /// the accumulated domain constraints. `None` when the attribute is
    /// unknown on the whole chain.
    fn lookup_attr(
        &self,
        type_name: &str,
        attr: &str,
    ) -> Option<(Option<ValueType>, Vec<DomainConstraint>)> {
        let mut cur = key(type_name);
        let mut hops = 0;
        while let Some(t) = self.types.get(&cur) {
            if let Some((_, base, cs)) = t
                .attrs
                .iter()
                .find(|(n, _, _)| n.eq_ignore_ascii_case(attr))
            {
                return Some((*base, cs.clone()));
            }
            match &t.parent {
                Some(p) if hops < self.types.len() => {
                    cur = key(p);
                    hops += 1;
                }
                _ => break,
            }
        }
        None
    }

    fn check_shadowing(&mut self, schema: &KerSchema) {
        for ot in schema.object_types() {
            let Some(parent) = self
                .types
                .get(&key(&ot.name))
                .and_then(|t| t.parent.clone())
            else {
                continue;
            };
            for a in &ot.attrs {
                if self.lookup_attr(&parent, &a.name).is_some() {
                    self.diag(
                        "IC005",
                        Severity::Warn,
                        format!(
                            "attribute {} on {} shadows the attribute inherited from {parent}",
                            a.name, ot.name
                        ),
                        Some(&a.name),
                    );
                }
            }
        }
    }

    // ---- derivations and constraint rules -----------------------------

    fn check_derivations(&mut self, schema: &KerSchema) {
        for i in schema.isa_defs() {
            if !self.types.contains_key(&key(&i.supertype)) {
                continue; // already IC002
            }
            if i.derivation.is_empty() {
                self.diag(
                    "IC008",
                    Severity::Warn,
                    format!(
                        "derivation of {} from {} is vacuously true (no clauses): \
                         every instance classifies into it",
                        i.subtype, i.supertype
                    ),
                    Some(&i.subtype),
                );
                continue;
            }
            let clauses: Vec<(&ClauseAst, String)> = i
                .derivation
                .iter()
                .map(|c| (c, i.supertype.clone()))
                .collect();
            self.check_clause_block(&clauses, &format!("derivation of {}", i.subtype));
        }
    }

    fn check_constraint_rules(&mut self, schema: &KerSchema) {
        let mut sites: Vec<(String, Vec<ConstraintAst>)> = Vec::new();
        for ot in schema.object_types() {
            sites.push((ot.name.clone(), ot.constraints.clone()));
        }
        for c in schema.contains_defs() {
            sites.push((c.supertype.clone(), c.constraints.clone()));
        }
        for (owner, constraints) in sites {
            if !self.types.contains_key(&key(&owner)) {
                continue;
            }
            for c in &constraints {
                match c {
                    ConstraintAst::DomainRange { attr, .. } => {
                        if self.lookup_attr(&owner, attr).is_none() {
                            self.diag(
                                "IC009",
                                Severity::Error,
                                format!(
                                    "range constraint on {owner} references unknown attribute {attr}"
                                ),
                                Some(attr),
                            );
                        }
                    }
                    ConstraintAst::Rule {
                        roles,
                        premise,
                        consequence,
                    } => {
                        let mut clauses: Vec<(&ClauseAst, String)> = Vec::new();
                        for cl in premise {
                            if let Some(t) = self.resolve_qualifier(&owner, roles, &cl.attr) {
                                clauses.push((cl, t));
                            }
                        }
                        if let ConsequenceAst::Clause(cl) = consequence {
                            if let Some(t) = self.resolve_qualifier(&owner, roles, &cl.attr) {
                                clauses.push((cl, t));
                            }
                        }
                        if let ConsequenceAst::Isa { type_name, .. } = consequence {
                            if !self.types.contains_key(&key(type_name)) {
                                self.diag(
                                    "IC002",
                                    Severity::Error,
                                    format!(
                                        "rule on {owner} classifies into undefined type {type_name}"
                                    ),
                                    Some(type_name),
                                );
                            }
                        }
                        self.check_clause_block(&clauses, &format!("rule on {owner}"));
                    }
                }
            }
        }
    }

    /// Resolve the type a clause's attribute path refers to: a declared
    /// role variable, a type name used as qualifier, or (bare) the
    /// owning type. Unresolvable qualifiers are skipped silently — the
    /// Appendix B role-comment convention leaves some rules partially
    /// declared.
    fn resolve_qualifier(&self, owner: &str, roles: &[RoleDef], attr: &AttrPath) -> Option<String> {
        match &attr.qualifier {
            None => Some(owner.to_string()),
            Some(q) => {
                if let Some(role) = roles.iter().find(|r| r.var.eq_ignore_ascii_case(q)) {
                    return self
                        .types
                        .contains_key(&key(&role.type_name))
                        .then(|| role.type_name.clone());
                }
                self.types.get(&key(q)).map(|t| t.name.clone())
            }
        }
    }

    /// Shared checks over a block of clauses already resolved to their
    /// owning types: unknown attributes (IC009), non-coercible constants
    /// and domain violations (IC010), and per-attribute unsatisfiability
    /// (IC007).
    fn check_clause_block(&mut self, clauses: &[(&ClauseAst, String)], what: &str) {
        let mut ranges: HashMap<(String, String), ValueRange> = HashMap::new();
        let mut contradicted = false;
        for (cl, type_name) in clauses {
            let Some((base, constraints)) = self.lookup_attr(type_name, &cl.attr.name) else {
                self.diag(
                    "IC009",
                    Severity::Error,
                    format!(
                        "{what} references unknown attribute {} on {type_name}",
                        cl.attr.name
                    ),
                    Some(&cl.attr.name),
                );
                continue;
            };
            let value = match base {
                Some(ty) => match coerce_value(&cl.value, ty) {
                    Some(v) => v,
                    None => {
                        self.diag(
                            "IC010",
                            Severity::Warn,
                            format!(
                                "{what}: constant {} is not coercible to {} ({})",
                                cl.value,
                                cl.attr.name,
                                ty.keyword()
                            ),
                            Some(&cl.attr.name),
                        );
                        continue;
                    }
                },
                None => cl.value.clone(),
            };
            if cl.op == intensio_storage::expr::CmpOp::Eq
                && !constraints.is_empty()
                && !constraints.iter().all(|c| c.admits(&value))
            {
                self.diag(
                    "IC010",
                    Severity::Warn,
                    format!(
                        "{what}: value {} lies outside the declared domain of {}",
                        value, cl.attr.name
                    ),
                    Some(&cl.attr.name),
                );
            }
            let Some(r) = ValueRange::from_cmp(cl.op, value) else {
                continue; // `!=` has no interval form
            };
            let slot = (key(type_name), key(&cl.attr.name));
            let folded = match ranges.get(&slot) {
                None => Some(r),
                Some(prev) => prev.intersect(&r),
            };
            match folded {
                Some(f) => {
                    ranges.insert(slot, f);
                }
                None if !contradicted => {
                    contradicted = true;
                    self.diag(
                        "IC007",
                        Severity::Error,
                        format!(
                            "{what} is unsatisfiable: clauses on {} admit no value",
                            cl.attr.name
                        ),
                        Some(&cl.attr.name),
                    );
                }
                None => {}
            }
        }
    }
}

fn spec_to_constraint(spec: &DomainSpec) -> DomainConstraint {
    match spec {
        DomainSpec::Range {
            lo,
            lo_inclusive,
            hi,
            hi_inclusive,
        } => DomainConstraint::Range {
            lo: lo.clone(),
            lo_bound: if *lo_inclusive {
                Bound::Inclusive
            } else {
                Bound::Exclusive
            },
            hi: hi.clone(),
            hi_bound: if *hi_inclusive {
                Bound::Inclusive
            } else {
                Bound::Exclusive
            },
        },
        DomainSpec::Set(vs) => DomainConstraint::Set(vs.clone()),
    }
}

fn parse_char_n(name: &str) -> Option<usize> {
    let lower = name.to_ascii_lowercase();
    let rest = lower.strip_prefix("char[")?;
    let digits = rest.strip_suffix(']')?;
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"
        object type SUBMARINE
          has key: Id domain: char[7]
          has: ShipType domain: char[4]
          has: Depth domain: integer
        SUBMARINE contains SSBN, SSN
        SSBN isa SUBMARINE with ShipType = "SSBN"
        SSN isa SUBMARINE with ShipType = "SSN"
    "#;

    fn codes(report: &Report) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_schema_is_clean() {
        let r = check_schema_text(BASE);
        assert!(r.diagnostics.is_empty(), "{}", r.render_text());
    }

    #[test]
    fn parse_error_is_ic000() {
        let r = check_schema_text("object type");
        assert_eq!(codes(&r), vec!["IC000"]);
    }

    #[test]
    fn cycle_is_ic001() {
        let src = format!("{BASE}\nSUBMARINE isa SSBN with Depth >= 0\n");
        let r = check_schema_text(&src);
        assert!(codes(&r).contains(&"IC001"), "{}", r.render_text());
        let d = r.diagnostics.iter().find(|d| d.code == "IC001").unwrap();
        assert!(d.span.is_some());
    }

    #[test]
    fn undefined_supertype_is_ic002() {
        let src = format!("{BASE}\nSSGN isa CRUISER with Depth >= 0\n");
        let r = check_schema_text(&src);
        assert!(codes(&r).contains(&"IC002"), "{}", r.render_text());
    }

    #[test]
    fn duplicate_type_and_attribute() {
        let src = r#"
            object type A
              has key: Id domain: integer
              has: Id domain: integer
            object type A
              has key: Id domain: integer
        "#;
        let r = check_schema_text(src);
        assert!(codes(&r).contains(&"IC003"));
        assert!(codes(&r).contains(&"IC004"));
    }

    #[test]
    fn shadowed_attribute_is_ic005() {
        let src = r#"
            object type S
              has key: Id domain: integer
              has: Kind domain: char[4]
            object type T
              has: Kind domain: char[8]
            S contains T
            T isa S with Kind = "T"
        "#;
        let r = check_schema_text(src);
        assert!(codes(&r).contains(&"IC005"), "{}", r.render_text());
    }

    #[test]
    fn two_supertypes_is_ic006() {
        let src = r#"
            object type A
              has key: Id domain: integer
            object type B
              has key: Id domain: integer
            object type C
              has key: Id domain: integer
            C isa A with Id >= 0
            C isa B with Id >= 0
        "#;
        let r = check_schema_text(src);
        assert!(codes(&r).contains(&"IC006"), "{}", r.render_text());
    }

    #[test]
    fn unsatisfiable_derivation_is_ic007() {
        let src = format!("{BASE}\nDEEP isa SUBMARINE with Depth > 100 and Depth < 50\n");
        let r = check_schema_text(&src);
        assert!(codes(&r).contains(&"IC007"), "{}", r.render_text());
    }

    #[test]
    fn unknown_attr_in_derivation_is_ic009() {
        let src = format!("{BASE}\nDEEP isa SUBMARINE with Draft > 100\n");
        let r = check_schema_text(&src);
        assert!(codes(&r).contains(&"IC009"), "{}", r.render_text());
    }

    #[test]
    fn non_coercible_constant_is_ic010() {
        let src = format!("{BASE}\nDEEP isa SUBMARINE with Depth = \"deep\"\n");
        let r = check_schema_text(&src);
        assert!(codes(&r).contains(&"IC010"), "{}", r.render_text());
    }

    #[test]
    fn ship_schema_is_error_free() {
        let r = check_schema_text(intensio_shipdb_src());
        assert!(
            !r.has_errors(),
            "ship schema should carry no errors:\n{}",
            r.render_text()
        );
    }

    fn intensio_shipdb_src() -> &'static str {
        intensio_shipdb::SHIP_SCHEMA_KER
    }
}
