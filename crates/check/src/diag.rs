//! The diagnostics framework: stable lint codes, severities, source
//! spans, and the machine/human renderers shared by every pass.
//!
//! A [`Diagnostic`] carries a stable `IC0xx` code (codes never change
//! meaning once published — CI greps for them), a [`Severity`], the
//! text it was raised against (`origin`: `schema`, `query`, or a rule
//! label like `R3`), an optional [`Span`] into that text, and free-form
//! notes (provenance such as the refuting rule of an empty query).

use std::fmt;

/// How bad a finding is.
///
/// `Error` findings make the `check` CLI exit nonzero and make the
/// serve-side install gate reject a candidate rule set. `Warn` findings
/// fail only under `--deny-warnings`. `Info` findings never fail a run;
/// they surface structure worth knowing (for instance range gaps that
/// weaken backward inference, which are intrinsic to induction from
/// sparse data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only.
    Info,
    /// Suspicious; fatal under `--deny-warnings`.
    Warn,
    /// Definite defect; always fatal.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        })
    }
}

/// A half-open byte region of the checked text, with 1-based line and
/// column of its start for human rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// 1-based line of the first byte.
    pub line: usize,
    /// 1-based column (in bytes) of the first byte within its line.
    pub col: usize,
    /// Length of the region in bytes.
    pub len: usize,
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable lint code, e.g. `IC001`.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// What text the span points into: `schema`, `query`, or a rule
    /// label such as `R3`.
    pub origin: String,
    /// One-line description of the finding.
    pub message: String,
    /// Where in the origin text, when locatable.
    pub span: Option<Span>,
    /// Supporting detail — e.g. the refuting rule, the subsuming rule,
    /// or the computed empty intersection.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A new diagnostic with no span or notes.
    pub fn new(
        code: &'static str,
        severity: Severity,
        origin: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            origin: origin.into(),
            message: message.into(),
            span: None,
            notes: Vec::new(),
        }
    }

    /// Attach a span (builder style).
    pub fn with_span(mut self, span: Option<Span>) -> Diagnostic {
        self.span = span;
        self
    }

    /// Attach a note (builder style).
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} [{}]: {}",
            self.code, self.severity, self.origin, self.message
        )?;
        if let Some(s) = &self.span {
            write!(f, "\n  --> {}:{}:{}", self.origin, s.line, s.col)?;
        }
        for n in &self.notes {
            write!(f, "\n  note: {n}")?;
        }
        Ok(())
    }
}

/// The outcome of one or more passes: an ordered list of findings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// The findings, in pass order until [`Report::sort`].
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Append a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Append every finding of another report.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Sort by severity (errors first), then code, then subject
    /// (origin), then span position, then message and notes.
    ///
    /// The trailing keys make this a *total* order over every field a
    /// renderer prints, so two passes that found the same facts in a
    /// different order (for instance via hash-map iteration) render
    /// byte-identical reports — golden tests and `--deny-warnings` CI
    /// runs depend on that stability.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.code.cmp(b.code))
                .then_with(|| a.origin.cmp(&b.origin))
                .then_with(|| {
                    let pos = |d: &Diagnostic| d.span.as_ref().map(|s| (s.line, s.col, s.len));
                    pos(a).cmp(&pos(b))
                })
                .then_with(|| a.message.cmp(&b.message))
                .then_with(|| a.notes.cmp(&b.notes))
        });
    }

    /// Number of findings at a given severity.
    pub fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// Whether any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Whether the report fails the run: errors always, warnings when
    /// `deny_warnings`.
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.has_errors() || (deny_warnings && self.count(Severity::Warn) > 0)
    }

    /// Human rendering, one block per diagnostic plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "check: {} error(s), {} warning(s), {} info\n",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info),
        ));
        out
    }

    /// Machine rendering: a JSON array of diagnostic objects.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"severity\":{},\"origin\":{},\"message\":{}",
                json_str(d.code),
                json_str(&d.severity.to_string()),
                json_str(&d.origin),
                json_str(&d.message),
            ));
            if let Some(s) = &d.span {
                out.push_str(&format!(
                    ",\"span\":{{\"line\":{},\"col\":{},\"len\":{}}}",
                    s.line, s.col, s.len
                ));
            }
            if !d.notes.is_empty() {
                out.push_str(",\"notes\":[");
                for (j, n) in d.notes.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_str(n));
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push(']');
        out
    }
}

/// Escape a string as a JSON literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Locate the `n`-th (0-based) occurrence of `needle` in `src`,
/// returning its span. Used to point diagnostics at tokens the parsers
/// do not track positions for.
pub fn locate_nth(src: &str, needle: &str, n: usize) -> Option<Span> {
    if needle.is_empty() {
        return None;
    }
    let mut from = 0;
    let mut hit = None;
    for _ in 0..=n {
        let at = src[from..].find(needle)? + from;
        hit = Some(at);
        from = at + needle.len();
    }
    let at = hit?;
    let before = &src[..at];
    let line = before.bytes().filter(|b| *b == b'\n').count() + 1;
    let col = at - before.rfind('\n').map(|p| p + 1).unwrap_or(0) + 1;
    Some(Span {
        line,
        col,
        len: needle.len(),
    })
}

/// Locate the first occurrence of `needle` in `src`.
pub fn locate(src: &str, needle: &str) -> Option<Span> {
    locate_nth(src, needle, 0)
}

/// Locate a whole word: an occurrence not embedded in a larger
/// identifier. Falls back to the first plain occurrence.
pub fn locate_word(src: &str, needle: &str) -> Option<Span> {
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut n = 0;
    loop {
        let span = locate_nth(src, needle, n)?;
        // Recover the byte offset to inspect the neighbours.
        let at = byte_offset(src, &span);
        let left_ok = at == 0 || !is_ident(src.as_bytes()[at - 1]);
        let right = at + needle.len();
        let right_ok = right >= src.len() || !is_ident(src.as_bytes()[right]);
        if left_ok && right_ok {
            return Some(span);
        }
        n += 1;
    }
}

fn byte_offset(src: &str, span: &Span) -> usize {
    let mut offset = 0;
    for (line, seg) in (1..).zip(src.split_inclusive('\n')) {
        if line == span.line {
            return offset + span.col - 1;
        }
        offset += seg.len();
    }
    offset + span.col - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_reports_line_and_col() {
        let src = "alpha\nbeta gamma\ngamma";
        let s = locate(src, "gamma").unwrap();
        assert_eq!((s.line, s.col, s.len), (2, 6, 5));
        let s = locate_nth(src, "gamma", 1).unwrap();
        assert_eq!((s.line, s.col), (3, 1));
        assert!(locate(src, "delta").is_none());
    }

    #[test]
    fn locate_word_skips_substrings() {
        let src = "SSBN_X then SSBN";
        let s = locate_word(src, "SSBN").unwrap();
        assert_eq!((s.line, s.col), (1, 13));
    }

    #[test]
    fn report_fails_and_renders() {
        let mut r = Report::new();
        r.push(Diagnostic::new("IC023", Severity::Warn, "R1", "low support").with_note("N_c = 3"));
        assert!(!r.fails(false));
        assert!(r.fails(true));
        r.push(
            Diagnostic::new("IC001", Severity::Error, "schema", "cycle").with_span(Some(Span {
                line: 2,
                col: 3,
                len: 4,
            })),
        );
        assert!(r.fails(false));
        r.sort();
        assert_eq!(r.diagnostics[0].code, "IC001");
        let text = r.render_text();
        assert!(text.contains("IC001 error [schema]: cycle"));
        assert!(text.contains("--> schema:2:3"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
        let json = r.render_json();
        assert!(json.contains("\"code\":\"IC001\""));
        assert!(json.contains("\"span\":{\"line\":2,\"col\":3,\"len\":4}"));
        assert!(json.contains("\"notes\":[\"N_c = 3\"]"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
