//! Query lints: SQL and QUEL statements checked against the catalog and
//! the induced rule set.
//!
//! | code | severity | finding |
//! |---|---|---|
//! | IC000 | error | query failed to parse |
//! | IC040 | error | unknown relation |
//! | IC041 | error | unknown or ambiguous attribute / range variable |
//! | IC042 | error | type-mismatched comparison |
//! | IC043 | error | contradictory restrictions (condition self-empty) |
//! | IC044 | error | condition provably empty under the induced rules |
//! | IC045 | warning | equality constant outside the attribute's declared domain |
//!
//! **Soundness of IC043/IC044.** Only top-level conjuncts of the form
//! `attr op constant` participate. Dropping the other conjuncts (joins,
//! disjunctions, negations) keeps a *superset* of the answer set, so
//! proving the superset empty proves the query empty. IC044 applies a
//! rule *forward* (the paper's Modus Ponens direction): when the query's
//! restriction on a rule's premise attribute is contained in the premise
//! range, the rule's conclusion holds for **every** answer tuple; if the
//! query also restricts the conclusion attribute to a range disjoint
//! from the rule's conclusion, no tuple can satisfy both — the rule is
//! returned as the refuting provenance.

use crate::diag::{locate_word, Diagnostic, Report, Severity};
use intensio_ker::coerce_value;
use intensio_rules::range::ValueRange;
use intensio_rules::rule::RuleSet;
use intensio_storage::catalog::Database;
use intensio_storage::expr::{AttrRef, CmpOp, Expr};
use intensio_storage::value::Value;
use std::collections::BTreeMap;

/// One resolved `attr op constant` restriction, tagged with the tuple
/// variable (SQL alias or QUEL range variable) it constrains.
struct Cond {
    alias: String,
    relation: String,
    attribute: String,
    op: CmpOp,
    value: Value,
    /// The attribute's declared domain range, when one exists. Query
    /// ranges are clamped by it before forward inference — exactly what
    /// lets `Displacement > 8000` sit inside a `[7250, 30000]` premise.
    domain_range: Option<ValueRange>,
}

/// Check one SQL `SELECT` against the catalog and rules.
pub fn check_sql(sql_text: &str, db: &Database, rules: &RuleSet) -> Report {
    let mut report = Report::new();
    let q = match intensio_sql::parse(sql_text) {
        Ok(q) => q,
        Err(e) => {
            report.push(Diagnostic::new(
                "IC000",
                Severity::Error,
                "query",
                format!("query failed to parse: {e}"),
            ));
            return report;
        }
    };

    // Relations.
    let mut tables: Vec<(String, String)> = Vec::new(); // (alias, relation)
    let mut missing = false;
    for t in &q.from {
        if db.get(&t.name).is_err() {
            missing = true;
            report.push(unknown_relation(sql_text, &t.name));
        } else {
            tables.push((t.alias.clone(), t.name.clone()));
        }
    }
    if missing {
        report.sort();
        return report;
    }

    // Attribute references in the select list, WHERE, GROUP/ORDER BY.
    let mut refs: Vec<&AttrRef> = Vec::new();
    for item in &q.targets {
        match item {
            intensio_sql::SelectItem::Attr { attr, .. } => refs.push(attr),
            intensio_sql::SelectItem::Aggregate { arg: Some(a), .. } => refs.push(a),
            _ => {}
        }
    }
    if let Some(w) = &q.where_clause {
        refs.extend(w.attr_refs());
    }
    refs.extend(q.group_by.iter());
    refs.extend(q.order_by.iter());
    for a in refs {
        if let Err(d) = resolve(sql_text, db, &tables, a) {
            if !report.diagnostics.contains(&d) {
                report.push(d);
            }
        }
    }
    if report.has_errors() {
        report.sort();
        return report;
    }

    // Restrictions from top-level conjuncts.
    let mut conds = Vec::new();
    if let Some(w) = &q.where_clause {
        collect_conds(sql_text, db, &tables, w, &mut conds, &mut report);
    }
    check_conditions(sql_text, db, rules, &conds, &mut report);
    report.sort();
    report
}

/// Check a QUEL script (any number of statements) against the catalog
/// and rules. `range of` declarations accumulate across the script, as
/// in a session.
pub fn check_quel(script: &str, db: &Database, rules: &RuleSet) -> Report {
    let mut report = Report::new();
    let stmts = match intensio_quel::parse_script(script) {
        Ok(s) => s,
        Err(e) => {
            report.push(Diagnostic::new(
                "IC000",
                Severity::Error,
                "query",
                format!("query failed to parse: {e}"),
            ));
            return report;
        }
    };

    let mut tables: Vec<(String, String)> = Vec::new(); // (var, relation)
    for stmt in &stmts {
        match stmt {
            intensio_quel::Statement::Range { var, relation } => {
                if db.get(relation).is_err() {
                    report.push(unknown_relation(script, relation));
                } else {
                    tables.retain(|(v, _)| !v.eq_ignore_ascii_case(var));
                    tables.push((var.clone(), relation.clone()));
                }
            }
            intensio_quel::Statement::Retrieve { targets, qual, .. } => {
                for t in targets {
                    let exprs: Vec<&Expr> = match &t.expr {
                        intensio_quel::ast::TargetExpr::Plain(e) => vec![e],
                        intensio_quel::ast::TargetExpr::Aggregate { arg, .. } => vec![arg],
                    };
                    for e in exprs {
                        for a in e.attr_refs() {
                            if let Err(d) = resolve(script, db, &tables, a) {
                                if !report.diagnostics.contains(&d) {
                                    report.push(d);
                                }
                            }
                        }
                    }
                }
                self_check_qual(script, db, rules, &tables, qual.as_ref(), &mut report);
            }
            intensio_quel::Statement::Delete { qual, .. }
            | intensio_quel::Statement::Replace { qual, .. } => {
                self_check_qual(script, db, rules, &tables, qual.as_ref(), &mut report);
            }
            intensio_quel::Statement::Append { relation, .. } => {
                if db.get(relation).is_err() {
                    report.push(unknown_relation(script, relation));
                }
            }
        }
    }
    report.sort();
    report
}

fn self_check_qual(
    text: &str,
    db: &Database,
    rules: &RuleSet,
    tables: &[(String, String)],
    qual: Option<&Expr>,
    report: &mut Report,
) {
    let Some(qual) = qual else { return };
    for a in qual.attr_refs() {
        if let Err(d) = resolve(text, db, tables, a) {
            if !report.diagnostics.contains(&d) {
                report.push(d);
            }
        }
    }
    if report.has_errors() {
        return;
    }
    let mut conds = Vec::new();
    collect_conds(text, db, tables, qual, &mut conds, report);
    check_conditions(text, db, rules, &conds, report);
}

fn endpoint(v: &Value, b: intensio_storage::domain::Bound) -> intensio_rules::range::Endpoint {
    intensio_rules::range::Endpoint {
        value: v.clone(),
        inclusive: b == intensio_storage::domain::Bound::Inclusive,
    }
}

fn unknown_relation(text: &str, name: &str) -> Diagnostic {
    Diagnostic::new(
        "IC040",
        Severity::Error,
        "query",
        format!("unknown relation {name}"),
    )
    .with_span(locate_word(text, name))
}

/// Resolve an attribute reference against the visible tuple variables.
// The Err is a ready-to-report Diagnostic; the lint path is cold.
#[allow(clippy::result_large_err)]
fn resolve(
    text: &str,
    db: &Database,
    tables: &[(String, String)],
    a: &AttrRef,
) -> Result<(String, String), Diagnostic> {
    let fail = |msg: String| {
        Diagnostic::new("IC041", Severity::Error, "query", msg).with_span(
            locate_word(text, &a.name)
                .or_else(|| a.qualifier.as_deref().and_then(|q| locate_word(text, q))),
        )
    };
    let (alias, relation) = match &a.qualifier {
        Some(q) => tables
            .iter()
            .find(|(alias, _)| alias.eq_ignore_ascii_case(q))
            .cloned()
            .ok_or_else(|| fail(format!("unknown range variable or alias {q}")))?,
        None => {
            let mut hit = None;
            for (alias, rel) in tables {
                let has = db
                    .get(rel)
                    .ok()
                    .map(|r| r.schema().index_of(&a.name).is_some())
                    .unwrap_or(false);
                if has {
                    if hit.is_some() {
                        return Err(fail(format!("ambiguous attribute {}", a.name)));
                    }
                    hit = Some((alias.clone(), rel.clone()));
                }
            }
            hit.ok_or_else(|| fail(format!("unknown attribute {}", a.name)))?
        }
    };
    let rel = db
        .get(&relation)
        .map_err(|e| fail(format!("unknown relation: {e}")))?;
    if rel.schema().index_of(&a.name).is_none() {
        return Err(fail(format!(
            "unknown attribute {} on relation {relation}",
            a.name
        )));
    }
    Ok((alias, relation))
}

/// Extract `attr op constant` conjuncts (either orientation), resolving
/// each side and flagging type mismatches (IC042).
fn collect_conds(
    text: &str,
    db: &Database,
    tables: &[(String, String)],
    expr: &Expr,
    conds: &mut Vec<Cond>,
    report: &mut Report,
) {
    for c in expr.conjuncts() {
        let Expr::Cmp { op, left, right } = c else {
            continue;
        };
        let (attr, op, value) = match (left.as_ref(), right.as_ref()) {
            (Expr::Attr(a), Expr::Const(v)) => (a, *op, v),
            (Expr::Const(v), Expr::Attr(a)) => (a, op.flip(), v),
            _ => continue,
        };
        let Ok((alias, relation)) = resolve(text, db, tables, attr) else {
            continue; // already reported
        };
        let schema_attr = {
            let rel = db.get(&relation).expect("resolved above");
            let idx = rel.schema().index_of(&attr.name).expect("resolved above");
            rel.schema().attr(idx).clone()
        };
        let coerced = match value.value_type() {
            None => continue, // NULL comparisons never participate
            Some(vt) if vt == schema_attr.value_type() => value.clone(),
            Some(_) => match coerce_value(value, schema_attr.value_type()) {
                Some(v) => v,
                None => {
                    report.push(
                        Diagnostic::new(
                            "IC042",
                            Severity::Error,
                            "query",
                            format!(
                                "type mismatch: {}.{} is {} but is compared with {}",
                                relation,
                                schema_attr.name(),
                                schema_attr.value_type().keyword(),
                                value
                            ),
                        )
                        .with_span(locate_word(text, &attr.name)),
                    );
                    continue;
                }
            },
        };
        let domain_range = schema_attr
            .domain()
            .constraints()
            .iter()
            .find_map(|c| match c {
                intensio_storage::domain::DomainConstraint::Range {
                    lo,
                    lo_bound,
                    hi,
                    hi_bound,
                } => Some(ValueRange {
                    lo: Some(endpoint(lo, *lo_bound)),
                    hi: Some(endpoint(hi, *hi_bound)),
                }),
                _ => None,
            });
        let out_of_domain = (op == CmpOp::Eq && !schema_attr.domain().admits(&coerced))
            || match (&domain_range, ValueRange::from_cmp(op, coerced.clone())) {
                (Some(d), Some(r)) => !d.intersects(&r),
                _ => false,
            };
        if out_of_domain {
            report.push(
                Diagnostic::new(
                    "IC045",
                    Severity::Warn,
                    "query",
                    format!(
                        "restriction on {}.{} lies outside its declared domain {}: \
                         no stored value can satisfy it",
                        relation,
                        schema_attr.name(),
                        schema_attr.domain().name(),
                    ),
                )
                .with_span(locate_word(text, &attr.name)),
            );
            continue;
        }
        conds.push(Cond {
            alias,
            relation,
            attribute: schema_attr.name().to_string(),
            op,
            value: coerced,
            domain_range,
        });
    }
}

/// Fold the restrictions per tuple variable and attribute (IC043), then
/// apply the rules forward (IC044).
fn check_conditions(
    text: &str,
    db: &Database,
    rules: &RuleSet,
    conds: &[Cond],
    report: &mut Report,
) {
    let _ = db;
    // (alias, attribute-lowercase) -> (relation, attribute, folded range)
    let mut folded: BTreeMap<(String, String), (String, String, ValueRange)> = BTreeMap::new();
    for c in conds {
        let Some(mut r) = ValueRange::from_cmp(c.op, c.value.clone()) else {
            continue; // `<>` has no interval form
        };
        if let Some(clamp) = &c.domain_range {
            // Nonempty by construction: empty clamps were IC045'd away.
            if let Some(tight) = clamp.intersect(&r) {
                r = tight;
            }
        }
        let slot = (
            c.alias.to_ascii_lowercase(),
            c.attribute.to_ascii_lowercase(),
        );
        match folded.get_mut(&slot) {
            None => {
                folded.insert(slot, (c.relation.clone(), c.attribute.clone(), r));
            }
            Some((_, _, prev)) => match prev.intersect(&r) {
                Some(tight) => *prev = tight,
                None => {
                    report.push(
                        Diagnostic::new(
                            "IC043",
                            Severity::Error,
                            "query",
                            format!(
                                "contradictory restrictions on {}.{}: the condition admits \
                                 no value and the answer is provably empty",
                                c.relation, c.attribute
                            ),
                        )
                        .with_span(locate_word(text, &c.attribute)),
                    );
                    return; // further analysis is moot
                }
            },
        }
    }

    // Forward rule application, per tuple variable.
    let mut aliases: Vec<&str> = folded.keys().map(|(a, _)| a.as_str()).collect();
    aliases.dedup();
    for alias in aliases {
        let range_of = |object: &str, attribute: &str| -> Option<&ValueRange> {
            folded
                .get(&(alias.to_string(), attribute.to_ascii_lowercase()))
                .filter(|(rel, _, _)| rel.eq_ignore_ascii_case(object))
                .map(|(_, _, r)| r)
        };
        for rule in rules.iter() {
            // Forward-applicable: every premise clause's range contains
            // the query's restriction on that attribute.
            let applicable = !rule.lhs.is_empty()
                && rule.lhs.iter().all(|cl| {
                    range_of(&cl.attr.object, &cl.attr.attribute)
                        .map(|qr| cl.range.subsumes(qr))
                        .unwrap_or(false)
                });
            if !applicable {
                continue;
            }
            let Some(qr) = range_of(&rule.rhs.attr.object, &rule.rhs.attr.attribute) else {
                continue;
            };
            if qr.intersects(&rule.rhs.range) {
                continue;
            }
            report.push(
                Diagnostic::new(
                    "IC044",
                    Severity::Error,
                    "query",
                    format!(
                        "condition is provably empty: R{} concludes {} {} for every \
                         tuple the condition admits, but the query requires {} {}",
                        rule.id, rule.rhs.attr, rule.rhs.range, rule.rhs.attr, qr
                    ),
                )
                .with_span(locate_word(text, &rule.rhs.attr.attribute))
                .with_note(format!("refuted by {rule}")),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intensio_rules::rule::{AttrId, Clause, Rule};
    use intensio_storage::domain::Domain;
    use intensio_storage::relation::Relation;
    use intensio_storage::schema::{Attribute, Schema};
    use intensio_storage::tuple;
    use intensio_storage::value::ValueType;

    fn db() -> Database {
        let mut db = Database::new();
        let schema = Schema::new(vec![
            Attribute::key("Class", Domain::char_n(4)),
            Attribute::new("Type", Domain::char_n(4)),
            Attribute::new(
                "Displacement",
                Domain::int_range("DISPLACEMENT", 2000, 30000),
            ),
        ])
        .unwrap();
        let mut class = Relation::new("CLASS", schema);
        class.insert(tuple!["0101", "SSBN", 8250]).unwrap();
        class.insert(tuple!["0201", "SSN", 4640]).unwrap();
        db.create(class).unwrap();
        db
    }

    fn rules() -> RuleSet {
        RuleSet::from_rules([Rule::new(
            0,
            vec![Clause::between(
                AttrId::new("CLASS", "Displacement"),
                7250,
                30000,
            )],
            Clause::equals(AttrId::new("CLASS", "Type"), "SSBN"),
        )
        .with_subtype("SSBN")
        .with_support(4)])
    }

    fn codes(r: &Report) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_query_is_clean() {
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE Displacement > 8000",
            &db(),
            &rules(),
        );
        assert!(r.diagnostics.is_empty(), "{}", r.render_text());
    }

    #[test]
    fn unknown_relation_is_ic040() {
        let r = check_sql("SELECT X FROM NOPE", &db(), &rules());
        assert_eq!(codes(&r), vec!["IC040"]);
    }

    #[test]
    fn unknown_attribute_is_ic041() {
        let r = check_sql("SELECT Tonnage FROM CLASS", &db(), &rules());
        assert_eq!(codes(&r), vec!["IC041"]);
        let r = check_sql("SELECT z.Class FROM CLASS", &db(), &rules());
        assert_eq!(codes(&r), vec!["IC041"], "unknown alias");
    }

    #[test]
    fn type_mismatch_is_ic042() {
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE Displacement = \"heavy\"",
            &db(),
            &rules(),
        );
        assert!(codes(&r).contains(&"IC042"), "{}", r.render_text());
    }

    #[test]
    fn numeric_string_coerces_without_ic042() {
        let r = check_sql("SELECT Type FROM CLASS WHERE Class = 101", &db(), &rules());
        assert!(
            !codes(&r).contains(&"IC042"),
            "ints coerce to char classes: {}",
            r.render_text()
        );
    }

    #[test]
    fn contradictory_restrictions_are_ic043() {
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE Displacement > 9000 AND Displacement < 8000",
            &db(),
            &rules(),
        );
        assert!(codes(&r).contains(&"IC043"), "{}", r.render_text());
    }

    #[test]
    fn rule_refuted_condition_is_ic044_with_provenance() {
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE Displacement > 8000 AND Type = \"SSN\"",
            &db(),
            &rules(),
        );
        assert!(codes(&r).contains(&"IC044"), "{}", r.render_text());
        let d = r.diagnostics.iter().find(|d| d.code == "IC044").unwrap();
        assert!(
            d.notes.iter().any(|n| n.contains("R1")),
            "refuting rule cited: {:?}",
            d.notes
        );
    }

    #[test]
    fn partial_premise_coverage_is_not_refuted() {
        // Query range [2500, ...) is NOT contained in the premise
        // [7250, 30000]; the rule does not apply forward.
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE Displacement > 2500 AND Type = \"SSN\"",
            &db(),
            &rules(),
        );
        assert!(!codes(&r).contains(&"IC044"), "{}", r.render_text());
    }

    #[test]
    fn out_of_domain_equality_is_ic045() {
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE Displacement = 50000",
            &db(),
            &rules(),
        );
        assert!(codes(&r).contains(&"IC045"), "{}", r.render_text());
        assert!(!r.has_errors());
    }

    #[test]
    fn quel_checks_mirror_sql() {
        let db = db();
        let rs = rules();
        let r = check_quel(
            "range of c is CLASS\nretrieve (c.Class) where c.Tonnage > 5",
            &db,
            &rs,
        );
        assert!(codes(&r).contains(&"IC041"), "{}", r.render_text());
        let r = check_quel(
            "range of c is CLASS\nretrieve (c.Class) where c.Displacement > 8000 and c.Type = \"SSN\"",
            &db,
            &rs,
        );
        assert!(codes(&r).contains(&"IC044"), "{}", r.render_text());
        let r = check_quel("range of c is NOPE", &db, &rs);
        assert!(codes(&r).contains(&"IC040"), "{}", r.render_text());
    }

    #[test]
    fn null_and_ne_do_not_participate() {
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE Displacement <> 8000 AND Displacement <> 9000",
            &db(),
            &rules(),
        );
        assert!(r.diagnostics.is_empty(), "{}", r.render_text());
        let _ = ValueType::Int;
    }
}
