//! Query lints: SQL and QUEL statements checked against the catalog and
//! the induced rule set.
//!
//! | code | severity | finding |
//! |---|---|---|
//! | IC000 | error | query failed to parse |
//! | IC040 | error | unknown relation |
//! | IC041 | error | unknown or ambiguous attribute / range variable |
//! | IC042 | error | type-mismatched comparison |
//! | IC043 | error | contradictory restrictions (condition self-empty) |
//! | IC044 | error | condition provably empty under the induced rules |
//! | IC045 | warning | restriction vacuously false (or true) against the declared domain |
//!
//! **Soundness of IC043/IC044.** The condition is split into a bounded
//! disjunctive normal form; within each disjunct only conjuncts of the
//! form `attr op constant` participate. Dropping the other conjuncts
//! (joins, negations, arithmetic) keeps a *superset* of the disjunct's
//! answer set, and a disjunction is empty iff **all** its disjuncts
//! are, so proving every abstract disjunct empty proves the query
//! empty. Per disjunct the restrictions seed an
//! [`AbstractState`](intensio_inference::absint::AbstractState) (meet
//! of the declared domain and the query ranges, every other attribute
//! of the relation at its domain value) and the rule set is applied
//! forward to **saturation** — the paper's Modus Ponens direction,
//! chained: when the state's value on every premise attribute is
//! contained in the premise range, the conclusion holds for every
//! admitted tuple and is met into the state, possibly enabling further
//! rules. Each meet only removes tuples the rules prove impossible, so
//! a ⊥ state is a sound emptiness proof; the fired rules are returned
//! as the derivation chain.

use crate::diag::{locate_word, Diagnostic, Report, Severity};
use intensio_inference::absint::{saturate, AbstractState, AbstractValue};
use intensio_ker::coerce_value;
use intensio_rules::range::ValueRange;
use intensio_rules::rule::RuleSet;
use intensio_storage::catalog::Database;
use intensio_storage::expr::{AttrRef, CmpOp, Expr};
use intensio_storage::value::Value;
use std::collections::BTreeMap;

/// Disjunct cap for the DNF split. A condition that expands past this
/// is analyzed as an opaque (unconstrained) leaf instead — sound, just
/// imprecise.
const MAX_DISJUNCTS: usize = 16;

/// One resolved `attr op constant` restriction, tagged with the tuple
/// variable (SQL alias or QUEL range variable) it constrains.
struct Cond {
    alias: String,
    relation: String,
    attribute: String,
    op: CmpOp,
    value: Value,
    /// The attribute's declared domain as an abstract value (interval
    /// and/or finite set). Query ranges are clamped by it before
    /// forward inference — exactly what lets `Displacement > 8000` sit
    /// inside a `[7250, 30000]` premise.
    domain: AbstractValue,
}

/// Check one SQL `SELECT` against the catalog and rules.
pub fn check_sql(sql_text: &str, db: &Database, rules: &RuleSet) -> Report {
    let mut report = Report::new();
    let q = match intensio_sql::parse(sql_text) {
        Ok(q) => q,
        Err(e) => {
            report.push(Diagnostic::new(
                "IC000",
                Severity::Error,
                "query",
                format!("query failed to parse: {e}"),
            ));
            return report;
        }
    };

    // Relations.
    let mut tables: Vec<(String, String)> = Vec::new(); // (alias, relation)
    let mut missing = false;
    for t in &q.from {
        if db.get(&t.name).is_err() {
            missing = true;
            report.push(unknown_relation(sql_text, &t.name));
        } else {
            tables.push((t.alias.clone(), t.name.clone()));
        }
    }
    if missing {
        report.sort();
        return report;
    }

    // Attribute references in the select list, WHERE, GROUP/ORDER BY.
    let mut refs: Vec<&AttrRef> = Vec::new();
    for item in &q.targets {
        match item {
            intensio_sql::SelectItem::Attr { attr, .. } => refs.push(attr),
            intensio_sql::SelectItem::Aggregate { arg: Some(a), .. } => refs.push(a),
            _ => {}
        }
    }
    if let Some(w) = &q.where_clause {
        refs.extend(w.attr_refs());
    }
    refs.extend(q.group_by.iter());
    refs.extend(q.order_by.iter());
    for a in refs {
        if let Err(d) = resolve(sql_text, db, &tables, a) {
            if !report.diagnostics.contains(&d) {
                report.push(d);
            }
        }
    }
    if report.has_errors() {
        report.sort();
        return report;
    }

    if let Some(w) = &q.where_clause {
        check_qual(sql_text, db, rules, &tables, w, &mut report);
    }
    report.sort();
    report
}

/// Check a QUEL script (any number of statements) against the catalog
/// and rules. `range of` declarations accumulate across the script, as
/// in a session.
pub fn check_quel(script: &str, db: &Database, rules: &RuleSet) -> Report {
    let mut report = Report::new();
    let stmts = match intensio_quel::parse_script(script) {
        Ok(s) => s,
        Err(e) => {
            report.push(Diagnostic::new(
                "IC000",
                Severity::Error,
                "query",
                format!("query failed to parse: {e}"),
            ));
            return report;
        }
    };

    let mut tables: Vec<(String, String)> = Vec::new(); // (var, relation)
    for stmt in &stmts {
        match stmt {
            intensio_quel::Statement::Range { var, relation } => {
                if db.get(relation).is_err() {
                    report.push(unknown_relation(script, relation));
                } else {
                    tables.retain(|(v, _)| !v.eq_ignore_ascii_case(var));
                    tables.push((var.clone(), relation.clone()));
                }
            }
            intensio_quel::Statement::Retrieve { targets, qual, .. } => {
                for t in targets {
                    let exprs: Vec<&Expr> = match &t.expr {
                        intensio_quel::ast::TargetExpr::Plain(e) => vec![e],
                        intensio_quel::ast::TargetExpr::Aggregate { arg, .. } => vec![arg],
                    };
                    for e in exprs {
                        for a in e.attr_refs() {
                            if let Err(d) = resolve(script, db, &tables, a) {
                                if !report.diagnostics.contains(&d) {
                                    report.push(d);
                                }
                            }
                        }
                    }
                }
                self_check_qual(script, db, rules, &tables, qual.as_ref(), &mut report);
            }
            intensio_quel::Statement::Delete { qual, .. }
            | intensio_quel::Statement::Replace { qual, .. } => {
                self_check_qual(script, db, rules, &tables, qual.as_ref(), &mut report);
            }
            intensio_quel::Statement::Append { relation, .. } => {
                if db.get(relation).is_err() {
                    report.push(unknown_relation(script, relation));
                }
            }
        }
    }
    report.sort();
    report
}

fn self_check_qual(
    text: &str,
    db: &Database,
    rules: &RuleSet,
    tables: &[(String, String)],
    qual: Option<&Expr>,
    report: &mut Report,
) {
    let Some(qual) = qual else { return };
    for a in qual.attr_refs() {
        if let Err(d) = resolve(text, db, tables, a) {
            if !report.diagnostics.contains(&d) {
                report.push(d);
            }
        }
    }
    if report.has_errors() {
        return;
    }
    check_qual(text, db, rules, tables, qual, report);
}

fn unknown_relation(text: &str, name: &str) -> Diagnostic {
    Diagnostic::new(
        "IC040",
        Severity::Error,
        "query",
        format!("unknown relation {name}"),
    )
    .with_span(locate_word(text, name))
}

/// Resolve an attribute reference against the visible tuple variables.
// The Err is a ready-to-report Diagnostic; the lint path is cold.
#[allow(clippy::result_large_err)]
fn resolve(
    text: &str,
    db: &Database,
    tables: &[(String, String)],
    a: &AttrRef,
) -> Result<(String, String), Diagnostic> {
    let fail = |msg: String| {
        Diagnostic::new("IC041", Severity::Error, "query", msg).with_span(
            locate_word(text, &a.name)
                .or_else(|| a.qualifier.as_deref().and_then(|q| locate_word(text, q))),
        )
    };
    let (alias, relation) = match &a.qualifier {
        Some(q) => tables
            .iter()
            .find(|(alias, _)| alias.eq_ignore_ascii_case(q))
            .cloned()
            .ok_or_else(|| fail(format!("unknown range variable or alias {q}")))?,
        None => {
            let mut hit = None;
            for (alias, rel) in tables {
                let has = db
                    .get(rel)
                    .ok()
                    .map(|r| r.schema().index_of(&a.name).is_some())
                    .unwrap_or(false);
                if has {
                    if hit.is_some() {
                        return Err(fail(format!("ambiguous attribute {}", a.name)));
                    }
                    hit = Some((alias.clone(), rel.clone()));
                }
            }
            hit.ok_or_else(|| fail(format!("unknown attribute {}", a.name)))?
        }
    };
    let rel = db
        .get(&relation)
        .map_err(|e| fail(format!("unknown relation: {e}")))?;
    if rel.schema().index_of(&a.name).is_none() {
        return Err(fail(format!(
            "unknown attribute {} on relation {relation}",
            a.name
        )));
    }
    Ok((alias, relation))
}

/// Push a diagnostic unless an identical one is already present — DNF
/// disjuncts can share leaves, and a shared leaf's finding must render
/// once.
fn push_once(report: &mut Report, d: Diagnostic) {
    if !report.diagnostics.contains(&d) {
        report.push(d);
    }
}

/// Bounded disjunctive normal form: each inner vec is one disjunct's
/// leaf conjuncts. `And` distributes over `Or`; when the expansion
/// would exceed [`MAX_DISJUNCTS`], the subtree collapses to a single
/// opaque leaf (non-`Cmp`, so it constrains nothing — a superset).
fn dnf(expr: &Expr) -> Vec<Vec<&Expr>> {
    match expr {
        Expr::And(a, b) => {
            let l = dnf(a);
            let r = dnf(b);
            if l.len() * r.len() > MAX_DISJUNCTS {
                return vec![vec![expr]];
            }
            let mut out = Vec::with_capacity(l.len() * r.len());
            for x in &l {
                for y in &r {
                    let mut d = x.clone();
                    d.extend(y.iter().copied());
                    out.push(d);
                }
            }
            out
        }
        Expr::Or(a, b) => {
            let mut l = dnf(a);
            let r = dnf(b);
            if l.len() + r.len() > MAX_DISJUNCTS {
                return vec![vec![expr]];
            }
            l.extend(r);
            l
        }
        other => vec![vec![other]],
    }
}

/// Extract the `attr op constant` restriction of one leaf (either
/// orientation), resolving the attribute, flagging type mismatches
/// (IC042) and domain-vacuous restrictions (IC045).
fn leaf_cond(
    text: &str,
    db: &Database,
    tables: &[(String, String)],
    leaf: &Expr,
    report: &mut Report,
) -> Option<Cond> {
    let Expr::Cmp { op, left, right } = leaf else {
        return None;
    };
    let (attr, op, value) = match (left.as_ref(), right.as_ref()) {
        (Expr::Attr(a), Expr::Const(v)) => (a, *op, v),
        (Expr::Const(v), Expr::Attr(a)) => (a, op.flip(), v),
        _ => return None,
    };
    let Ok((alias, relation)) = resolve(text, db, tables, attr) else {
        return None; // already reported
    };
    let schema_attr = {
        let rel = db.get(&relation).expect("resolved above");
        let idx = rel.schema().index_of(&attr.name).expect("resolved above");
        rel.schema().attr(idx).clone()
    };
    let coerced = match value.value_type() {
        None => return None, // NULL comparisons never participate
        Some(vt) if vt == schema_attr.value_type() => value.clone(),
        Some(_) => match coerce_value(value, schema_attr.value_type()) {
            Some(v) => v,
            None => {
                push_once(
                    report,
                    Diagnostic::new(
                        "IC042",
                        Severity::Error,
                        "query",
                        format!(
                            "type mismatch: {}.{} is {} but is compared with {}",
                            relation,
                            schema_attr.name(),
                            schema_attr.value_type().keyword(),
                            value
                        ),
                    )
                    .with_span(locate_word(text, &attr.name)),
                );
                return None;
            }
        },
    };
    let domain = AbstractValue::from_domain(schema_attr.domain());
    let query_range = ValueRange::from_cmp(op, coerced.clone());
    let vacuously_false = (op == CmpOp::Eq && !schema_attr.domain().admits(&coerced))
        || query_range
            .as_ref()
            .map(|r| domain.meet(&AbstractValue::Range(r.clone())).is_bottom())
            .unwrap_or(false);
    if vacuously_false {
        push_once(
            report,
            Diagnostic::new(
                "IC045",
                Severity::Warn,
                "query",
                format!(
                    "restriction on {}.{} lies outside its declared domain {}: \
                     no stored value can satisfy it",
                    relation,
                    schema_attr.name(),
                    schema_attr.domain().name(),
                ),
            )
            .with_span(locate_word(text, &attr.name)),
        );
        return None;
    }
    // The mirror image: the comparison excludes nothing the domain
    // admits — `Displacement < 50000` against `range [2000..30000]`.
    let vacuously_true = query_range
        .as_ref()
        .map(|r| {
            (r.lo.is_some() || r.hi.is_some())
                && !matches!(domain, AbstractValue::Top)
                && domain.within(r)
        })
        .unwrap_or(false);
    if vacuously_true {
        push_once(
            report,
            Diagnostic::new(
                "IC045",
                Severity::Warn,
                "query",
                format!(
                    "restriction on {}.{} is vacuously true: every value of its \
                     declared domain {} satisfies {} {} {}",
                    relation,
                    schema_attr.name(),
                    schema_attr.domain().name(),
                    schema_attr.name(),
                    op,
                    coerced,
                ),
            )
            .with_span(locate_word(text, &attr.name)),
        );
        // A no-op restriction still participates (it is satisfiable).
    }
    Some(Cond {
        alias,
        relation,
        attribute: schema_attr.name().to_string(),
        op,
        value: coerced,
        domain,
    })
}

/// How one disjunct was proven empty.
enum EmptyProof {
    /// The query's own restrictions on one attribute contradict each
    /// other (no rules needed).
    Contradiction { relation: String, attribute: String },
    /// Forward saturation of the rule set drove the state to ⊥.
    Refuted {
        /// Productively fired rule ids, in firing order.
        chain: Vec<u32>,
        /// The attribute whose abstract value reached ⊥.
        object: String,
        attribute: String,
        /// Rendering of the pre-saturation constraint on that slot.
        required: String,
    },
}

/// Try to prove one disjunct's restrictions empty. `None` = no proof
/// (the disjunct may well be satisfiable — the analysis is sound, not
/// complete).
fn prove_empty(db: &Database, rules: &RuleSet, conds: &[Cond]) -> Option<EmptyProof> {
    // (alias, attribute-lowercase) -> (relation, attribute, folded range)
    let mut folded: BTreeMap<(String, String), (String, String, ValueRange)> = BTreeMap::new();
    for c in conds {
        let Some(mut r) = ValueRange::from_cmp(c.op, c.value.clone()) else {
            continue; // `<>` has no interval form
        };
        if let Some(clamp) = c.domain.as_range() {
            // Nonempty by construction: empty clamps were IC045'd away.
            if let Some(tight) = clamp.intersect(&r) {
                r = tight;
            }
        }
        let slot = (
            c.alias.to_ascii_lowercase(),
            c.attribute.to_ascii_lowercase(),
        );
        match folded.get_mut(&slot) {
            None => {
                folded.insert(slot, (c.relation.clone(), c.attribute.clone(), r));
            }
            Some((rel, attr, prev)) => match prev.intersect(&r) {
                Some(tight) => *prev = tight,
                None => {
                    return Some(EmptyProof::Contradiction {
                        relation: rel.clone(),
                        attribute: attr.clone(),
                    });
                }
            },
        }
    }

    // Forward saturation, one abstract state per tuple variable.
    let mut aliases: Vec<&str> = folded.keys().map(|(a, _)| a.as_str()).collect();
    aliases.dedup();
    for alias in aliases {
        let mut state = AbstractState::new();
        let mut relation = None;
        // Every attribute of the alias's relation starts at its domain
        // value: rules whose premises the schema alone satisfies apply
        // to every tuple, enabling cross-attribute propagation.
        for ((a, _), (rel, _, _)) in &folded {
            if a == alias {
                relation = Some(rel.clone());
                break;
            }
        }
        let relation = relation.expect("alias came from folded");
        if let Ok(rel) = db.get(&relation) {
            for sa in rel.schema().attributes() {
                let dv = AbstractValue::from_domain(sa.domain());
                if !matches!(dv, AbstractValue::Top) {
                    state.constrain(&relation, sa.name(), &dv);
                }
            }
        }
        for ((a, _), (rel, attr, r)) in &folded {
            if a != alias {
                continue;
            }
            state.constrain(rel, attr, &AbstractValue::Range(r.clone()));
            if state.is_empty() {
                // Query range vs a set-valued domain — a contradiction
                // the interval clamp above could not see.
                return Some(EmptyProof::Contradiction {
                    relation: rel.clone(),
                    attribute: attr.clone(),
                });
            }
        }
        let seeded = state.clone();
        let sat = saturate(rules, &mut state);
        if sat.empty {
            let ((object, attr_lc), _) = state
                .slots()
                .find(|(_, v)| v.is_bottom())
                .expect("an empty state has a bottom slot");
            // Recover the display-cased relation/attribute names and
            // the pre-saturation requirement on the slot.
            let (display_rel, attribute) = folded
                .get(&(alias.to_string(), attr_lc.clone()))
                .map(|(rel, attr, _)| (rel.clone(), attr.clone()))
                .unwrap_or_else(|| (relation.clone(), attr_lc.clone()));
            let required = seeded.value_of(object, attr_lc).to_string();
            return Some(EmptyProof::Refuted {
                chain: sat.fired,
                object: display_rel,
                attribute,
                required,
            });
        }
    }
    None
}

/// Analyze a qualification: split into disjuncts, extract restrictions
/// (IC042/IC045 ride along), and prove emptiness (IC043/IC044). The
/// whole condition is provably empty iff **every** disjunct is.
fn check_qual(
    text: &str,
    db: &Database,
    rules: &RuleSet,
    tables: &[(String, String)],
    qual: &Expr,
    report: &mut Report,
) {
    let disjuncts = dnf(qual);
    let mut proofs = Vec::with_capacity(disjuncts.len());
    for leaves in &disjuncts {
        let conds: Vec<Cond> = leaves
            .iter()
            .filter_map(|leaf| leaf_cond(text, db, tables, leaf, report))
            .collect();
        proofs.push(prove_empty(db, rules, &conds));
    }
    if proofs.iter().any(|p| p.is_none()) {
        return; // at least one disjunct may be satisfiable
    }
    let proofs: Vec<EmptyProof> = proofs.into_iter().flatten().collect();

    if proofs.len() == 1 {
        report_single_proof(text, rules, &proofs[0], report);
        return;
    }

    // Several disjuncts, all provably empty: one summary diagnostic.
    let any_rules = proofs
        .iter()
        .any(|p| matches!(p, EmptyProof::Refuted { .. }));
    let span_attr = proofs
        .iter()
        .map(|p| match p {
            EmptyProof::Refuted { attribute, .. } => attribute.as_str(),
            EmptyProof::Contradiction { attribute, .. } => attribute.as_str(),
        })
        .next();
    let (code, message) = if any_rules {
        (
            "IC044",
            "condition is provably empty: every disjunct is refuted under the \
             induced rules"
                .to_string(),
        )
    } else {
        (
            "IC043",
            "contradictory restrictions: every disjunct of the condition admits \
             no value and the answer is provably empty"
                .to_string(),
        )
    };
    let mut d = Diagnostic::new(code, Severity::Error, "query", message)
        .with_span(span_attr.and_then(|a| locate_word(text, a)));
    for (i, p) in proofs.iter().enumerate() {
        d = d.with_note(match p {
            EmptyProof::Contradiction {
                relation,
                attribute,
            } => format!(
                "disjunct {}: contradictory restrictions on {relation}.{attribute}",
                i + 1
            ),
            EmptyProof::Refuted {
                chain,
                object,
                attribute,
                ..
            } => format!(
                "disjunct {}: {}.{attribute} refuted by {}",
                i + 1,
                object,
                chain_label(rules, chain),
            ),
        });
    }
    report.push(d);
}

/// `R1 -> R2 -> R4` for a derivation chain.
fn chain_label(rules: &RuleSet, chain: &[u32]) -> String {
    let _ = rules;
    chain
        .iter()
        .map(|id| format!("R{id}"))
        .collect::<Vec<_>>()
        .join(" -> ")
}

fn report_single_proof(text: &str, rules: &RuleSet, proof: &EmptyProof, report: &mut Report) {
    match proof {
        EmptyProof::Contradiction {
            relation,
            attribute,
        } => {
            report.push(
                Diagnostic::new(
                    "IC043",
                    Severity::Error,
                    "query",
                    format!(
                        "contradictory restrictions on {relation}.{attribute}: the condition \
                         admits no value and the answer is provably empty"
                    ),
                )
                .with_span(locate_word(text, attribute)),
            );
        }
        EmptyProof::Refuted {
            chain,
            object,
            attribute,
            required,
        } => {
            let last = chain.last().and_then(|id| rules.get(*id));
            let mut d = match (chain.len(), last) {
                (1, Some(rule)) => Diagnostic::new(
                    "IC044",
                    Severity::Error,
                    "query",
                    format!(
                        "condition is provably empty: R{} concludes {} {} for every \
                         tuple the condition admits, but the query requires {} {}",
                        rule.id, rule.rhs.attr, rule.rhs.range, rule.rhs.attr, required
                    ),
                ),
                (_, Some(rule)) => Diagnostic::new(
                    "IC044",
                    Severity::Error,
                    "query",
                    format!(
                        "condition is provably empty under rule chaining: {} concludes \
                         {} {} for every tuple the condition admits, but the \
                         condition requires {}.{} {}",
                        chain_label(rules, chain),
                        rule.rhs.attr,
                        rule.rhs.range,
                        object,
                        attribute,
                        required
                    ),
                ),
                _ => Diagnostic::new(
                    "IC044",
                    Severity::Error,
                    "query",
                    format!(
                        "condition is provably empty: the restriction on {object}.{attribute} \
                         ({required}) admits no value of the declared domain"
                    ),
                ),
            };
            d = d.with_span(locate_word(text, attribute));
            if let Some(rule) = last {
                d = d.with_note(format!("refuted by {rule}"));
            }
            for id in chain.iter().rev().skip(1).rev() {
                if let Some(rule) = rules.get(*id) {
                    d = d.with_note(format!("via {rule}"));
                }
            }
            report.push(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intensio_rules::rule::{AttrId, Clause, Rule};
    use intensio_storage::domain::Domain;
    use intensio_storage::relation::Relation;
    use intensio_storage::schema::{Attribute, Schema};
    use intensio_storage::tuple;
    use intensio_storage::value::ValueType;

    fn db() -> Database {
        let mut db = Database::new();
        let schema = Schema::new(vec![
            Attribute::key("Class", Domain::char_n(4)),
            Attribute::new("Type", Domain::char_n(4)),
            Attribute::new(
                "Displacement",
                Domain::int_range("DISPLACEMENT", 2000, 30000),
            ),
        ])
        .unwrap();
        let mut class = Relation::new("CLASS", schema);
        class.insert(tuple!["0101", "SSBN", 8250]).unwrap();
        class.insert(tuple!["0201", "SSN", 4640]).unwrap();
        db.create(class).unwrap();
        db
    }

    fn rules() -> RuleSet {
        RuleSet::from_rules([Rule::new(
            0,
            vec![Clause::between(
                AttrId::new("CLASS", "Displacement"),
                7250,
                30000,
            )],
            Clause::equals(AttrId::new("CLASS", "Type"), "SSBN"),
        )
        .with_subtype("SSBN")
        .with_support(4)])
    }

    fn codes(r: &Report) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_query_is_clean() {
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE Displacement > 8000",
            &db(),
            &rules(),
        );
        assert!(r.diagnostics.is_empty(), "{}", r.render_text());
    }

    #[test]
    fn unknown_relation_is_ic040() {
        let r = check_sql("SELECT X FROM NOPE", &db(), &rules());
        assert_eq!(codes(&r), vec!["IC040"]);
    }

    #[test]
    fn unknown_attribute_is_ic041() {
        let r = check_sql("SELECT Tonnage FROM CLASS", &db(), &rules());
        assert_eq!(codes(&r), vec!["IC041"]);
        let r = check_sql("SELECT z.Class FROM CLASS", &db(), &rules());
        assert_eq!(codes(&r), vec!["IC041"], "unknown alias");
    }

    #[test]
    fn type_mismatch_is_ic042() {
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE Displacement = \"heavy\"",
            &db(),
            &rules(),
        );
        assert!(codes(&r).contains(&"IC042"), "{}", r.render_text());
    }

    #[test]
    fn numeric_string_coerces_without_ic042() {
        let r = check_sql("SELECT Type FROM CLASS WHERE Class = 101", &db(), &rules());
        assert!(
            !codes(&r).contains(&"IC042"),
            "ints coerce to char classes: {}",
            r.render_text()
        );
    }

    #[test]
    fn contradictory_restrictions_are_ic043() {
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE Displacement > 9000 AND Displacement < 8000",
            &db(),
            &rules(),
        );
        assert!(codes(&r).contains(&"IC043"), "{}", r.render_text());
    }

    #[test]
    fn rule_refuted_condition_is_ic044_with_provenance() {
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE Displacement > 8000 AND Type = \"SSN\"",
            &db(),
            &rules(),
        );
        assert!(codes(&r).contains(&"IC044"), "{}", r.render_text());
        let d = r.diagnostics.iter().find(|d| d.code == "IC044").unwrap();
        assert!(
            d.notes.iter().any(|n| n.contains("R1")),
            "refuting rule cited: {:?}",
            d.notes
        );
    }

    #[test]
    fn partial_premise_coverage_is_not_refuted() {
        // Query range [2500, ...) is NOT contained in the premise
        // [7250, 30000]; the rule does not apply forward.
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE Displacement > 2500 AND Type = \"SSN\"",
            &db(),
            &rules(),
        );
        assert!(!codes(&r).contains(&"IC044"), "{}", r.render_text());
    }

    #[test]
    fn out_of_domain_equality_is_ic045() {
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE Displacement = 50000",
            &db(),
            &rules(),
        );
        assert!(codes(&r).contains(&"IC045"), "{}", r.render_text());
        assert!(!r.has_errors());
    }

    #[test]
    fn out_of_domain_inequality_is_ic045() {
        // `Displacement > 40000` can never hold in `range [2000..30000]`.
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE Displacement > 40000",
            &db(),
            &rules(),
        );
        assert!(codes(&r).contains(&"IC045"), "{}", r.render_text());
        assert!(!r.has_errors());
        // ... and `< 1000` is its mirror image.
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE Displacement < 1000",
            &db(),
            &rules(),
        );
        assert!(codes(&r).contains(&"IC045"), "{}", r.render_text());
    }

    #[test]
    fn vacuously_true_inequality_is_ic045() {
        // Every DISPLACEMENT value satisfies `< 50000`: a no-op filter.
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE Displacement < 50000",
            &db(),
            &rules(),
        );
        let d = r.diagnostics.iter().find(|d| d.code == "IC045").unwrap();
        assert!(d.message.contains("vacuously true"), "{}", d.message);
        assert!(!r.has_errors());
        // An in-domain bound is a real filter, not vacuous.
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE Displacement < 20000",
            &db(),
            &rules(),
        );
        assert!(!codes(&r).contains(&"IC045"), "{}", r.render_text());
    }

    #[test]
    fn chained_rules_prove_emptiness_ic044() {
        // R1: Displacement in [8000, 9000] -> Crew in [100, 120]
        // R2: Crew in [90, 130]            -> Reactors = 1
        // Query: Displacement = 8500 AND Reactors = 2.
        // Neither rule alone refutes the query (it never restricts
        // Crew); chaining R1 then R2 derives Reactors = 1, which
        // contradicts the required Reactors = 2.
        let mut db = Database::new();
        let schema = Schema::new(vec![
            Attribute::key("Class", Domain::char_n(4)),
            Attribute::new(
                "Displacement",
                Domain::int_range("DISPLACEMENT", 2000, 30000),
            ),
            Attribute::new("Crew", Domain::int_range("CREW", 50, 200)),
            Attribute::new("Reactors", Domain::int_range("REACTORS", 1, 4)),
        ])
        .unwrap();
        let mut class = Relation::new("CLASS", schema);
        class.insert(tuple!["0101", 8500, 110, 1]).unwrap();
        db.create(class).unwrap();
        let rules = RuleSet::from_rules([
            Rule::new(
                0,
                vec![Clause::between(
                    AttrId::new("CLASS", "Displacement"),
                    8000,
                    9000,
                )],
                Clause::between(AttrId::new("CLASS", "Crew"), 100, 120),
            )
            .with_support(4),
            Rule::new(
                0,
                vec![Clause::between(AttrId::new("CLASS", "Crew"), 90, 130)],
                Clause::equals(AttrId::new("CLASS", "Reactors"), 1),
            )
            .with_support(4),
        ]);
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE Displacement = 8500 AND Reactors = 2",
            &db,
            &rules,
        );
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == "IC044")
            .unwrap_or_else(|| panic!("chained refutation missed:\n{}", r.render_text()));
        assert!(
            d.message.contains("R1 -> R2"),
            "the derivation chain is cited: {}",
            d.message
        );
        assert!(
            d.notes.iter().any(|n| n.contains("refuted by")),
            "{:?}",
            d.notes
        );
        // Sanity: each rule alone does not refute.
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE Displacement = 8500",
            &db,
            &rules,
        );
        assert!(r.diagnostics.is_empty(), "{}", r.render_text());
    }

    #[test]
    fn disjunction_empty_only_when_all_disjuncts_are() {
        // One empty disjunct + one satisfiable disjunct = satisfiable.
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE (Displacement > 8000 AND Type = \"SSN\") \
             OR Type = \"SSN\"",
            &db(),
            &rules(),
        );
        assert!(
            !codes(&r).contains(&"IC044"),
            "a satisfiable disjunct saves the query: {}",
            r.render_text()
        );
        // Both disjuncts refuted -> IC044 with per-disjunct provenance.
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE (Displacement > 8000 AND Type = \"SSN\") \
             OR (Displacement = 9000 AND Type = \"CVN\")",
            &db(),
            &rules(),
        );
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == "IC044")
            .unwrap_or_else(|| panic!("all-empty disjunction missed:\n{}", r.render_text()));
        assert!(d.message.contains("every disjunct"), "{}", d.message);
        assert_eq!(d.notes.len(), 2, "{:?}", d.notes);
        // Both disjuncts self-contradictory -> IC043.
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE (Displacement > 9000 AND Displacement < 8000) \
             OR (Displacement > 20000 AND Displacement < 10000)",
            &db(),
            &rules(),
        );
        assert!(codes(&r).contains(&"IC043"), "{}", r.render_text());
    }

    #[test]
    fn quel_checks_mirror_sql() {
        let db = db();
        let rs = rules();
        let r = check_quel(
            "range of c is CLASS\nretrieve (c.Class) where c.Tonnage > 5",
            &db,
            &rs,
        );
        assert!(codes(&r).contains(&"IC041"), "{}", r.render_text());
        let r = check_quel(
            "range of c is CLASS\nretrieve (c.Class) where c.Displacement > 8000 and c.Type = \"SSN\"",
            &db,
            &rs,
        );
        assert!(codes(&r).contains(&"IC044"), "{}", r.render_text());
        let r = check_quel("range of c is NOPE", &db, &rs);
        assert!(codes(&r).contains(&"IC040"), "{}", r.render_text());
    }

    #[test]
    fn null_and_ne_do_not_participate() {
        let r = check_sql(
            "SELECT Class FROM CLASS WHERE Displacement <> 8000 AND Displacement <> 9000",
            &db(),
            &rules(),
        );
        assert!(r.diagnostics.is_empty(), "{}", r.render_text());
        let _ = ValueType::Int;
    }
}
