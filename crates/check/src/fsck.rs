//! Offline audit of a serve data directory — `intensio-check fsck`.
//!
//! Recovery ([`intensio_wal::recover`]) is an *acceptor*: it silently
//! skips everything that cannot be replayed and boots from what
//! remains. This pass is the *auditor*: it walks the same artifacts
//! read-only and reports every deviation from the healthy shape, so an
//! operator can tell an ordinary crash footprint from real damage
//! before trusting a node again. Nothing here writes, truncates, or
//! repairs.
//!
//! | code  | severity | finding |
//! |-------|----------|---------|
//! | IC060 | error    | term monotonicity violated: a record above the checkpoint epoch carries a term below the established term — a deposed primary's ghost suffix |
//! | IC061 | error    | corrupt frame: bad checksum, impossible length, or unknown record kind |
//! | IC062 | warn     | torn tail: a segment ends mid-frame (the expected crash-mid-append shape) |
//! | IC063 | error    | epoch contiguity broken: the log skips epochs, or no segment continues the newest checkpoint |
//! | IC064 | info     | duplicate epoch: an unacknowledged append was superseded (last record wins on replay) |
//! | IC065 | warn     | atomic-write debris: leftover `.tmp-*` / `.saving-*` / `.old-*` intermediates |
//! | IC066 | error    | bad checkpoint: unreadable or checksum-failing `MANIFEST`, or a manifest disagreeing with its directory name |
//!
//! The walk mirrors recovery's state machine exactly — same term
//! fencing, same epoch chaining, same duplicate-epoch tolerance — so
//! "fsck reports no errors" and "recovery replays everything present"
//! coincide. Records already covered by the newest valid checkpoint are
//! skipped without comment, including covered records from a superseded
//! term (the footprint of a crash between a rewind checkpoint and its
//! log truncation, which recovery handles).

use crate::diag::{Diagnostic, Report, Severity};
use intensio_wal::audit::{debris, list_checkpoint_dirs, read_manifest, scan_frames, ManifestInfo};
use intensio_wal::record::FrameOutcome;
use intensio_wal::segment::list_segments;
use std::path::Path;

/// Audit `dir` (a serve `--data-dir`) and report every finding. A
/// missing or empty directory is a clean (empty) report — the CLI
/// rejects nonexistent paths before calling this.
pub fn check_data_dir(dir: &Path) -> Report {
    let mut report = Report::new();
    let base = checkpoint_audit(dir, &mut report);
    debris_audit(dir, &mut report);
    log_audit(dir, base, &mut report);
    report.sort();
    report
}

/// Verify every checkpoint directory's manifest and return the one
/// recovery would boot from: the newest (by `(epoch, seq)` in the
/// directory name) whose manifest verifies.
fn checkpoint_audit(dir: &Path, report: &mut Report) -> Option<ManifestInfo> {
    let dirs = match list_checkpoint_dirs(dir) {
        Ok(d) => d,
        Err(e) => {
            report.push(Diagnostic::new(
                "IC066",
                Severity::Error,
                "checkpoints",
                format!("cannot list checkpoint directories: {e}"),
            ));
            return None;
        }
    };
    let mut best: Option<((u64, u64), ManifestInfo)> = None;
    for (path, parsed) in dirs {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("checkpoint")
            .to_string();
        let Some((epoch, seq)) = parsed else {
            report.push(Diagnostic::new(
                "IC066",
                Severity::Error,
                name,
                "checkpoint directory name does not parse as ckpt-<epoch>-<seq>; \
                 recovery will never consider it",
            ));
            continue;
        };
        match read_manifest(&path) {
            Ok(info) if info.epoch != epoch => {
                report.push(Diagnostic::new(
                    "IC066",
                    Severity::Error,
                    name,
                    format!(
                        "manifest pins epoch {} but the directory name claims epoch {epoch}; \
                         recovery rejects the checkpoint",
                        info.epoch
                    ),
                ));
            }
            Ok(info) => {
                if best
                    .as_ref()
                    .map(|(k, _)| *k < (epoch, seq))
                    .unwrap_or(true)
                {
                    best = Some(((epoch, seq), info));
                }
            }
            Err(e) => {
                report.push(
                    Diagnostic::new(
                        "IC066",
                        Severity::Error,
                        name,
                        format!("checkpoint manifest does not verify: {e}"),
                    )
                    .with_note("recovery falls back to the next older checkpoint"),
                );
            }
        }
    }
    best.map(|(_, info)| info)
}

/// Report leftover atomic-write intermediates.
fn debris_audit(dir: &Path, report: &mut Report) {
    let found = match debris(dir) {
        Ok(f) => f,
        Err(e) => {
            report.push(Diagnostic::new(
                "IC065",
                Severity::Warn,
                "fsck",
                format!("cannot scan for debris: {e}"),
            ));
            return;
        }
    };
    for path in found {
        let shown = path.strip_prefix(dir).unwrap_or(&path).display();
        report.push(
            Diagnostic::new(
                "IC065",
                Severity::Warn,
                "fsck",
                format!("atomic-write debris: {shown}"),
            )
            .with_note("a crash left this intermediate behind; recovery ignores it, deleting it reclaims the space"),
        );
    }
}

/// Walk every segment frame by frame, replaying recovery's acceptance
/// state machine and reporting each deviation.
fn log_audit(dir: &Path, base: Option<ManifestInfo>, report: &mut Report) {
    let segments = match list_segments(dir) {
        Ok(s) => s,
        Err(e) => {
            report.push(Diagnostic::new(
                "IC063",
                Severity::Error,
                "wal",
                format!("cannot list segments: {e}"),
            ));
            return;
        }
    };
    let base_epoch = base.map(|b| b.epoch).unwrap_or(0);
    let mut last_epoch = base_epoch;
    let mut last_term = base.map(|b| b.term).unwrap_or(0);
    let mut last_from_log = false;
    // Once the chain breaks (corruption or an epoch gap), recovery
    // discards everything after; chain-level findings past that point
    // would be noise, but frame-level damage is still worth reporting.
    let mut chain_intact = true;

    for (_seq, path) in &segments {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("segment")
            .to_string();
        let buf = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                report.push(Diagnostic::new(
                    "IC061",
                    Severity::Error,
                    name,
                    format!("unreadable segment: {e}"),
                ));
                chain_intact = false;
                continue;
            }
        };
        for (offset, outcome) in scan_frames(&buf) {
            match outcome {
                FrameOutcome::Torn => {
                    let lost = buf.len() as u64 - offset;
                    report.push(
                        Diagnostic::new(
                            "IC062",
                            Severity::Warn,
                            name.clone(),
                            format!("torn tail: frame at byte {offset} is incomplete ({lost} trailing byte(s))"),
                        )
                        .with_note("the expected shape of a crash mid-append; recovery truncates it"),
                    );
                }
                FrameOutcome::Corrupt(why) => {
                    report.push(
                        Diagnostic::new(
                            "IC061",
                            Severity::Error,
                            name.clone(),
                            format!("corrupt frame at byte {offset}: {why}"),
                        )
                        .with_note(
                            "framing is lost from here; recovery discards the rest of the log",
                        ),
                    );
                    chain_intact = false;
                }
                FrameOutcome::Complete(rec, _) => {
                    if !chain_intact {
                        continue;
                    }
                    if rec.term < last_term {
                        if rec.epoch > base_epoch {
                            report.push(
                                Diagnostic::new(
                                    "IC060",
                                    Severity::Error,
                                    name.clone(),
                                    format!(
                                        "term monotonicity violated: {} record at byte {offset} \
                                         (epoch {}) carries term {} below the established term {last_term}",
                                        rec.kind.name(),
                                        rec.epoch,
                                        rec.term
                                    ),
                                )
                                .with_note(
                                    "a deposed primary's ghost suffix — these records were fenced \
                                     off at failover and will never replay",
                                ),
                            );
                        }
                        // Covered stale records (epoch at or below the
                        // checkpoint) are the benign footprint of a
                        // crash between a rewind checkpoint and its log
                        // truncation; either way the record is skipped.
                        continue;
                    }
                    if rec.term > last_term {
                        // A failover fencepost: recovery retracts any
                        // accepted records the new lineage overwrites.
                        if last_epoch >= rec.epoch {
                            last_epoch = rec.epoch.saturating_sub(1).max(base_epoch);
                            last_from_log = last_epoch > base_epoch;
                        }
                        last_term = rec.term;
                    }
                    if rec.epoch == last_epoch && last_from_log {
                        report.push(Diagnostic::new(
                            "IC064",
                            Severity::Info,
                            name.clone(),
                            format!(
                                "duplicate epoch {}: the record at byte {offset} supersedes an \
                                     earlier unacknowledged append (last record wins on replay)",
                                rec.epoch
                            ),
                        ));
                    } else if rec.epoch <= last_epoch {
                        // Covered by the checkpoint; recovery skips it.
                    } else if rec.epoch == last_epoch + 1 {
                        last_epoch = rec.epoch;
                        last_from_log = true;
                    } else {
                        report.push(
                            Diagnostic::new(
                                "IC063",
                                Severity::Error,
                                name.clone(),
                                format!(
                                    "epoch contiguity broken: record at byte {offset} carries epoch {} \
                                     but the replayable chain ends at epoch {last_epoch}",
                                    rec.epoch
                                ),
                            )
                            .with_note(format!(
                                "epoch(s) {}..={} are on no segment this directory holds; \
                                 recovery discards everything from here",
                                last_epoch + 1,
                                rec.epoch - 1
                            )),
                        );
                        chain_intact = false;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intensio_storage::catalog::Database;
    use intensio_wal::record::Record;
    use intensio_wal::segment::{segment_file_name, WAL_SUBDIR};
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("intensio_fsck_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn write_segment(dir: &Path, seq: u64, records: &[Record]) {
        let wal = dir.join(WAL_SUBDIR);
        std::fs::create_dir_all(&wal).unwrap();
        let mut buf = Vec::new();
        for r in records {
            buf.extend_from_slice(&r.encode());
        }
        std::fs::write(wal.join(segment_file_name(seq)), &buf).unwrap();
    }

    fn codes(r: &Report) -> Vec<&str> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn healthy_directory_is_clean() {
        let dir = tmpdir("healthy");
        intensio_wal::checkpoint::write_checkpoint(&dir, &Database::new(), None, 2, 2, 0).unwrap();
        write_segment(
            &dir,
            3,
            &[Record::write(3, 3, "a"), Record::write(4, 4, "b")],
        );
        let r = check_data_dir(&dir);
        assert!(r.diagnostics.is_empty(), "{}", r.render_text());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_clean() {
        let r = check_data_dir(Path::new("/nonexistent/intensio-fsck-test"));
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn torn_tail_is_a_warning_not_an_error() {
        let dir = tmpdir("torn");
        write_segment(&dir, 1, &[Record::write(1, 1, "a")]);
        let torn = Record::write(2, 2, "b").encode();
        let seg = dir.join(WAL_SUBDIR).join(segment_file_name(1));
        let mut buf = std::fs::read(&seg).unwrap();
        buf.extend_from_slice(&torn[..torn.len() - 4]);
        std::fs::write(&seg, &buf).unwrap();

        let r = check_data_dir(&dir);
        assert_eq!(codes(&r), vec!["IC062"], "{}", r.render_text());
        assert!(!r.has_errors(), "a torn tail is an ordinary crash shape");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_frame_is_ic061() {
        let dir = tmpdir("corrupt");
        write_segment(
            &dir,
            1,
            &[Record::write(1, 1, "a"), Record::write(2, 2, "b")],
        );
        let seg = dir.join(WAL_SUBDIR).join(segment_file_name(1));
        let mut buf = std::fs::read(&seg).unwrap();
        let first = Record::write(1, 1, "a").encode().len();
        buf[first + 12] ^= 0xFF;
        std::fs::write(&seg, &buf).unwrap();

        let r = check_data_dir(&dir);
        assert_eq!(codes(&r), vec!["IC061"], "{}", r.render_text());
        assert!(r.has_errors());
        assert!(r.diagnostics[0].message.contains(&format!("byte {first}")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_gap_is_ic063_with_the_missing_range() {
        let dir = tmpdir("gap");
        write_segment(
            &dir,
            1,
            &[Record::write(1, 1, "a"), Record::write(4, 4, "d")],
        );
        let r = check_data_dir(&dir);
        assert_eq!(codes(&r), vec!["IC063"], "{}", r.render_text());
        assert!(r.diagnostics[0].notes[0].contains("2..=3"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gap_above_the_checkpoint_is_ic063() {
        // Checkpoint pins epoch 2 but the only segment starts at epoch
        // 5: the covering records were lost with a deleted segment.
        let dir = tmpdir("coverage");
        intensio_wal::checkpoint::write_checkpoint(&dir, &Database::new(), None, 2, 2, 0).unwrap();
        write_segment(&dir, 4, &[Record::write(5, 5, "e")]);
        let r = check_data_dir(&dir);
        assert_eq!(codes(&r), vec!["IC063"], "{}", r.render_text());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_epoch_is_info_only() {
        let dir = tmpdir("dup");
        write_segment(
            &dir,
            1,
            &[
                Record::write(1, 1, "a"),
                Record::write(2, 2, "unacked"),
                Record::write(2, 2, "acked"),
                Record::write(3, 3, "c"),
            ],
        );
        let r = check_data_dir(&dir);
        assert_eq!(codes(&r), vec!["IC064"], "{}", r.render_text());
        assert!(!r.fails(true), "info never fails, even denying warnings");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn post_failover_retraction_shape_is_clean() {
        // The higher_term_retracts_the_orphaned_suffix recovery shape:
        // term-0 epochs 3-4 are retracted by the term-1 fencepost at
        // epoch 3, then the term-1 chain continues. Recovery replays
        // this without loss, so fsck must stay quiet.
        let dir = tmpdir("retraction");
        write_segment(
            &dir,
            1,
            &[
                Record::write(1, 1, "a"),
                Record::write(2, 2, "b"),
                Record::write(3, 3, "orphan3"),
                Record::write(4, 4, "orphan4"),
                Record::term_bump(1, 3, 2),
                Record::write(4, 3, "kept4").with_term(1),
            ],
        );
        let r = check_data_dir(&dir);
        assert!(r.diagnostics.is_empty(), "{}", r.render_text());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ghost_suffix_below_the_established_term_is_ic060() {
        // A deposed primary appended term-0 records after a term-2
        // fencepost was already on disk: the planted failure shape.
        let dir = tmpdir("ghost");
        write_segment(
            &dir,
            1,
            &[
                Record::write(1, 1, "a").with_term(2),
                Record::write(2, 2, "ghost").with_term(0),
                Record::write(3, 3, "ghost2").with_term(0),
            ],
        );
        let r = check_data_dir(&dir);
        assert_eq!(codes(&r), vec!["IC060", "IC060"], "{}", r.render_text());
        assert!(r.has_errors());
        assert!(r.diagnostics[0].message.contains("term 0"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_suffix_fenced_by_a_rewind_checkpoint_is_ic060() {
        // The stale_term recovery shape: a rewind checkpoint pins term
        // 2, but an old segment still holds the deposed primary's
        // term-0 records at epochs above the checkpoint.
        let dir = tmpdir("stale");
        intensio_wal::checkpoint::write_checkpoint(&dir, &Database::new(), None, 3, 2, 2).unwrap();
        write_segment(
            &dir,
            1,
            &[
                Record::write(4, 4, "orphan4"),
                Record::write(5, 5, "orphan5"),
            ],
        );
        write_segment(&dir, 2, &[Record::write(4, 3, "kept4").with_term(2)]);
        let r = check_data_dir(&dir);
        assert_eq!(codes(&r), vec!["IC060", "IC060"], "{}", r.render_text());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn covered_stale_records_below_the_checkpoint_are_benign() {
        // Crash between a rewind checkpoint and its log truncation:
        // term-0 records at or below the checkpoint epoch remain.
        // Recovery skips them; fsck stays quiet.
        let dir = tmpdir("covered");
        intensio_wal::checkpoint::write_checkpoint(&dir, &Database::new(), None, 3, 2, 2).unwrap();
        write_segment(
            &dir,
            1,
            &[
                Record::write(2, 2, "covered"),
                Record::write(3, 3, "covered"),
            ],
        );
        let r = check_data_dir(&dir);
        assert!(r.diagnostics.is_empty(), "{}", r.render_text());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_manifest_is_ic066() {
        let dir = tmpdir("manifest");
        let ckpt =
            intensio_wal::checkpoint::write_checkpoint(&dir, &Database::new(), None, 2, 1, 0)
                .unwrap();
        let path = ckpt.path.join("MANIFEST");
        let text = std::fs::read_to_string(&path)
            .unwrap()
            .replace("epoch 2", "epoch 9");
        std::fs::write(&path, text).unwrap();
        let r = check_data_dir(&dir);
        assert_eq!(codes(&r), vec!["IC066"], "{}", r.render_text());
        assert!(r.has_errors());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn debris_is_ic065_warn() {
        let dir = tmpdir("debris");
        intensio_wal::checkpoint::write_checkpoint(&dir, &Database::new(), None, 1, 1, 0).unwrap();
        std::fs::create_dir_all(
            dir.join("checkpoints")
                .join("ckpt-0000000000000001-0001.tmp-4242"),
        )
        .unwrap();
        let r = check_data_dir(&dir);
        assert_eq!(codes(&r), vec!["IC065"], "{}", r.render_text());
        assert!(!r.has_errors());
        assert!(r.diagnostics[0].message.contains(".tmp-4242"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn findings_are_ordered_and_deterministic() {
        // One of each severity: errors sort first, then warnings, then
        // info, and two runs render byte-identically.
        let dir = tmpdir("ordered");
        write_segment(
            &dir,
            1,
            &[
                Record::write(1, 1, "a"),
                Record::write(2, 2, "dup"),
                Record::write(2, 2, "dup-wins"),
                Record::write(9, 9, "gap"),
            ],
        );
        std::fs::create_dir_all(dir.join("checkpoints").join("junk.tmp-1")).unwrap();
        let r1 = check_data_dir(&dir);
        let r2 = check_data_dir(&dir);
        assert_eq!(r1.render_text(), r2.render_text());
        assert_eq!(codes(&r1), vec!["IC063", "IC065", "IC064"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
