//! Rule-set lints: static analysis over induced (or hand-written) rule
//! sets.
//!
//! | code | severity | finding |
//! |---|---|---|
//! | IC020 | error | conflicting rules: jointly satisfiable premises, incompatible conclusions |
//! | IC021 | warning | rule subsumed by a wider rule with the same conclusion |
//! | IC022 | info | range gap between premises concluding on the same attribute (weakens backward inference) |
//! | IC023 | warning | support below the configured `N_c` |
//! | IC024 | warning | rule references a relation or attribute missing from the catalog |
//!
//! **Conflicts (IC020).** Two rules conflict when a single tuple could
//! fire both while their conclusions disagree. That requires (a)
//! conclusions on the same attribute that admit no common value (disjoint
//! ranges, or distinct subtype labels), and (b) jointly satisfiable
//! premises. We require the premises to *share at least one attribute*
//! (every shared attribute's ranges overlapping): rules premised on
//! entirely different attributes (`Displacement → SSN` vs
//! `Class → SSBN`) are exactly what pairwise induction produces for
//! every classifier and are consistent on the observed data — flagging
//! them would reject every organically induced rule set.
//!
//! **Gaps (IC022)** are informational: induction from sparse data always
//! leaves gaps between runs (`6955 < Displacement < 7250` belongs to no
//! rule), and a backward query landing in the gap simply gets no
//! intensional answer. The lint surfaces where that will happen.

use crate::diag::{locate, Diagnostic, Report, Severity};
use intensio_rules::range::ValueRange;
use intensio_rules::rule::{Rule, RuleSet};
use intensio_storage::catalog::Database;
use std::cmp::Ordering;

/// Configuration for the rule pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleCheckConfig {
    /// The induction support threshold `N_c`; rules below it draw
    /// IC023. `0` disables the support lint.
    pub min_support: usize,
}

fn origin(r: &Rule) -> String {
    format!("R{}", r.id)
}

/// A diagnostic whose span points into the rule's own rendered text
/// (`R3: if ... then ...`), located at `token`.
fn rule_diag(
    code: &'static str,
    severity: Severity,
    r: &Rule,
    message: String,
    token: &str,
) -> Diagnostic {
    let text = r.to_string();
    Diagnostic::new(code, severity, origin(r), message)
        .with_span(locate(&text, token))
        .with_note(text.clone())
}

/// Run the rule lints. `db` enables the catalog cross-check (IC024).
pub fn check_rules(rules: &RuleSet, db: Option<&Database>, cfg: &RuleCheckConfig) -> Report {
    let mut report = Report::new();
    let all = rules.rules();

    for (i, a) in all.iter().enumerate() {
        for b in all.iter().skip(i + 1) {
            if let Some(d) = conflict(a, b) {
                report.push(d);
            }
            if let Some(d) = subsumption(a, b) {
                report.push(d);
            }
        }
        if cfg.min_support > 0 && a.support < cfg.min_support {
            report.push(rule_diag(
                "IC023",
                Severity::Warn,
                a,
                format!(
                    "support {} is below the configured threshold N_c = {}",
                    a.support, cfg.min_support
                ),
                &format!("R{}", a.id),
            ));
        }
        if let Some(db) = db {
            for c in a.lhs.iter().chain(std::iter::once(&a.rhs)) {
                let known = db
                    .get(&c.attr.object)
                    .ok()
                    .map(|rel| rel.schema().index_of(&c.attr.attribute).is_some());
                let (code_needed, what) = match known {
                    None => (true, format!("unknown relation {}", c.attr.object)),
                    Some(false) => (true, format!("unknown attribute {}", c.attr)),
                    Some(true) => (false, String::new()),
                };
                if code_needed {
                    report.push(rule_diag(
                        "IC024",
                        Severity::Warn,
                        a,
                        format!("rule references {what}, absent from the catalog"),
                        &c.attr.attribute,
                    ));
                    break;
                }
            }
        }
    }

    gaps(all, &mut report);
    report.sort();
    report
}

/// IC020: could one tuple fire both rules while the conclusions
/// disagree?
fn conflict(a: &Rule, b: &Rule) -> Option<Diagnostic> {
    if !a
        .rhs
        .attr
        .matches(&b.rhs.attr.object, &b.rhs.attr.attribute)
    {
        return None;
    }
    let conclusions_clash = match (&a.rhs_subtype, &b.rhs_subtype) {
        (Some(x), Some(y)) if !x.eq_ignore_ascii_case(y) => true,
        _ => !a.rhs.range.intersects(&b.rhs.range),
    };
    if !conclusions_clash {
        return None;
    }
    // Premises must share an attribute, and every shared attribute's
    // ranges must overlap (non-shared attributes are freely satisfiable).
    let mut shared = 0usize;
    for ca in &a.lhs {
        let Some(cb) = b.lhs_clause(&ca.attr.object, &ca.attr.attribute) else {
            continue;
        };
        shared += 1;
        if !ca.range.intersects(&cb.range) {
            return None;
        }
    }
    if shared == 0 {
        return None;
    }
    let overlap = a
        .lhs
        .iter()
        .find_map(|ca| {
            b.lhs_clause(&ca.attr.object, &ca.attr.attribute)
                .and_then(|cb| ca.range.intersect(&cb.range))
                .map(|r| format!("{} {r}", ca.attr))
        })
        .unwrap_or_default();
    Some(
        rule_diag(
            "IC020",
            Severity::Error,
            a,
            format!(
                "conflicts with R{}: premises overlap ({overlap}) but conclusions on {} \
                 admit no common value",
                b.id, a.rhs.attr
            ),
            &a.rhs.attr.attribute,
        )
        .with_note(b.to_string()),
    )
}

/// IC021: `b` is redundant because `a` (or vice versa) is strictly wider
/// with the same conclusion — the predicate [`RuleSet::minimize`] uses.
fn subsumption(a: &Rule, b: &Rule) -> Option<Diagnostic> {
    let (wide, narrow) = if subsumes(a, b) {
        (a, b)
    } else if subsumes(b, a) {
        (b, a)
    } else {
        return None;
    };
    Some(
        rule_diag(
            "IC021",
            Severity::Warn,
            narrow,
            format!(
                "subsumed by the wider rule R{}: every query it answers, R{} answers",
                wide.id, wide.id
            ),
            &format!("R{}", narrow.id),
        )
        .with_note(wide.to_string()),
    )
}

fn subsumes(a: &Rule, b: &Rule) -> bool {
    let same_consequence =
        a.rhs.attr == b.rhs.attr && a.rhs.range == b.rhs.range && a.rhs_subtype == b.rhs_subtype;
    if !same_consequence {
        return false;
    }
    let covers = a.lhs.iter().all(|ca| {
        b.lhs_clause(&ca.attr.object, &ca.attr.attribute)
            .map(|cb| ca.range.subsumes(&cb.range))
            .unwrap_or(false)
    });
    covers && (a.lhs != b.lhs || a.id < b.id)
}

/// IC022: within each family of single-premise rules over the same
/// `(premise attribute, conclusion attribute)`, report the holes between
/// consecutive premise ranges.
fn gaps(all: &[Rule], report: &mut Report) {
    let mut families: Vec<(&Rule, &ValueRange)> = Vec::new();
    let mut seen: Vec<usize> = Vec::new();
    for (i, r) in all.iter().enumerate() {
        if seen.contains(&i) || r.lhs.len() != 1 {
            continue;
        }
        families.clear();
        families.push((r, &r.lhs[0].range));
        for (j, s) in all.iter().enumerate().skip(i + 1) {
            if s.lhs.len() == 1
                && s.lhs[0]
                    .attr
                    .matches(&r.lhs[0].attr.object, &r.lhs[0].attr.attribute)
                && s.rhs
                    .attr
                    .matches(&r.rhs.attr.object, &r.rhs.attr.attribute)
            {
                seen.push(j);
                families.push((s, &s.lhs[0].range));
            }
        }
        if families.len() < 2 {
            continue;
        }
        families.sort_by(|(_, x), (_, y)| cmp_lo(x, y));
        for w in families.windows(2) {
            let ((ra, x), (rb, y)) = (w[0], w[1]);
            if x.intersects(y) || x.merge(y).is_some() {
                continue; // overlapping or adjacent: no hole
            }
            let (Some(hi), Some(lo)) = (&x.hi, &y.lo) else {
                continue;
            };
            report.push(
                rule_diag(
                    "IC022",
                    Severity::Info,
                    ra,
                    format!(
                        "gap between R{} and R{} on {}: values in ({}, {}) match no rule, \
                         so backward inference cannot characterize them",
                        ra.id, rb.id, ra.lhs[0].attr, hi.value, lo.value
                    ),
                    &format!("R{}", ra.id),
                )
                .with_note(rb.to_string()),
            );
        }
    }
}

fn cmp_lo(a: &ValueRange, b: &ValueRange) -> Ordering {
    match (&a.lo, &b.lo) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => x.value.total_cmp(&y.value),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intensio_rules::rule::{AttrId, Clause};

    fn rule(lo: i64, hi: i64, concl: &str) -> Rule {
        Rule::new(
            0,
            vec![Clause::between(AttrId::new("E", "V"), lo, hi)],
            Clause::equals(AttrId::new("G", "Cat"), concl),
        )
        .with_support(5)
    }

    fn codes(r: &Report) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn conflicting_rules_are_ic020() {
        let rs = RuleSet::from_rules([rule(1, 5, "A"), rule(3, 8, "B")]);
        let r = check_rules(&rs, None, &RuleCheckConfig::default());
        assert!(codes(&r).contains(&"IC020"), "{}", r.render_text());
        assert!(r.has_errors());
        let d = r.diagnostics.iter().find(|d| d.code == "IC020").unwrap();
        assert!(d.message.contains("conflicts with R2"));
        assert_eq!(d.notes.len(), 2, "own text + the other rule");
    }

    #[test]
    fn disjoint_premises_do_not_conflict() {
        let rs = RuleSet::from_rules([rule(1, 5, "A"), rule(6, 9, "B")]);
        let r = check_rules(&rs, None, &RuleCheckConfig::default());
        assert!(!codes(&r).contains(&"IC020"), "{}", r.render_text());
    }

    #[test]
    fn different_premise_attributes_do_not_conflict() {
        let a = rule(1, 5, "A");
        let b = Rule::new(
            0,
            vec![Clause::between(AttrId::new("E", "W"), 1, 5)],
            Clause::equals(AttrId::new("G", "Cat"), "B"),
        )
        .with_support(5);
        let rs = RuleSet::from_rules([a, b]);
        let r = check_rules(&rs, None, &RuleCheckConfig::default());
        assert!(!codes(&r).contains(&"IC020"), "{}", r.render_text());
    }

    #[test]
    fn subtype_labels_clash_is_ic020() {
        let mut a = rule(1, 5, "X");
        a.rhs_subtype = Some("SSBN".into());
        let mut b = rule(3, 8, "X");
        b.rhs_subtype = Some("SSN".into());
        let rs = RuleSet::from_rules([a, b]);
        let r = check_rules(&rs, None, &RuleCheckConfig::default());
        assert!(codes(&r).contains(&"IC020"), "{}", r.render_text());
    }

    #[test]
    fn subsumed_rule_is_ic021() {
        let rs = RuleSet::from_rules([rule(0, 100, "A"), rule(10, 20, "A")]);
        let r = check_rules(&rs, None, &RuleCheckConfig::default());
        assert!(codes(&r).contains(&"IC021"), "{}", r.render_text());
        let d = r.diagnostics.iter().find(|d| d.code == "IC021").unwrap();
        assert_eq!(d.origin, "R2", "the narrow rule carries the lint");
    }

    #[test]
    fn gap_is_ic022_info_only() {
        let rs = RuleSet::from_rules([rule(1, 5, "A"), rule(9, 12, "A")]);
        let r = check_rules(&rs, None, &RuleCheckConfig::default());
        assert!(codes(&r).contains(&"IC022"), "{}", r.render_text());
        assert!(!r.fails(true), "info findings never fail the run");
    }

    #[test]
    fn low_support_is_ic023() {
        let rs = RuleSet::from_rules([rule(1, 5, "A").with_support(1)]);
        let r = check_rules(&rs, None, &RuleCheckConfig { min_support: 3 });
        assert!(codes(&r).contains(&"IC023"), "{}", r.render_text());
        let clean = check_rules(&rs, None, &RuleCheckConfig::default());
        assert!(!clean.diagnostics.iter().any(|d| d.code == "IC023"));
    }

    #[test]
    fn unknown_catalog_reference_is_ic024() {
        let db = Database::new();
        let rs = RuleSet::from_rules([rule(1, 5, "A")]);
        let r = check_rules(&rs, Some(&db), &RuleCheckConfig::default());
        assert!(codes(&r).contains(&"IC024"), "{}", r.render_text());
    }
}
