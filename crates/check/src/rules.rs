//! Rule-set lints: static analysis over induced (or hand-written) rule
//! sets.
//!
//! | code | severity | finding |
//! |---|---|---|
//! | IC020 | error | conflicting rules: jointly satisfiable premises, incompatible conclusions |
//! | IC021 | warning | rule subsumed by a wider rule with the same conclusion |
//! | IC022 | info | range gap between premises concluding on the same attribute (weakens backward inference) |
//! | IC023 | warning | support below the configured `N_c` |
//! | IC024 | warning | rule references a relation or attribute missing from the catalog |
//! | IC025 | warning | rule derivable from the rest of the set by chaining (prune candidate) |
//! | IC026 | warning | dead rule: premise unsatisfiable given the schema domains |
//! | IC027 | error | chained conflict: firing the rule enables a derivation that admits no tuple |
//!
//! **Conflicts (IC020).** Two rules conflict when a single tuple could
//! fire both while their conclusions disagree. That requires (a)
//! conclusions on the same attribute that admit no common value (disjoint
//! ranges, or distinct subtype labels), and (b) jointly satisfiable
//! premises. We require the premises to *share at least one attribute*
//! (every shared attribute's ranges overlapping): rules premised on
//! entirely different attributes (`Displacement → SSN` vs
//! `Class → SSBN`) are exactly what pairwise induction produces for
//! every classifier and are consistent on the observed data — flagging
//! them would reject every organically induced rule set.
//!
//! **Gaps (IC022)** are informational: induction from sparse data always
//! leaves gaps between runs (`6955 < Displacement < 7250` belongs to no
//! rule), and a backward query landing in the gap simply gets no
//! intensional answer. The lint surfaces where that will happen.
//!
//! **Saturation lints (IC025–IC027)** reason over the *whole* rule base
//! with the shared abstract-interpretation engine. For each rule the
//! premise seeds an abstract state and the **rest** of the set is
//! applied forward to saturation: if the state ends up inside the
//! rule's own conclusion, the rule is derivable by chaining and a prune
//! candidate (IC025 — a strict superset of IC021's direct subsumption,
//! which is reported there and skipped here); if additionally meeting
//! the rule's own conclusion lets the chain drive the state to ⊥, any
//! instance firing the rule is contradictory (IC027 — the chained
//! upgrade of the pairwise IC020). IC026 holds the schema domains
//! against each premise clause: a premise no domain value can satisfy
//! means the rule can never fire.
//!
//! Only **directly** subsumed rules (IC021, [`RuleSet::minimize`]) are
//! safe to auto-prune: the inference engine applies rules one at a
//! time, so a chain-derivable rule (IC025) may still be the only
//! single-step answer to some query. IC025 therefore reports a prune
//! list ([`prunable_rules`]) but serve only ever minimizes.

use crate::diag::{locate, Diagnostic, Report, Severity};
use intensio_inference::absint::{saturate_excluding, AbstractState, AbstractValue};
use intensio_rules::range::ValueRange;
use intensio_rules::rule::{Rule, RuleSet};
use intensio_storage::catalog::Database;
use std::cmp::Ordering;

/// Configuration for the rule pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleCheckConfig {
    /// The induction support threshold `N_c`; rules below it draw
    /// IC023. `0` disables the support lint.
    pub min_support: usize,
}

fn origin(r: &Rule) -> String {
    format!("R{}", r.id)
}

/// A diagnostic whose span points into the rule's own rendered text
/// (`R3: if ... then ...`), located at `token`.
fn rule_diag(
    code: &'static str,
    severity: Severity,
    r: &Rule,
    message: String,
    token: &str,
) -> Diagnostic {
    let text = r.to_string();
    Diagnostic::new(code, severity, origin(r), message)
        .with_span(locate(&text, token))
        .with_note(text.clone())
}

/// Run the rule lints. `db` enables the catalog cross-check (IC024).
pub fn check_rules(rules: &RuleSet, db: Option<&Database>, cfg: &RuleCheckConfig) -> Report {
    let mut report = Report::new();
    let all = rules.rules();

    for (i, a) in all.iter().enumerate() {
        for b in all.iter().skip(i + 1) {
            if let Some(d) = conflict(a, b) {
                report.push(d);
            }
            if let Some(d) = subsumption(a, b) {
                report.push(d);
            }
        }
        if cfg.min_support > 0 && a.support < cfg.min_support {
            report.push(rule_diag(
                "IC023",
                Severity::Warn,
                a,
                format!(
                    "support {} is below the configured threshold N_c = {}",
                    a.support, cfg.min_support
                ),
                &format!("R{}", a.id),
            ));
        }
        if let Some(db) = db {
            for c in a.lhs.iter().chain(std::iter::once(&a.rhs)) {
                let known = db
                    .get(&c.attr.object)
                    .ok()
                    .map(|rel| rel.schema().index_of(&c.attr.attribute).is_some());
                let (code_needed, what) = match known {
                    None => (true, format!("unknown relation {}", c.attr.object)),
                    Some(false) => (true, format!("unknown attribute {}", c.attr)),
                    Some(true) => (false, String::new()),
                };
                if code_needed {
                    report.push(rule_diag(
                        "IC024",
                        Severity::Warn,
                        a,
                        format!("rule references {what}, absent from the catalog"),
                        &c.attr.attribute,
                    ));
                    break;
                }
            }
        }
    }

    gaps(all, &mut report);
    saturation_lints(rules, db, &mut report);
    report.sort();
    report
}

/// IC025/IC026/IC027 over the whole rule base.
fn saturation_lints(rules: &RuleSet, db: Option<&Database>, report: &mut Report) {
    let all = rules.rules();
    for r in all {
        if r.lhs.is_empty() {
            continue;
        }
        // IC026: a premise clause the schema domain cannot satisfy, or a
        // self-contradictory premise, makes the rule dead weight.
        if let Some(d) = dead_premise(r, db) {
            report.push(d);
            continue; // the other lints assume a satisfiable premise
        }
        let mut premise = AbstractState::new();
        for c in &r.lhs {
            premise.constrain(
                &c.attr.object,
                &c.attr.attribute,
                &AbstractValue::Range(c.range.clone()),
            );
        }
        if premise.is_empty() {
            continue; // handled by dead_premise above
        }

        // IC025: is the conclusion derivable from the rest of the set?
        // (Direct one-rule subsumption is IC021's finding — skip it.)
        let directly_subsumed = all.iter().any(|o| o.id != r.id && subsumes(o, r));
        if !directly_subsumed {
            let mut st = premise.clone();
            let sat = saturate_excluding(rules, &mut st, &[r.id]);
            if !sat.empty && !sat.fired.is_empty() {
                let derived = st.value_of(&r.rhs.attr.object, &r.rhs.attr.attribute);
                let range_ok =
                    !matches!(derived, AbstractValue::Top) && derived.within(&r.rhs.range);
                // A subtype-labelled conclusion must be re-derived with
                // the same label, not just a compatible range.
                let label_ok = r.rhs_subtype.is_none()
                    || sat.fired.iter().filter_map(|id| rules.get(*id)).any(|s| {
                        s.rhs
                            .attr
                            .matches(&r.rhs.attr.object, &r.rhs.attr.attribute)
                            && s.rhs_subtype == r.rhs_subtype
                    });
                if range_ok && label_ok {
                    let chain = sat
                        .fired
                        .iter()
                        .map(|id| format!("R{id}"))
                        .collect::<Vec<_>>()
                        .join(" -> ");
                    let mut d = rule_diag(
                        "IC025",
                        Severity::Warn,
                        r,
                        format!(
                            "derivable by chaining {chain}: from this rule's premise the rest \
                             of the set already concludes {} {derived}",
                            r.rhs.attr
                        ),
                        &format!("R{}", r.id),
                    )
                    .with_note(format!("prune-candidate: R{}", r.id));
                    for id in &sat.fired {
                        if let Some(s) = rules.get(*id) {
                            d = d.with_note(format!("via {s}"));
                        }
                    }
                    report.push(d);
                }
            }
        }

        // IC027: firing the rule, does the chained closure contradict
        // itself? (Pairwise direct conflicts stay IC020's finding.)
        let mut st = premise.clone();
        st.constrain(
            &r.rhs.attr.object,
            &r.rhs.attr.attribute,
            &AbstractValue::Range(r.rhs.range.clone()),
        );
        if st.is_empty() {
            continue; // conclusion contradicts own premise: dead_premise territory
        }
        let sat = saturate_excluding(rules, &mut st, &[r.id]);
        if !sat.empty || sat.fired.is_empty() {
            continue;
        }
        if sat.fired.len() == 1 {
            let direct = rules
                .get(sat.fired[0])
                .map(|s| conflict(r, s).is_some() || conflict(s, r).is_some())
                .unwrap_or(false);
            if direct {
                continue; // already an IC020
            }
        }
        let chain = std::iter::once(format!("R{}", r.id))
            .chain(sat.fired.iter().map(|id| format!("R{id}")))
            .collect::<Vec<_>>()
            .join(" -> ");
        let mut d = rule_diag(
            "IC027",
            Severity::Error,
            r,
            format!(
                "chained conflict: any instance firing R{} is contradicted by the \
                 derivation {chain} — the closure admits no tuple",
                r.id
            ),
            &format!("R{}", r.id),
        );
        for id in &sat.fired {
            if let Some(s) = rules.get(*id) {
                d = d.with_note(format!("via {s}"));
            }
        }
        report.push(d);
    }
}

/// IC026: hold each premise clause against the declared domain (when a
/// catalog is available) and against the rule's own other clauses.
fn dead_premise(r: &Rule, db: Option<&Database>) -> Option<Diagnostic> {
    if let Some(db) = db {
        for c in &r.lhs {
            let Ok(rel) = db.get(&c.attr.object) else {
                continue; // IC024 reports missing catalog entries
            };
            let Some(idx) = rel.schema().index_of(&c.attr.attribute) else {
                continue;
            };
            let dom = rel.schema().attr(idx).domain();
            let dv = AbstractValue::from_domain(dom);
            if dv.meet(&AbstractValue::Range(c.range.clone())).is_bottom() {
                return Some(rule_diag(
                    "IC026",
                    Severity::Warn,
                    r,
                    format!(
                        "dead rule: the declared domain {} admits no value in the premise \
                         {} {} — the rule can never fire",
                        dom.name(),
                        c.attr,
                        c.range
                    ),
                    &c.attr.attribute,
                ));
            }
        }
    }
    // Self-contradictory premise: two clauses on one attribute with an
    // empty intersection.
    for (i, a) in r.lhs.iter().enumerate() {
        for b in r.lhs.iter().skip(i + 1) {
            if a.attr.matches(&b.attr.object, &b.attr.attribute) && !a.range.intersects(&b.range) {
                return Some(rule_diag(
                    "IC026",
                    Severity::Warn,
                    r,
                    format!(
                        "dead rule: premise clauses {} {} and {} {} admit no common value — \
                         the rule can never fire",
                        a.attr, a.range, b.attr, b.range
                    ),
                    &a.attr.attribute,
                ));
            }
        }
    }
    None
}

/// The machine-readable prune list: ids of rules redundant under the
/// rest of the set — directly subsumed (IC021, what
/// [`RuleSet::minimize`] removes) or derivable by chaining (IC025).
/// Deterministic: ascending id order.
pub fn prunable_rules(rules: &RuleSet) -> Vec<u32> {
    let all = rules.rules();
    let mut out = Vec::new();
    for r in all {
        if r.lhs.is_empty() {
            continue;
        }
        if all.iter().any(|o| o.id != r.id && subsumes(o, r)) {
            out.push(r.id);
            continue;
        }
        let mut st = AbstractState::new();
        for c in &r.lhs {
            st.constrain(
                &c.attr.object,
                &c.attr.attribute,
                &AbstractValue::Range(c.range.clone()),
            );
        }
        if st.is_empty() {
            continue;
        }
        let sat = saturate_excluding(rules, &mut st, &[r.id]);
        if sat.empty || sat.fired.is_empty() {
            continue;
        }
        let derived = st.value_of(&r.rhs.attr.object, &r.rhs.attr.attribute);
        let range_ok = !matches!(derived, AbstractValue::Top) && derived.within(&r.rhs.range);
        let label_ok = r.rhs_subtype.is_none()
            || sat.fired.iter().filter_map(|id| rules.get(*id)).any(|s| {
                s.rhs
                    .attr
                    .matches(&r.rhs.attr.object, &r.rhs.attr.attribute)
                    && s.rhs_subtype == r.rhs_subtype
            });
        if range_ok && label_ok {
            out.push(r.id);
        }
    }
    out
}

/// IC020: could one tuple fire both rules while the conclusions
/// disagree?
fn conflict(a: &Rule, b: &Rule) -> Option<Diagnostic> {
    if !a
        .rhs
        .attr
        .matches(&b.rhs.attr.object, &b.rhs.attr.attribute)
    {
        return None;
    }
    let conclusions_clash = match (&a.rhs_subtype, &b.rhs_subtype) {
        (Some(x), Some(y)) if !x.eq_ignore_ascii_case(y) => true,
        _ => !a.rhs.range.intersects(&b.rhs.range),
    };
    if !conclusions_clash {
        return None;
    }
    // Premises must share an attribute, and every shared attribute's
    // ranges must overlap (non-shared attributes are freely satisfiable).
    let mut shared = 0usize;
    for ca in &a.lhs {
        let Some(cb) = b.lhs_clause(&ca.attr.object, &ca.attr.attribute) else {
            continue;
        };
        shared += 1;
        if !ca.range.intersects(&cb.range) {
            return None;
        }
    }
    if shared == 0 {
        return None;
    }
    let overlap = a
        .lhs
        .iter()
        .find_map(|ca| {
            b.lhs_clause(&ca.attr.object, &ca.attr.attribute)
                .and_then(|cb| ca.range.intersect(&cb.range))
                .map(|r| format!("{} {r}", ca.attr))
        })
        .unwrap_or_default();
    Some(
        rule_diag(
            "IC020",
            Severity::Error,
            a,
            format!(
                "conflicts with R{}: premises overlap ({overlap}) but conclusions on {} \
                 admit no common value",
                b.id, a.rhs.attr
            ),
            &a.rhs.attr.attribute,
        )
        .with_note(b.to_string()),
    )
}

/// IC021: `b` is redundant because `a` (or vice versa) is strictly wider
/// with the same conclusion — the predicate [`RuleSet::minimize`] uses.
fn subsumption(a: &Rule, b: &Rule) -> Option<Diagnostic> {
    let (wide, narrow) = if subsumes(a, b) {
        (a, b)
    } else if subsumes(b, a) {
        (b, a)
    } else {
        return None;
    };
    Some(
        rule_diag(
            "IC021",
            Severity::Warn,
            narrow,
            format!(
                "subsumed by the wider rule R{}: every query it answers, R{} answers",
                wide.id, wide.id
            ),
            &format!("R{}", narrow.id),
        )
        .with_note(wide.to_string()),
    )
}

fn subsumes(a: &Rule, b: &Rule) -> bool {
    let same_consequence =
        a.rhs.attr == b.rhs.attr && a.rhs.range == b.rhs.range && a.rhs_subtype == b.rhs_subtype;
    if !same_consequence {
        return false;
    }
    let covers = a.lhs.iter().all(|ca| {
        b.lhs_clause(&ca.attr.object, &ca.attr.attribute)
            .map(|cb| ca.range.subsumes(&cb.range))
            .unwrap_or(false)
    });
    covers && (a.lhs != b.lhs || a.id < b.id)
}

/// IC022: within each family of single-premise rules over the same
/// `(premise attribute, conclusion attribute)`, report the holes between
/// consecutive premise ranges.
fn gaps(all: &[Rule], report: &mut Report) {
    let mut families: Vec<(&Rule, &ValueRange)> = Vec::new();
    let mut seen: Vec<usize> = Vec::new();
    for (i, r) in all.iter().enumerate() {
        if seen.contains(&i) || r.lhs.len() != 1 {
            continue;
        }
        families.clear();
        families.push((r, &r.lhs[0].range));
        for (j, s) in all.iter().enumerate().skip(i + 1) {
            if s.lhs.len() == 1
                && s.lhs[0]
                    .attr
                    .matches(&r.lhs[0].attr.object, &r.lhs[0].attr.attribute)
                && s.rhs
                    .attr
                    .matches(&r.rhs.attr.object, &r.rhs.attr.attribute)
            {
                seen.push(j);
                families.push((s, &s.lhs[0].range));
            }
        }
        if families.len() < 2 {
            continue;
        }
        families.sort_by(|(_, x), (_, y)| cmp_lo(x, y));
        for w in families.windows(2) {
            let ((ra, x), (rb, y)) = (w[0], w[1]);
            if x.intersects(y) || x.merge(y).is_some() {
                continue; // overlapping or adjacent: no hole
            }
            let (Some(hi), Some(lo)) = (&x.hi, &y.lo) else {
                continue;
            };
            report.push(
                rule_diag(
                    "IC022",
                    Severity::Info,
                    ra,
                    format!(
                        "gap between R{} and R{} on {}: values in ({}, {}) match no rule, \
                         so backward inference cannot characterize them",
                        ra.id, rb.id, ra.lhs[0].attr, hi.value, lo.value
                    ),
                    &format!("R{}", ra.id),
                )
                .with_note(rb.to_string()),
            );
        }
    }
}

fn cmp_lo(a: &ValueRange, b: &ValueRange) -> Ordering {
    match (&a.lo, &b.lo) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => x.value.total_cmp(&y.value),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intensio_rules::rule::{AttrId, Clause};

    fn rule(lo: i64, hi: i64, concl: &str) -> Rule {
        Rule::new(
            0,
            vec![Clause::between(AttrId::new("E", "V"), lo, hi)],
            Clause::equals(AttrId::new("G", "Cat"), concl),
        )
        .with_support(5)
    }

    fn codes(r: &Report) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn conflicting_rules_are_ic020() {
        let rs = RuleSet::from_rules([rule(1, 5, "A"), rule(3, 8, "B")]);
        let r = check_rules(&rs, None, &RuleCheckConfig::default());
        assert!(codes(&r).contains(&"IC020"), "{}", r.render_text());
        assert!(r.has_errors());
        let d = r.diagnostics.iter().find(|d| d.code == "IC020").unwrap();
        assert!(d.message.contains("conflicts with R2"));
        assert_eq!(d.notes.len(), 2, "own text + the other rule");
    }

    #[test]
    fn disjoint_premises_do_not_conflict() {
        let rs = RuleSet::from_rules([rule(1, 5, "A"), rule(6, 9, "B")]);
        let r = check_rules(&rs, None, &RuleCheckConfig::default());
        assert!(!codes(&r).contains(&"IC020"), "{}", r.render_text());
    }

    #[test]
    fn different_premise_attributes_do_not_conflict() {
        let a = rule(1, 5, "A");
        let b = Rule::new(
            0,
            vec![Clause::between(AttrId::new("E", "W"), 1, 5)],
            Clause::equals(AttrId::new("G", "Cat"), "B"),
        )
        .with_support(5);
        let rs = RuleSet::from_rules([a, b]);
        let r = check_rules(&rs, None, &RuleCheckConfig::default());
        assert!(!codes(&r).contains(&"IC020"), "{}", r.render_text());
    }

    #[test]
    fn subtype_labels_clash_is_ic020() {
        let mut a = rule(1, 5, "X");
        a.rhs_subtype = Some("SSBN".into());
        let mut b = rule(3, 8, "X");
        b.rhs_subtype = Some("SSN".into());
        let rs = RuleSet::from_rules([a, b]);
        let r = check_rules(&rs, None, &RuleCheckConfig::default());
        assert!(codes(&r).contains(&"IC020"), "{}", r.render_text());
    }

    #[test]
    fn subsumed_rule_is_ic021() {
        let rs = RuleSet::from_rules([rule(0, 100, "A"), rule(10, 20, "A")]);
        let r = check_rules(&rs, None, &RuleCheckConfig::default());
        assert!(codes(&r).contains(&"IC021"), "{}", r.render_text());
        let d = r.diagnostics.iter().find(|d| d.code == "IC021").unwrap();
        assert_eq!(d.origin, "R2", "the narrow rule carries the lint");
    }

    #[test]
    fn gap_is_ic022_info_only() {
        let rs = RuleSet::from_rules([rule(1, 5, "A"), rule(9, 12, "A")]);
        let r = check_rules(&rs, None, &RuleCheckConfig::default());
        assert!(codes(&r).contains(&"IC022"), "{}", r.render_text());
        assert!(!r.fails(true), "info findings never fail the run");
    }

    #[test]
    fn low_support_is_ic023() {
        let rs = RuleSet::from_rules([rule(1, 5, "A").with_support(1)]);
        let r = check_rules(&rs, None, &RuleCheckConfig { min_support: 3 });
        assert!(codes(&r).contains(&"IC023"), "{}", r.render_text());
        let clean = check_rules(&rs, None, &RuleCheckConfig::default());
        assert!(!clean.diagnostics.iter().any(|d| d.code == "IC023"));
    }

    #[test]
    fn unknown_catalog_reference_is_ic024() {
        let db = Database::new();
        let rs = RuleSet::from_rules([rule(1, 5, "A")]);
        let r = check_rules(&rs, Some(&db), &RuleCheckConfig::default());
        assert!(codes(&r).contains(&"IC024"), "{}", r.render_text());
    }

    #[test]
    fn chain_derivable_rule_is_ic025_with_prune_note() {
        // R1: V in [0,10] -> W = 5;  R2: W in [4,6] -> Cat = A;
        // R3: V in [2,8]  -> Cat = A   — derivable by chaining R1 -> R2,
        // but NOT directly subsumed (no single rule with a wider premise
        // over V concludes Cat = A).
        let r1 = Rule::new(
            0,
            vec![Clause::between(AttrId::new("E", "V"), 0, 10)],
            Clause::equals(AttrId::new("E", "W"), 5),
        )
        .with_support(5);
        let r2 = Rule::new(
            0,
            vec![Clause::between(AttrId::new("E", "W"), 4, 6)],
            Clause::equals(AttrId::new("G", "Cat"), "A"),
        )
        .with_support(5);
        let r3 = Rule::new(
            0,
            vec![Clause::between(AttrId::new("E", "V"), 2, 8)],
            Clause::equals(AttrId::new("G", "Cat"), "A"),
        )
        .with_support(5);
        let rs = RuleSet::from_rules([r1, r2, r3]);
        let r = check_rules(&rs, None, &RuleCheckConfig::default());
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == "IC025")
            .unwrap_or_else(|| panic!("chain subsumption missed:\n{}", r.render_text()));
        assert_eq!(d.origin, "R3", "the redundant rule carries the lint");
        assert!(d.message.contains("R1 -> R2"), "{}", d.message);
        assert!(
            d.notes.iter().any(|n| n == "prune-candidate: R3"),
            "machine-readable prune note: {:?}",
            d.notes
        );
        assert!(!codes(&r).contains(&"IC021"), "not a direct subsumption");
        assert_eq!(prunable_rules(&rs), vec![3]);
    }

    #[test]
    fn directly_subsumed_rule_stays_ic021_not_ic025() {
        let rs = RuleSet::from_rules([rule(0, 100, "A"), rule(10, 20, "A")]);
        let r = check_rules(&rs, None, &RuleCheckConfig::default());
        assert!(codes(&r).contains(&"IC021"), "{}", r.render_text());
        assert!(!codes(&r).contains(&"IC025"), "{}", r.render_text());
        // ... but the prune list covers both kinds of redundancy.
        assert_eq!(prunable_rules(&rs), vec![2]);
    }

    #[test]
    fn domain_dead_premise_is_ic026() {
        use intensio_storage::domain::Domain;
        use intensio_storage::relation::Relation;
        use intensio_storage::schema::{Attribute, Schema};
        let mut db = Database::new();
        let schema = Schema::new(vec![
            Attribute::key("Id", Domain::char_n(8)),
            Attribute::new("V", Domain::int_range("V_DOM", 0, 100)),
        ])
        .unwrap();
        db.create(Relation::new("E", schema)).unwrap();
        // Premise V in [500, 900] can never hold in range [0..100].
        let dead = Rule::new(
            0,
            vec![Clause::between(AttrId::new("E", "V"), 500, 900)],
            Clause::equals(AttrId::new("E", "Id"), "X"),
        )
        .with_support(5);
        let rs = RuleSet::from_rules([dead]);
        let r = check_rules(&rs, Some(&db), &RuleCheckConfig::default());
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == "IC026")
            .unwrap_or_else(|| panic!("dead premise missed:\n{}", r.render_text()));
        assert!(d.message.contains("can never fire"), "{}", d.message);
        assert!(!r.has_errors(), "IC026 is a warning");
    }

    #[test]
    fn self_contradictory_premise_is_ic026_without_a_catalog() {
        let dead = Rule::new(
            0,
            vec![
                Clause::between(AttrId::new("E", "V"), 0, 5),
                Clause::between(AttrId::new("E", "V"), 10, 20),
            ],
            Clause::equals(AttrId::new("G", "Cat"), "A"),
        )
        .with_support(5);
        let rs = RuleSet::from_rules([dead]);
        let r = check_rules(&rs, None, &RuleCheckConfig::default());
        assert!(codes(&r).contains(&"IC026"), "{}", r.render_text());
    }

    #[test]
    fn conflict_reachable_only_through_chaining_is_ic027() {
        // R1: V in [0,10] -> W = 5;  R2: W in [4,6] -> X = 1;
        // R3: V in [2,8]  -> X = 9.
        // R3 and R2 share no premise attribute (IC020 stays silent), yet
        // any instance firing R3 also fires R1 then R2, deriving X = 1
        // against R3's own X = 9.
        let r1 = Rule::new(
            0,
            vec![Clause::between(AttrId::new("E", "V"), 0, 10)],
            Clause::equals(AttrId::new("E", "W"), 5),
        )
        .with_support(5);
        let r2 = Rule::new(
            0,
            vec![Clause::between(AttrId::new("E", "W"), 4, 6)],
            Clause::equals(AttrId::new("E", "X"), 1),
        )
        .with_support(5);
        let r3 = Rule::new(
            0,
            vec![Clause::between(AttrId::new("E", "V"), 2, 8)],
            Clause::equals(AttrId::new("E", "X"), 9),
        )
        .with_support(5);
        let rs = RuleSet::from_rules([r1, r2, r3]);
        let r = check_rules(&rs, None, &RuleCheckConfig::default());
        assert!(!codes(&r).contains(&"IC020"), "{}", r.render_text());
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == "IC027")
            .unwrap_or_else(|| panic!("chained conflict missed:\n{}", r.render_text()));
        assert_eq!(d.origin, "R3");
        assert!(d.message.contains("R3 -> R1 -> R2"), "{}", d.message);
        assert!(r.has_errors(), "IC027 is an error");
    }

    #[test]
    fn direct_conflicts_stay_ic020_not_ic027() {
        let rs = RuleSet::from_rules([rule(1, 5, "A"), rule(3, 8, "B")]);
        let r = check_rules(&rs, None, &RuleCheckConfig::default());
        assert!(codes(&r).contains(&"IC020"), "{}", r.render_text());
        assert!(!codes(&r).contains(&"IC027"), "{}", r.render_text());
    }
}
