//! # intensio-check
//!
//! Static analysis over the three artifacts of the intensional query
//! pipeline: **KER schemas**, **induced rule sets**, and **queries**.
//! The paper's machinery makes many defects statically decidable — an
//! isa-cycle breaks classification, two rules with overlapping premises
//! and disagreeing conclusions can never both hold, and a query whose
//! restriction contradicts a forward-applicable rule is provably empty
//! before touching storage. This crate finds them ahead of execution
//! and reports each with a stable `IC0xx` code, a severity, a source
//! span, and provenance notes.
//!
//! The passes:
//! * [`schema::check_schema_text`] — IC000–IC010 over the KER AST;
//! * [`rules::check_rules`] — IC020–IC027 over a [`intensio_rules::rule::RuleSet`],
//!   including the saturation lints (chain subsumption, dead premises,
//!   chained conflicts) built on the shared abstract-interpretation
//!   engine in `intensio_inference::absint`;
//! * [`query::check_sql`] / [`query::check_quel`] — IC040–IC045 over
//!   parsed queries against the catalog and rules, with fixpoint rule
//!   chaining and disjunct-wise emptiness proofs;
//! * [`fsck::check_data_dir`] — IC060–IC066 offline audit of a serve
//!   data directory (WAL frames, epochs, terms, checkpoints, debris).
//!
//! Consumers: the `check` CLI binary (CI gate and the `fsck`
//! subcommand), the serve-layer install gate (rejects Error-level rule
//! set epochs and prunes directly-subsumed rules), the `CHECK` protocol
//! verb, and the induction driver's post-induction lint hook.
//!
//! ```
//! use intensio_check::{check_schema_text, Severity};
//!
//! let report = check_schema_text(
//!     "object type A\n  has key: Id domain: integer\nA isa A with Id >= 0\n",
//! );
//! assert!(report.has_errors());
//! assert_eq!(report.diagnostics[0].code, "IC001"); // hierarchy cycle
//! assert_eq!(report.diagnostics[0].severity, Severity::Error);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod fsck;
pub mod query;
pub mod rules;
pub mod schema;

pub use diag::{Diagnostic, Report, Severity, Span};
pub use fsck::check_data_dir;
pub use query::{check_quel, check_sql};
pub use rules::{check_rules, prunable_rules, RuleCheckConfig};
pub use schema::{check_schema, check_schema_text};
