//! Soundness property for the emptiness lints.
//!
//! IC043 (contradictory selection) and IC044 (rule-derived emptiness)
//! both claim a query is *provably* empty. The proof obligation behind
//! either claim is: over any database instance on which every installed
//! rule holds, the query returns zero tuples. This test generates
//! random rule sets, databases rejection-sampled to satisfy those
//! rules, and random conjunctive queries — and checks the claim
//! extensionally every time the analyzer makes it.
//!
//! The rules may contradict each other on part of the domain; that is
//! deliberate. Rejection sampling then keeps no tuple in the disputed
//! band, so a query the abstract interpreter collapses to bottom there
//! is still extensionally empty — exactly the soundness argument.

use intensio_check::check_sql;
use intensio_rules::rule::{AttrId, Clause, Rule, RuleSet};
use intensio_storage::catalog::Database;
use intensio_storage::domain::Domain;
use intensio_storage::relation::Relation;
use intensio_storage::schema::{Attribute, Schema};
use intensio_storage::tuple;
use proptest::prelude::*;

const OPS: [&str; 5] = ["=", "<", "<=", ">", ">="];

/// (premise attr: 0 = V / 1 = W, premise lo, premise width,
/// conclusion value on the other attribute)
type RuleSpec = (usize, i64, i64, i64);
/// (condition attr, index into [`OPS`], constant)
type CondSpec = (usize, usize, i64);

fn attr_name(i: usize) -> &'static str {
    if i == 0 {
        "V"
    } else {
        "W"
    }
}

fn build_rules(specs: &[RuleSpec]) -> RuleSet {
    RuleSet::from_rules(specs.iter().map(|&(p, lo, width, out)| {
        Rule::new(
            0,
            vec![Clause::between(
                AttrId::new("E", attr_name(p)),
                lo,
                lo + width,
            )],
            Clause::equals(AttrId::new("E", attr_name(1 - p)), out),
        )
        .with_support(5)
    }))
}

/// Does every generated rule hold on the point `(v, w)`?
fn holds(specs: &[RuleSpec], v: i64, w: i64) -> bool {
    specs.iter().all(|&(p, lo, width, out)| {
        let (premise, conclusion) = if p == 0 { (v, w) } else { (w, v) };
        premise < lo || premise > lo + width || conclusion == out
    })
}

fn cond_holds(&(attr, op, k): &CondSpec, v: i64, w: i64) -> bool {
    let x = if attr == 0 { v } else { w };
    match OPS[op] {
        "=" => x == k,
        "<" => x < k,
        "<=" => x <= k,
        ">" => x > k,
        _ => x >= k,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn provably_empty_claims_hold_extensionally(
        rule_specs in prop::collection::vec((0usize..2, 0i64..90, 0i64..30, 0i64..100), 1..5),
        points in prop::collection::vec((0i64..100, 0i64..100), 8..40),
        conds in prop::collection::vec((0usize..2, 0usize..5, 0i64..100), 1..4),
        probe in (0usize..8, 0i64..100),
    ) {
        // Purely random conjunctions almost always trip IC043 (a
        // contradiction within the query itself), not IC044. Half the
        // time, aim a probe at a generated rule: pin its premise
        // attribute inside the premise range and equate the conclusion
        // attribute to a random value. When that value differs from the
        // rule's conclusion the query is empty *only because of the
        // rule* — the IC044 path; when it matches, the query is
        // satisfiable and must not be flagged.
        let mut conds = conds;
        if let Some(&(p, lo, width, _)) = rule_specs.get(probe.0) {
            conds.push((p, 0, lo + width / 2));
            conds.push((1 - p, 0, probe.1));
        }
        // The soundness precondition is "the rules describe the data":
        // keep only the sampled points every rule holds on.
        let kept: Vec<(i64, i64)> = points
            .iter()
            .copied()
            .filter(|&(v, w)| holds(&rule_specs, v, w))
            .collect();

        let schema = Schema::new(vec![
            Attribute::key("Id", Domain::char_n(8)),
            Attribute::new("V", Domain::int_range("V_DOM", 0, 100)),
            Attribute::new("W", Domain::int_range("W_DOM", 0, 100)),
        ])
        .unwrap();
        let mut e = Relation::new("E", schema);
        for (i, &(v, w)) in kept.iter().enumerate() {
            e.insert(tuple![format!("ROW{i:04}"), v, w]).unwrap();
        }
        let mut db = Database::new();
        db.create(e).unwrap();
        let rules = build_rules(&rule_specs);

        let where_clause = conds
            .iter()
            .map(|&(attr, op, k)| format!("{} {} {k}", attr_name(attr), OPS[op]))
            .collect::<Vec<_>>()
            .join(" AND ");
        let sql = format!("SELECT Id FROM E WHERE {where_clause}");

        let report = check_sql(&sql, &db, &rules);
        prop_assert!(
            !report.diagnostics.iter().any(|d| d.code == "IC000"),
            "generated query failed to parse: {sql}\n{}",
            report.render_text()
        );
        let claims_empty = report
            .diagnostics
            .iter()
            .any(|d| d.code == "IC043" || d.code == "IC044");
        if claims_empty {
            let matched = kept
                .iter()
                .filter(|&&(v, w)| conds.iter().all(|c| cond_holds(c, v, w)))
                .count();
            prop_assert_eq!(
                matched,
                0,
                "flagged provably empty but {} tuple(s) match: {}\nrules: {:?}\n{}",
                matched,
                sql,
                rule_specs,
                report.render_text()
            );
        }
    }
}

/// The complementary direction on a fixed, known-satisfiable setup: a
/// query the data can actually answer is never flagged empty. Not a
/// completeness guarantee — just a tripwire against the analyzer
/// collapsing everything to bottom and "passing" the property above
/// vacuously.
#[test]
fn satisfiable_queries_on_rule_consistent_data_are_not_flagged() {
    let specs: Vec<RuleSpec> = vec![(0, 10, 20, 7)];
    let rules = build_rules(&specs);
    let schema = Schema::new(vec![
        Attribute::key("Id", Domain::char_n(8)),
        Attribute::new("V", Domain::int_range("V_DOM", 0, 100)),
        Attribute::new("W", Domain::int_range("W_DOM", 0, 100)),
    ])
    .unwrap();
    let mut e = Relation::new("E", schema);
    e.insert(tuple!["ROW0000", 15, 7]).unwrap();
    e.insert(tuple!["ROW0001", 50, 3]).unwrap();
    let mut db = Database::new();
    db.create(e).unwrap();

    for sql in [
        "SELECT Id FROM E WHERE V >= 10 AND V <= 30",
        "SELECT Id FROM E WHERE V = 15 AND W = 7",
        "SELECT Id FROM E WHERE W < 5",
    ] {
        let report = check_sql(sql, &db, &rules);
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.code == "IC043" || d.code == "IC044"),
            "satisfiable query flagged empty: {sql}\n{}",
            report.render_text()
        );
    }
}
