//! QUEL aggregate functions: `count`/`sum`/`avg`/`min`/`max` with the
//! INGRES `by` grouping syntax.

use intensio_quel::Session;
use intensio_storage::prelude::*;
use intensio_storage::tuple;

fn db() -> Database {
    let schema = Schema::new(vec![
        Attribute::key("Class", Domain::char_n(4)),
        Attribute::new("Type", Domain::char_n(4)),
        Attribute::new("Displacement", Domain::basic(ValueType::Int)),
    ])
    .unwrap();
    let mut r = Relation::new("CLASS", schema);
    r.insert_all([
        tuple!["0101", "SSBN", 16600],
        tuple!["0102", "SSBN", 7250],
        tuple!["0201", "SSN", 6000],
        tuple!["0215", "SSN", 2145],
        tuple!["1301", "SSBN", 30000],
    ])
    .unwrap();
    let mut d = Database::new();
    d.create(r).unwrap();
    d
}

#[test]
fn whole_relation_aggregates() {
    let mut d = db();
    let mut s = Session::new();
    s.execute(&mut d, "range of c is CLASS").unwrap();
    let out = s
        .execute(
            &mut d,
            "retrieve (n = count(c.Class), lo = min(c.Displacement), \
             hi = max(c.Displacement), total = sum(c.Displacement))",
        )
        .unwrap();
    let r = out.relation().unwrap();
    assert_eq!(r.len(), 1);
    let t = &r.tuples()[0];
    assert_eq!(t.get(0), &Value::Int(5));
    assert_eq!(t.get(1), &Value::Int(2145));
    assert_eq!(t.get(2), &Value::Int(30000));
    assert_eq!(t.get(3), &Value::Int(61995));
}

#[test]
fn grouped_aggregates_reproduce_table1_shape() {
    // The Table 1 computation — per-type displacement bands — in QUEL.
    let mut d = db();
    let mut s = Session::new();
    s.execute(&mut d, "range of c is CLASS").unwrap();
    let out = s
        .execute(
            &mut d,
            "retrieve (c.Type, lo = min(c.Displacement by c.Type), \
             hi = max(c.Displacement by c.Type)) sort by Type",
        )
        .unwrap();
    let r = out.relation().unwrap();
    assert_eq!(r.len(), 2);
    assert_eq!(r.tuples()[0], tuple!["SSBN", 7250, 30000]);
    assert_eq!(r.tuples()[1], tuple!["SSN", 2145, 6000]);
}

#[test]
fn aggregates_respect_qualification() {
    let mut d = db();
    let mut s = Session::new();
    s.execute(&mut d, "range of c is CLASS").unwrap();
    let out = s
        .execute(
            &mut d,
            "retrieve (n = count(c.Class)) where c.Displacement > 8000",
        )
        .unwrap();
    assert_eq!(out.relation().unwrap().tuples()[0].get(0), &Value::Int(2));
}

#[test]
fn empty_aggregate_yields_one_row() {
    let mut d = db();
    let mut s = Session::new();
    s.execute(&mut d, "range of c is CLASS").unwrap();
    let out = s
        .execute(
            &mut d,
            "retrieve (n = count(c.Class), m = min(c.Displacement)) \
             where c.Displacement > 99999",
        )
        .unwrap();
    let r = out.relation().unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.tuples()[0].get(0), &Value::Int(0));
    assert!(r.tuples()[0].get(1).is_null());
}

#[test]
fn avg_returns_real() {
    let mut d = db();
    let mut s = Session::new();
    s.execute(&mut d, "range of c is CLASS").unwrap();
    let out = s
        .execute(&mut d, "retrieve (m = avg(c.Displacement))")
        .unwrap();
    let v = out.relation().unwrap().tuples()[0].get(0).clone();
    assert_eq!(v, Value::Real(61995.0 / 5.0));
}

#[test]
fn mixed_by_lists_rejected() {
    let mut d = db();
    let mut s = Session::new();
    s.execute(&mut d, "range of c is CLASS").unwrap();
    assert!(s
        .execute(
            &mut d,
            "retrieve (a = min(c.Displacement by c.Type), b = max(c.Displacement))",
        )
        .is_err());
}

#[test]
fn stray_plain_target_rejected() {
    let mut d = db();
    let mut s = Session::new();
    s.execute(&mut d, "range of c is CLASS").unwrap();
    // Class is not in the `by` list.
    assert!(s
        .execute(&mut d, "retrieve (c.Class, n = count(c.Class by c.Type))",)
        .is_err());
}

#[test]
fn aggregate_into_stored_relation() {
    let mut d = db();
    let mut s = Session::new();
    s.execute(&mut d, "range of c is CLASS").unwrap();
    s.execute(
        &mut d,
        "retrieve into BANDS (c.Type, lo = min(c.Displacement by c.Type), \
         hi = max(c.Displacement by c.Type))",
    )
    .unwrap();
    assert_eq!(d.get("BANDS").unwrap().len(), 2);
}
