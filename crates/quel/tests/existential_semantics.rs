//! QUEL's existential semantics for `delete` and `replace` when the
//! qualification ranges over *other* relations — the semantics the
//! paper's step-2 `delete s where (s.X = t.X and s.Y = t.Y)` depends on.

use intensio_quel::Session;
use intensio_storage::prelude::*;
use intensio_storage::tuple;

fn db() -> Database {
    let mut d = Database::new();
    let emp = Schema::new(vec![
        Attribute::key("Name", Domain::char_n(8)),
        Attribute::new("Dept", Domain::char_n(8)),
        Attribute::new("Salary", Domain::basic(ValueType::Int)),
    ])
    .unwrap();
    let mut re = Relation::new("EMP", emp);
    re.insert_all([
        tuple!["ada", "eng", 100],
        tuple!["bob", "eng", 80],
        tuple!["cyd", "ops", 90],
        tuple!["dan", "ops", 70],
    ])
    .unwrap();
    d.create(re).unwrap();

    let closing = Schema::new(vec![Attribute::key("Dept", Domain::char_n(8))]).unwrap();
    let mut rc = Relation::new("CLOSING", closing);
    rc.insert(tuple!["ops"]).unwrap();
    d.create(rc).unwrap();
    d
}

#[test]
fn delete_with_existential_witness() {
    // Delete every employee in a closing department: the qualification
    // binds c existentially.
    let mut d = db();
    let mut s = Session::new();
    s.execute(&mut d, "range of e is EMP").unwrap();
    s.execute(&mut d, "range of c is CLOSING").unwrap();
    let out = s.execute(&mut d, "delete e where e.Dept = c.Dept").unwrap();
    assert!(matches!(out, intensio_quel::Output::Affected(2)));
    let left: Vec<String> = d
        .get("EMP")
        .unwrap()
        .iter()
        .map(|t| t.get(0).as_str().unwrap().to_string())
        .collect();
    assert_eq!(left, vec!["ada", "bob"]);
}

#[test]
fn replace_with_existential_witness() {
    // Everyone in a closing department gets salary 0.
    let mut d = db();
    let mut s = Session::new();
    s.execute(&mut d, "range of e is EMP").unwrap();
    s.execute(&mut d, "range of c is CLOSING").unwrap();
    let out = s
        .execute(&mut d, "replace e (Salary = 0) where e.Dept = c.Dept")
        .unwrap();
    assert!(matches!(out, intensio_quel::Output::Affected(2)));
    for t in d.get("EMP").unwrap().iter() {
        if t.get(1) == &Value::str("ops") {
            assert_eq!(t.get(2).as_int().unwrap(), 0);
        } else {
            assert!(t.get(2).as_int().unwrap() > 0, "eng salaries untouched");
        }
    }
}

#[test]
fn delete_when_witness_relation_is_empty() {
    let mut d = db();
    d.get_mut("CLOSING").unwrap().clear();
    let mut s = Session::new();
    s.execute(&mut d, "range of e is EMP").unwrap();
    s.execute(&mut d, "range of c is CLOSING").unwrap();
    let out = s.execute(&mut d, "delete e where e.Dept = c.Dept").unwrap();
    assert!(matches!(out, intensio_quel::Output::Affected(0)));
    assert_eq!(d.get("EMP").unwrap().len(), 4);
}

#[test]
fn self_witness_delete_duplicated_values() {
    // Delete employees sharing a salary band with someone in another
    // department: e and f both range over EMP.
    let mut d = db();
    {
        let emp = d.get_mut("EMP").unwrap();
        emp.insert(tuple!["eve", "eng", 90]).unwrap(); // matches cyd (ops, 90)
    }
    let mut s = Session::new();
    s.execute(&mut d, "range of e is EMP").unwrap();
    s.execute(&mut d, "range of f is EMP").unwrap();
    let out = s
        .execute(
            &mut d,
            "delete e where e.Salary = f.Salary and e.Dept != f.Dept",
        )
        .unwrap();
    // eve (eng, 90) and cyd (ops, 90) both deleted.
    assert!(matches!(out, intensio_quel::Output::Affected(2)));
    assert!(d
        .get("EMP")
        .unwrap()
        .find_by_key(&[Value::str("cyd")])
        .is_none());
}
