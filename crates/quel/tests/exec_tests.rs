//! Executor tests for the QUEL subset, including the exact statement
//! sequence of the paper's §5.2.1 rule-induction algorithm.

use intensio_quel::{Output, Session};
use intensio_storage::prelude::*;
use intensio_storage::tuple;

fn class_db() -> Database {
    let schema = Schema::new(vec![
        Attribute::key("Class", Domain::char_n(4)),
        Attribute::new("Type", Domain::char_n(4)),
        Attribute::new("Displacement", Domain::basic(ValueType::Int)),
    ])
    .unwrap();
    let mut class = Relation::new("CLASS", schema);
    class
        .insert_all([
            tuple!["0101", "SSBN", 16600],
            tuple!["0102", "SSBN", 7250],
            tuple!["0103", "SSBN", 7250],
            tuple!["0201", "SSN", 6000],
            tuple!["0215", "SSN", 2145],
        ])
        .unwrap();
    let mut db = Database::new();
    db.create(class).unwrap();
    db
}

#[test]
fn retrieve_unique_sort_into() {
    let mut db = class_db();
    let mut s = Session::new();
    s.execute(&mut db, "range of r is CLASS").unwrap();
    // Paper §5.2.1 step 1 with (X, Y) = (Displacement, Type).
    let out = s
        .execute(
            &mut db,
            "retrieve into S unique (r.Type, r.Displacement) sort by r.Type",
        )
        .unwrap();
    assert!(matches!(out, Output::Stored(ref n) if n == "S"));
    let stored = db.get("S").unwrap();
    // (SSBN,16600), (SSBN,7250) [dedup of two 7250s], (SSN,6000), (SSN,2145).
    assert_eq!(stored.len(), 4);
    assert_eq!(stored.tuples()[0].get(0), &Value::str("SSBN"));
    assert_eq!(stored.schema().attr(1).name(), "Displacement");
}

#[test]
fn multi_variable_qualification_joins() {
    let mut db = class_db();
    let sub_schema = Schema::new(vec![
        Attribute::key("Id", Domain::char_n(7)),
        Attribute::new("Class", Domain::char_n(4)),
    ])
    .unwrap();
    let mut sub = Relation::new("SUBMARINE", sub_schema);
    sub.insert_all([tuple!["SSBN730", "0101"], tuple!["SSN582", "0215"]])
        .unwrap();
    db.create(sub).unwrap();

    let mut s = Session::new();
    s.execute(&mut db, "range of b is SUBMARINE").unwrap();
    s.execute(&mut db, "range of c is CLASS").unwrap();
    let out = s
        .execute(
            &mut db,
            "retrieve (b.Id, c.Type) where b.Class = c.Class and c.Displacement > 8000",
        )
        .unwrap();
    let rel = out.relation().unwrap();
    assert_eq!(rel.len(), 1);
    assert_eq!(rel.tuples()[0], tuple!["SSBN730", "SSBN"]);
}

#[test]
fn inconsistent_pair_removal_sequence() {
    // The full §5.2.1 step-2 sequence: find (X, Y) pairs with the same X
    // but different Y, then delete them from S.
    let mut db = Database::new();
    let schema = Schema::new(vec![
        Attribute::new("X", Domain::basic(ValueType::Int)),
        Attribute::new("Y", Domain::char_n(4)),
    ])
    .unwrap();
    let mut rel = Relation::new("R", schema);
    rel.insert_all([
        tuple![1, "a"],
        tuple![2, "a"],
        tuple![3, "b"],
        tuple![3, "c"], // X = 3 is inconsistent
        tuple![4, "c"],
    ])
    .unwrap();
    db.create(rel).unwrap();

    let mut s = Session::new();
    let script = r#"
        range of r is R
        retrieve into S unique (r.Y, r.X) sort by r.Y
        range of r2 is R
        range of s is S
        retrieve into T unique (s.Y, s.X) where (r2.X = s.X and r2.Y != s.Y)
        range of t is T
        delete s where (s.X = t.X and s.Y = t.Y)
    "#;
    s.run_script(&mut db, script).unwrap();

    let t = db.get("T").unwrap();
    assert_eq!(t.len(), 2, "both (3,b) and (3,c) are inconsistent");
    let s_rel = db.get("S").unwrap();
    assert_eq!(s_rel.len(), 3, "inconsistent X=3 pairs removed from S");
    assert!(s_rel.iter().all(|tup| tup.get(1) != &Value::Int(3)));
}

#[test]
fn delete_without_qualification_empties() {
    let mut db = class_db();
    let mut s = Session::new();
    s.execute(&mut db, "range of c is CLASS").unwrap();
    let out = s.execute(&mut db, "delete c").unwrap();
    assert!(matches!(out, Output::Affected(5)));
    assert!(db.get("CLASS").unwrap().is_empty());
}

#[test]
fn append_and_replace() {
    let mut db = class_db();
    let mut s = Session::new();
    let out = s
        .execute(
            &mut db,
            r#"append to CLASS (Class = "0301", Type = "SSK", Displacement = 1800)"#,
        )
        .unwrap();
    assert!(matches!(out, Output::Affected(1)));
    assert_eq!(db.get("CLASS").unwrap().len(), 6);

    s.execute(&mut db, "range of c is CLASS").unwrap();
    let out = s
        .execute(
            &mut db,
            r#"replace c (Displacement = 2000) where c.Class = "0301""#,
        )
        .unwrap();
    assert!(matches!(out, Output::Affected(1)));
    let t = db
        .get("CLASS")
        .unwrap()
        .find_by_key(&[Value::str("0301")])
        .unwrap()
        .clone();
    assert_eq!(t.get(2), &Value::Int(2000));
}

#[test]
fn append_missing_attribute_is_null() {
    let mut db = class_db();
    let mut s = Session::new();
    s.execute(&mut db, r#"append to CLASS (Class = "0400")"#)
        .unwrap();
    let t = db
        .get("CLASS")
        .unwrap()
        .find_by_key(&[Value::str("0400")])
        .unwrap()
        .clone();
    assert!(t.get(1).is_null());
}

#[test]
fn undeclared_range_variable_errors() {
    let mut db = class_db();
    let mut s = Session::new();
    assert!(s.execute(&mut db, "retrieve (zz.Class)").is_err());
    assert!(s.execute(&mut db, "delete zz").is_err());
}

#[test]
fn range_of_unknown_relation_errors() {
    let mut db = class_db();
    let mut s = Session::new();
    assert!(s.execute(&mut db, "range of r is NOPE").is_err());
}

#[test]
fn duplicate_key_append_rejected() {
    let mut db = class_db();
    let mut s = Session::new();
    assert!(s
        .execute(
            &mut db,
            r#"append to CLASS (Class = "0101", Type = "SSBN", Displacement = 1)"#
        )
        .is_err());
}

#[test]
fn rebinding_a_range_variable() {
    let mut db = class_db();
    let sub_schema = Schema::new(vec![Attribute::key("Id", Domain::char_n(7))]).unwrap();
    db.create(Relation::new("SUBMARINE", sub_schema)).unwrap();
    let mut s = Session::new();
    s.execute(&mut db, "range of r is CLASS").unwrap();
    s.execute(&mut db, "range of r is SUBMARINE").unwrap();
    assert_eq!(s.range_of("r"), Some("SUBMARINE"));
}

#[test]
fn sort_by_multiple_keys() {
    let mut db = class_db();
    let mut s = Session::new();
    s.execute(&mut db, "range of c is CLASS").unwrap();
    let out = s
        .execute(
            &mut db,
            "retrieve (c.Type, c.Displacement) sort by c.Type, c.Displacement",
        )
        .unwrap();
    let rel = out.relation().unwrap();
    let first: Vec<Value> = rel.tuples()[0].values().to_vec();
    assert_eq!(first, vec![Value::str("SSBN"), Value::Int(7250)]);
}

#[test]
fn replace_violating_domain_rolls_back() {
    let mut db = class_db();
    let mut s = Session::new();
    s.execute(&mut db, "range of c is CLASS").unwrap();
    // Class is char[4]; writing a too-long string must fail and leave the
    // relation unchanged.
    let before = db.get("CLASS").unwrap().clone();
    let res = s.execute(
        &mut db,
        r#"replace c (Class = "TOOLONGCODE") where c.Type = "SSN""#,
    );
    assert!(res.is_err());
    let after = db.get("CLASS").unwrap();
    assert_eq!(after.len(), before.len());
    assert!(after.find_by_key(&[Value::str("0201")]).is_some());
}
