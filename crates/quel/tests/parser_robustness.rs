//! Robustness: the QUEL parser and executor must fail cleanly on
//! arbitrary input, and the executor must agree with direct relational
//! operations on generated statements.

use intensio_quel::{parse, parse_script, Session};
use intensio_storage::prelude::*;
use intensio_storage::tuple;
use proptest::prelude::*;

fn db() -> Database {
    let schema = Schema::new(vec![
        Attribute::key("K", Domain::char_n(8)),
        Attribute::new("N", Domain::basic(ValueType::Int)),
    ])
    .unwrap();
    let mut r = Relation::new("T", schema);
    for i in 0..25 {
        r.insert(tuple![format!("K{i:03}"), i as i64]).unwrap();
    }
    let mut d = Database::new();
    d.create(r).unwrap();
    d
}

proptest! {
    #[test]
    fn parser_never_panics(s in "[ -~\n]{0,160}") {
        let _ = parse(&s);
        let _ = parse_script(&s);
    }

    #[test]
    fn statement_like_noise_never_panics(
        kw in prop::sample::select(vec!["range of", "retrieve", "delete", "append to", "replace"]),
        tail in "[ -~]{0,60}",
    ) {
        let _ = parse(&format!("{kw} {tail}"));
    }

    /// retrieve-with-qualification agrees with a direct count.
    #[test]
    fn retrieve_matches_oracle(bound in -3i64..30) {
        let mut d = db();
        let mut s = Session::new();
        s.execute(&mut d, "range of t is T").unwrap();
        let out = s
            .execute(&mut d, &format!("retrieve (t.K) where t.N < {bound}"))
            .unwrap();
        let expect = (0..25i64).filter(|n| *n < bound).count();
        prop_assert_eq!(out.relation().unwrap().len(), expect);
    }

    /// delete-with-qualification removes exactly the matching tuples.
    #[test]
    fn delete_matches_oracle(bound in -3i64..30) {
        let mut d = db();
        let mut s = Session::new();
        s.execute(&mut d, "range of t is T").unwrap();
        s.execute(&mut d, &format!("delete t where t.N >= {bound}"))
            .unwrap();
        let expect = (0..25i64).filter(|n| *n < bound).count();
        prop_assert_eq!(d.get("T").unwrap().len(), expect);
    }

    /// replace updates exactly the matching tuples and preserves others.
    #[test]
    fn replace_matches_oracle(pivot in 0i64..25) {
        let mut d = db();
        let mut s = Session::new();
        s.execute(&mut d, "range of t is T").unwrap();
        s.execute(
            &mut d,
            &format!("replace t (N = t.N + 100) where t.N = {pivot}"),
        )
        .unwrap();
        let rel = d.get("T").unwrap();
        let bumped = rel
            .iter()
            .filter(|t| t.get(1).as_int().unwrap() >= 100)
            .count();
        prop_assert_eq!(bumped, 1);
        prop_assert_eq!(rel.len(), 25);
    }
}
