//! Lexer and recursive-descent parser for the QUEL subset.

use crate::ast::*;
use intensio_storage::expr::{ArithOp, AttrRef, CmpOp, Expr};
use intensio_storage::ops::Aggregate;
use intensio_storage::value::Value;
use std::fmt;

/// A QUEL parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuelParseError {
    /// Description of the failure.
    pub message: String,
    /// Byte offset in the source where it occurred.
    pub offset: usize,
}

impl fmt::Display for QuelParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QUEL parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for QuelParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num {
        text: String,
        value: f64,
        is_int: bool,
    },
    LParen,
    RParen,
    Comma,
    Dot,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

type LexResult = Result<Vec<(Tok, usize)>, QuelParseError>;

fn lex(src: &str) -> LexResult {
    let mut l = Lexer {
        src: src.as_bytes(),
        pos: 0,
    };
    let mut out = Vec::new();
    while l.pos < l.src.len() {
        let start = l.pos;
        let c = l.src[l.pos] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                l.pos += 1;
            }
            '(' => {
                out.push((Tok::LParen, start));
                l.pos += 1;
            }
            ')' => {
                out.push((Tok::RParen, start));
                l.pos += 1;
            }
            ',' => {
                out.push((Tok::Comma, start));
                l.pos += 1;
            }
            '.' => {
                out.push((Tok::Dot, start));
                l.pos += 1;
            }
            '=' => {
                out.push((Tok::Eq, start));
                l.pos += 1;
            }
            '+' => {
                out.push((Tok::Plus, start));
                l.pos += 1;
            }
            '-' => {
                out.push((Tok::Minus, start));
                l.pos += 1;
            }
            '*' => {
                out.push((Tok::Star, start));
                l.pos += 1;
            }
            '/' => {
                out.push((Tok::Slash, start));
                l.pos += 1;
            }
            '!' => {
                if l.src.get(l.pos + 1) == Some(&b'=') {
                    out.push((Tok::Ne, start));
                    l.pos += 2;
                } else {
                    return Err(QuelParseError {
                        message: "expected `=` after `!`".to_string(),
                        offset: start,
                    });
                }
            }
            '<' => {
                if l.src.get(l.pos + 1) == Some(&b'=') {
                    out.push((Tok::Le, start));
                    l.pos += 2;
                } else {
                    out.push((Tok::Lt, start));
                    l.pos += 1;
                }
            }
            '>' => {
                if l.src.get(l.pos + 1) == Some(&b'=') {
                    out.push((Tok::Ge, start));
                    l.pos += 2;
                } else {
                    out.push((Tok::Gt, start));
                    l.pos += 1;
                }
            }
            '"' => {
                l.pos += 1;
                let mut s = String::new();
                loop {
                    match l.src.get(l.pos) {
                        Some(&b'"') => {
                            l.pos += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            l.pos += 1;
                        }
                        None => {
                            return Err(QuelParseError {
                                message: "unterminated string".to_string(),
                                offset: start,
                            })
                        }
                    }
                }
                out.push((Tok::Str(s), start));
            }
            d if d.is_ascii_digit() => {
                let mut text = String::new();
                let mut is_int = true;
                while l.pos < l.src.len() && (l.src[l.pos] as char).is_ascii_digit() {
                    text.push(l.src[l.pos] as char);
                    l.pos += 1;
                }
                if l.pos + 1 < l.src.len()
                    && l.src[l.pos] == b'.'
                    && (l.src[l.pos + 1] as char).is_ascii_digit()
                {
                    is_int = false;
                    text.push('.');
                    l.pos += 1;
                    while l.pos < l.src.len() && (l.src[l.pos] as char).is_ascii_digit() {
                        text.push(l.src[l.pos] as char);
                        l.pos += 1;
                    }
                }
                let value: f64 = text.parse().map_err(|_| QuelParseError {
                    message: format!("bad number {text}"),
                    offset: start,
                })?;
                out.push((
                    Tok::Num {
                        text,
                        value,
                        is_int,
                    },
                    start,
                ));
            }
            a if a.is_ascii_alphabetic() || a == '_' => {
                let mut s = String::new();
                while l.pos < l.src.len() {
                    let ch = l.src[l.pos] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        s.push(ch);
                        l.pos += 1;
                    } else if ch == '-'
                        && l.pos + 1 < l.src.len()
                        && (l.src[l.pos + 1] as char).is_ascii_alphanumeric()
                    {
                        // Hyphenated constants like BQS-04.
                        s.push(ch);
                        l.pos += 1;
                    } else {
                        break;
                    }
                }
                out.push((Tok::Ident(s), start));
            }
            other => {
                return Err(QuelParseError {
                    message: format!("unexpected character {other:?}"),
                    offset: start,
                })
            }
        }
    }
    Ok(out)
}

/// Parse one QUEL statement.
pub fn parse(src: &str) -> Result<Statement, QuelParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    if !p.at_end() {
        return Err(p.err("trailing input after statement"));
    }
    Ok(stmt)
}

/// Parse a script: a sequence of statements. Statements are recognized by
/// their leading keyword, so no separator is needed (newlines suffice);
/// an optional `;` or blank line between statements is accepted.
pub fn parse_script(src: &str) -> Result<Vec<Statement>, QuelParseError> {
    let _span = intensio_obs::Span::stage("parse.quel", intensio_obs::Stage::Parse);
    intensio_obs::inc("parse.quel");
    let mut statements = Vec::new();
    for piece in split_statements(src) {
        let trimmed = piece.trim();
        if trimmed.is_empty() {
            continue;
        }
        statements.push(parse(trimmed)?);
    }
    Ok(statements)
}

/// Split a script on statement-leading keywords.
fn split_statements(src: &str) -> Vec<String> {
    const LEADS: [&str; 5] = ["range", "retrieve", "delete", "append", "replace"];
    let mut out: Vec<String> = Vec::new();
    for raw_line in src.lines() {
        let line = raw_line.split(';').collect::<Vec<_>>().join(" ");
        let first = line.split_whitespace().next().unwrap_or("");
        if LEADS.iter().any(|k| first.eq_ignore_ascii_case(k)) {
            out.push(line.to_string());
        } else if let Some(last) = out.last_mut() {
            last.push(' ');
            last.push_str(&line);
        } else if !line.trim().is_empty() {
            out.push(line.to_string());
        }
    }
    out
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn err(&self, msg: impl Into<String>) -> QuelParseError {
        QuelParseError {
            message: msg.into(),
            offset: self.tokens.get(self.pos).map(|(_, o)| *o).unwrap_or(0),
        }
    }

    fn advance(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn accept(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), QuelParseError> {
        if self.accept(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn accept_kw(&mut self, kw: &str) -> bool {
        match self.peek() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), QuelParseError> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, QuelParseError> {
        match self.advance() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement, QuelParseError> {
        if self.accept_kw("range") {
            self.expect_kw("of")?;
            let var = self.ident()?;
            self.expect_kw("is")?;
            let relation = self.ident()?;
            return Ok(Statement::Range { var, relation });
        }
        if self.accept_kw("retrieve") {
            let into = if self.accept_kw("into") {
                Some(self.ident()?)
            } else {
                None
            };
            let unique = self.accept_kw("unique");
            self.expect(&Tok::LParen)?;
            let mut targets = vec![self.target()?];
            while self.accept(&Tok::Comma) {
                targets.push(self.target()?);
            }
            self.expect(&Tok::RParen)?;
            let qual = if self.accept_kw("where") {
                Some(self.qualification()?)
            } else {
                None
            };
            let mut sort_by = Vec::new();
            if self.accept_kw("sort") {
                self.expect_kw("by")?;
                sort_by.push(self.sort_key()?);
                while self.accept(&Tok::Comma) {
                    sort_by.push(self.sort_key()?);
                }
            }
            return Ok(Statement::Retrieve {
                into,
                unique,
                targets,
                qual,
                sort_by,
            });
        }
        if self.accept_kw("delete") {
            let var = self.ident()?;
            let qual = if self.accept_kw("where") {
                Some(self.qualification()?)
            } else {
                None
            };
            return Ok(Statement::Delete { var, qual });
        }
        if self.accept_kw("append") {
            self.expect_kw("to")?;
            let relation = self.ident()?;
            self.expect(&Tok::LParen)?;
            let mut assignments = vec![self.assignment()?];
            while self.accept(&Tok::Comma) {
                assignments.push(self.assignment()?);
            }
            self.expect(&Tok::RParen)?;
            return Ok(Statement::Append {
                relation,
                assignments,
            });
        }
        if self.accept_kw("replace") {
            let var = self.ident()?;
            self.expect(&Tok::LParen)?;
            let mut assignments = vec![self.assignment()?];
            while self.accept(&Tok::Comma) {
                assignments.push(self.assignment()?);
            }
            self.expect(&Tok::RParen)?;
            let qual = if self.accept_kw("where") {
                Some(self.qualification()?)
            } else {
                None
            };
            return Ok(Statement::Replace {
                var,
                assignments,
                qual,
            });
        }
        Err(self.err("expected range/retrieve/delete/append/replace"))
    }

    /// Target: `[name =] (aggregate | expr)`.
    fn target(&mut self) -> Result<Target, QuelParseError> {
        // Lookahead for `name =` where name is a bare identifier.
        let named = match (self.peek(), self.tokens.get(self.pos + 1).map(|(t, _)| t)) {
            (Some(Tok::Ident(name)), Some(Tok::Eq)) => Some(name.clone()),
            _ => None,
        };
        if let Some(name) = named {
            self.pos += 2;
            let expr = self.target_expr()?;
            return Ok(Target { name, expr });
        }
        let expr = self.target_expr()?;
        let name = match &expr {
            TargetExpr::Plain(e) => default_target_name(e),
            TargetExpr::Aggregate { .. } => None,
        }
        .ok_or_else(|| self.err("computed target needs an explicit name (`name = expr`)"))?;
        Ok(Target { name, expr })
    }

    /// An aggregate call `agg(expr [by attr {, attr}])` or a plain
    /// expression.
    fn target_expr(&mut self) -> Result<TargetExpr, QuelParseError> {
        let func = match self.peek() {
            Some(Tok::Ident(s)) => match s.to_ascii_lowercase().as_str() {
                "count" => Some(Aggregate::Count),
                "sum" => Some(Aggregate::Sum),
                "avg" => Some(Aggregate::Avg),
                "min" => Some(Aggregate::Min),
                "max" => Some(Aggregate::Max),
                _ => None,
            },
            _ => None,
        };
        if let Some(func) = func {
            if self.tokens.get(self.pos + 1).map(|(t, _)| t) == Some(&Tok::LParen) {
                self.pos += 2; // func and `(`
                let arg = self.additive()?;
                let mut by = Vec::new();
                if self.accept_kw("by") {
                    by.push(self.attr_ref()?);
                    while self.accept(&Tok::Comma) {
                        by.push(self.attr_ref()?);
                    }
                }
                self.expect(&Tok::RParen)?;
                return Ok(TargetExpr::Aggregate { func, arg, by });
            }
        }
        Ok(TargetExpr::Plain(self.additive()?))
    }

    fn attr_ref(&mut self) -> Result<AttrRef, QuelParseError> {
        let first = self.ident()?;
        if self.accept(&Tok::Dot) {
            let attr = self.ident()?;
            Ok(AttrRef::qualified(first, attr))
        } else {
            Ok(AttrRef::bare(first))
        }
    }

    fn assignment(&mut self) -> Result<Assignment, QuelParseError> {
        let attr = self.ident()?;
        self.expect(&Tok::Eq)?;
        let expr = self.additive()?;
        Ok(Assignment { attr, expr })
    }

    fn sort_key(&mut self) -> Result<SortKey, QuelParseError> {
        let first = self.ident()?;
        if self.accept(&Tok::Dot) {
            let attr = self.ident()?;
            Ok(SortKey {
                var: Some(first),
                attr,
            })
        } else {
            Ok(SortKey {
                var: None,
                attr: first,
            })
        }
    }

    // Qualification grammar: or > and > not > comparison > additive.
    fn qualification(&mut self) -> Result<Expr, QuelParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, QuelParseError> {
        let mut left = self.and_expr()?;
        while self.accept_kw("or") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, QuelParseError> {
        let mut left = self.not_expr()?;
        while self.accept_kw("and") {
            let right = self.not_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, QuelParseError> {
        if self.accept_kw("not") {
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, QuelParseError> {
        // Parenthesized sub-qualification vs parenthesized arithmetic:
        // try a qualification first, backtracking on failure.
        if self.peek() == Some(&Tok::LParen) {
            let save = self.pos;
            self.pos += 1;
            if let Ok(inner) = self.qualification() {
                if self.accept(&Tok::RParen) {
                    // If followed by a comparison operator, the parens
                    // grouped an operand, not a qualification.
                    if self.peek_cmp_op().is_none() {
                        return Ok(inner);
                    }
                }
            }
            self.pos = save;
        }
        let left = self.additive()?;
        let op = self
            .next_cmp_op()
            .ok_or_else(|| self.err("expected comparison operator"))?;
        let right = self.additive()?;
        Ok(Expr::Cmp {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn peek_cmp_op(&self) -> Option<CmpOp> {
        match self.peek() {
            Some(Tok::Eq) => Some(CmpOp::Eq),
            Some(Tok::Ne) => Some(CmpOp::Ne),
            Some(Tok::Lt) => Some(CmpOp::Lt),
            Some(Tok::Le) => Some(CmpOp::Le),
            Some(Tok::Gt) => Some(CmpOp::Gt),
            Some(Tok::Ge) => Some(CmpOp::Ge),
            _ => None,
        }
    }

    fn next_cmp_op(&mut self) -> Option<CmpOp> {
        let op = self.peek_cmp_op()?;
        self.pos += 1;
        Some(op)
    }

    fn additive(&mut self) -> Result<Expr, QuelParseError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => ArithOp::Add,
                Some(Tok::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, QuelParseError> {
        let mut left = self.primary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => ArithOp::Mul,
                Some(Tok::Slash) => ArithOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.primary()?;
            left = Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn primary(&mut self) -> Result<Expr, QuelParseError> {
        if self.accept(&Tok::Minus) {
            // Unary minus: negate the operand.
            let inner = self.primary()?;
            return Ok(match inner {
                Expr::Const(Value::Int(v)) => Expr::Const(Value::Int(-v)),
                Expr::Const(Value::Real(v)) => Expr::Const(Value::Real(-v)),
                other => Expr::Arith {
                    op: ArithOp::Sub,
                    left: Box::new(Expr::Const(Value::Int(0))),
                    right: Box::new(other),
                },
            });
        }
        match self.advance() {
            Some(Tok::Num {
                text,
                value,
                is_int,
            }) => Ok(Expr::Const(num_value(&text, value, is_int))),
            Some(Tok::Str(s)) => Ok(Expr::Const(Value::Str(s))),
            Some(Tok::Ident(first)) => {
                if self.accept(&Tok::Dot) {
                    let attr = self.ident()?;
                    Ok(Expr::Attr(AttrRef::qualified(first, attr)))
                } else {
                    Ok(Expr::Attr(AttrRef::bare(first)))
                }
            }
            Some(Tok::LParen) => {
                let inner = self.additive()?;
                self.expect(&Tok::RParen)?;
                Ok(inner)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Numeric literals with leading zeros keep their spelling as strings
/// (class codes like `0101`).
fn num_value(text: &str, value: f64, is_int: bool) -> Value {
    if is_int {
        if text.len() > 1 && text.starts_with('0') {
            Value::Str(text.to_string())
        } else {
            Value::Int(value as i64)
        }
    } else {
        Value::Real(value)
    }
}

fn default_target_name(expr: &Expr) -> Option<String> {
    match expr {
        Expr::Attr(a) => Some(a.name.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_range_statement() {
        let s = parse("range of r is SUBMARINE").unwrap();
        assert_eq!(
            s,
            Statement::Range {
                var: "r".to_string(),
                relation: "SUBMARINE".to_string()
            }
        );
    }

    #[test]
    fn parses_paper_step1_retrieve() {
        // §5.2.1 step 1.
        let s = parse("retrieve into S unique (r.Y, r.X) sort by r.Y").unwrap();
        match s {
            Statement::Retrieve {
                into,
                unique,
                targets,
                qual,
                sort_by,
            } => {
                assert_eq!(into.as_deref(), Some("S"));
                assert!(unique);
                assert_eq!(targets.len(), 2);
                assert_eq!(targets[0].name, "Y");
                assert!(qual.is_none());
                assert_eq!(
                    sort_by,
                    vec![SortKey {
                        var: Some("r".to_string()),
                        attr: "Y".to_string()
                    }]
                );
            }
            other => panic!("expected retrieve, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_step2_retrieve_with_where() {
        let s =
            parse("retrieve into T unique (s.Y, s.X) where (r.X = s.X and r.Y != s.Y)").unwrap();
        match s {
            Statement::Retrieve { qual: Some(q), .. } => {
                assert_eq!(q.conjuncts().len(), 2);
            }
            other => panic!("expected retrieve with qual, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_step2_delete() {
        let s = parse("delete s where (s.X = t.X and s.Y = t.Y)").unwrap();
        match s {
            Statement::Delete { var, qual } => {
                assert_eq!(var, "s");
                assert!(qual.is_some());
            }
            other => panic!("expected delete, got {other:?}"),
        }
    }

    #[test]
    fn parses_append_and_replace() {
        let s = parse(r#"append to TYPE (Type = "SSK", TypeName = "diesel sub")"#).unwrap();
        assert!(matches!(s, Statement::Append { ref assignments, .. } if assignments.len() == 2));
        let s = parse(r#"replace c (Displacement = 7000) where c.Class = "0101""#).unwrap();
        assert!(matches!(s, Statement::Replace { .. }));
    }

    #[test]
    fn named_and_computed_targets() {
        let s = parse("retrieve (total = r.A + r.B, r.C)").unwrap();
        match s {
            Statement::Retrieve { targets, .. } => {
                assert_eq!(targets[0].name, "total");
                assert!(matches!(
                    targets[0].expr,
                    TargetExpr::Plain(Expr::Arith { .. })
                ));
                assert_eq!(targets[1].name, "C");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn computed_target_requires_name() {
        assert!(parse("retrieve (r.A + r.B)").is_err());
    }

    #[test]
    fn or_and_not_precedence() {
        let s = parse("retrieve (r.A) where r.A = 1 or r.B = 2 and not r.C = 3").unwrap();
        match s {
            Statement::Retrieve { qual: Some(q), .. } => match q {
                Expr::Or(_, rhs) => {
                    assert!(matches!(*rhs, Expr::And(_, _)));
                }
                other => panic!("expected Or at top, got {other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn leading_zero_constants_stay_strings() {
        let s = parse("retrieve (r.Class) where r.Class = 0101").unwrap();
        match s {
            Statement::Retrieve {
                qual: Some(Expr::Cmp { right, .. }),
                ..
            } => {
                assert_eq!(*right, Expr::Const(Value::str("0101")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_script_splits_statements() {
        let script = r#"
            range of r is CLASS
            retrieve into S unique (r.Type, r.Displacement)
                sort by r.Type
            delete s where s.Type = "SSN"
        "#;
        let stmts = parse_script(script).unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(matches!(stmts[0], Statement::Range { .. }));
        assert!(matches!(stmts[1], Statement::Retrieve { .. }));
        assert!(matches!(stmts[2], Statement::Delete { .. }));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("range of r is X banana").is_err());
    }
}
