//! # intensio-quel
//!
//! A QUEL (the INGRES query language) subset: the statements the paper's
//! §5.2.1 rule-induction algorithm is written in — `range of`,
//! `retrieve [into] [unique] (...) [where ...] [sort by ...]`, `delete`,
//! plus `append to` and `replace` for test-bed maintenance. Executing the
//! published algorithm verbatim keeps the reproduction faithful to the
//! EQUEL/C prototype.
//!
//! ```
//! use intensio_quel::{Session, Output};
//! use intensio_storage::prelude::*;
//! use intensio_storage::tuple;
//!
//! let mut db = Database::new();
//! let schema = Schema::new(vec![
//!     Attribute::key("Class", Domain::char_n(4)),
//!     Attribute::new("Type", Domain::char_n(4)),
//! ]).unwrap();
//! let mut class = Relation::new("CLASS", schema);
//! class.insert(tuple!["0101", "SSBN"]).unwrap();
//! class.insert(tuple!["0201", "SSN"]).unwrap();
//! db.create(class).unwrap();
//!
//! let mut session = Session::new();
//! session.execute(&mut db, "range of c is CLASS").unwrap();
//! let out = session.execute(&mut db, r#"retrieve (c.Class) where c.Type = "SSN""#).unwrap();
//! assert_eq!(out.relation().unwrap().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod exec;
pub mod parser;

pub use ast::{AccessKind, Assignment, SortKey, Statement, Target};
pub use exec::{Output, QuelError, Session};
pub use parser::{parse, parse_script, QuelParseError};
