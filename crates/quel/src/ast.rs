//! Abstract syntax for the QUEL subset used by the paper's prototype
//! (§5.2.1): `range of`, `retrieve [into] [unique] ... [where] [sort by]`,
//! `delete`, `append to`, and `replace`.

use intensio_storage::expr::{AttrRef, Expr};
use intensio_storage::ops::Aggregate;

/// The computation of one retrieve target: a plain per-binding
/// expression, or an aggregate over all qualifying bindings (INGRES
/// QUEL's `count`/`sum`/`avg`/`min`/`max`, optionally grouped with
/// `by`).
#[derive(Debug, Clone, PartialEq)]
pub enum TargetExpr {
    /// A per-binding expression (`r.Y`, `r.A + r.B`).
    Plain(Expr),
    /// An aggregate: `sum(r.Salary by r.Dept)`.
    Aggregate {
        /// The aggregate function.
        func: Aggregate,
        /// The aggregated expression.
        arg: Expr,
        /// Grouping attributes (empty = one group over all bindings).
        by: Vec<AttrRef>,
    },
}

/// One item of a retrieve target list: an optional output name and an
/// expression (`r.Y` or `total = r.A + r.B`).
#[derive(Debug, Clone, PartialEq)]
pub struct Target {
    /// Output attribute name; defaults to the source attribute name.
    pub name: String,
    /// The computed expression.
    pub expr: TargetExpr,
}

/// A sort key: an output column name or a `var.attr` reference that is
/// matched against output columns by attribute name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortKey {
    /// Optional range variable (`r` in `sort by r.Y`).
    pub var: Option<String>,
    /// The attribute name.
    pub attr: String,
}

/// An assignment in `append`/`replace`: `Attr = expr`.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The target attribute.
    pub attr: String,
    /// The value expression.
    pub expr: Expr,
}

/// How a statement touches the database — the distinction a serving
/// layer needs to route requests: reads run against a shared snapshot,
/// scratch statements write only statement-created relations (safe on a
/// private copy of a snapshot), and writes must go through the
/// serialized mutation path and invalidate derived knowledge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Touches no relation contents (`range of`, plain `retrieve`).
    Read,
    /// Creates/overwrites only a result relation (`retrieve into`);
    /// existing data is untouched, so induced rules stay valid.
    Scratch,
    /// Mutates existing relations (`append`, `delete`, `replace`).
    Write,
}

impl AccessKind {
    /// Whether the statement can be answered from an immutable snapshot
    /// (possibly with a discardable private copy for scratch output).
    pub fn is_read_only(self) -> bool {
        !matches!(self, AccessKind::Write)
    }
}

/// A parsed QUEL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `range of r is RELATION`.
    Range {
        /// The range variable.
        var: String,
        /// The relation it ranges over.
        relation: String,
    },
    /// `retrieve [into T] [unique] (targets) [where qual] [sort by keys]`.
    Retrieve {
        /// Destination relation for `into`.
        into: Option<String>,
        /// Whether duplicates are eliminated.
        unique: bool,
        /// The target list.
        targets: Vec<Target>,
        /// The qualification.
        qual: Option<Expr>,
        /// The sort keys.
        sort_by: Vec<SortKey>,
    },
    /// `delete r [where qual]`.
    Delete {
        /// The range variable whose tuples are deleted.
        var: String,
        /// The qualification (may reference other range variables,
        /// existentially).
        qual: Option<Expr>,
    },
    /// `append to RELATION (Attr = expr, ...)`.
    Append {
        /// The destination relation.
        relation: String,
        /// The attribute assignments.
        assignments: Vec<Assignment>,
    },
    /// `replace r (Attr = expr, ...) [where qual]`.
    Replace {
        /// The range variable whose tuples are updated.
        var: String,
        /// The attribute assignments.
        assignments: Vec<Assignment>,
        /// The qualification.
        qual: Option<Expr>,
    },
}

impl Statement {
    /// Classify how this statement touches the database.
    pub fn access(&self) -> AccessKind {
        match self {
            Statement::Range { .. } => AccessKind::Read,
            Statement::Retrieve { into: None, .. } => AccessKind::Read,
            Statement::Retrieve { into: Some(_), .. } => AccessKind::Scratch,
            Statement::Append { .. } | Statement::Delete { .. } | Statement::Replace { .. } => {
                AccessKind::Write
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::AccessKind;
    use crate::parser::parse;

    #[test]
    fn statements_classify_by_access() {
        let cases = [
            ("range of s is SUBMARINE", AccessKind::Read),
            ("retrieve (s.Id)", AccessKind::Read),
            ("retrieve into T (s.Id)", AccessKind::Scratch),
            ("append to S (Id = \"X\")", AccessKind::Write),
            ("delete s", AccessKind::Write),
            ("replace s (Id = \"X\")", AccessKind::Write),
        ];
        for (src, want) in cases {
            let stmt = parse(src).unwrap();
            assert_eq!(stmt.access(), want, "{src}");
            assert_eq!(stmt.access().is_read_only(), want != AccessKind::Write);
        }
    }
}
