//! Abstract syntax for the QUEL subset used by the paper's prototype
//! (§5.2.1): `range of`, `retrieve [into] [unique] ... [where] [sort by]`,
//! `delete`, `append to`, and `replace`.

use intensio_storage::expr::{AttrRef, Expr};
use intensio_storage::ops::Aggregate;

/// The computation of one retrieve target: a plain per-binding
/// expression, or an aggregate over all qualifying bindings (INGRES
/// QUEL's `count`/`sum`/`avg`/`min`/`max`, optionally grouped with
/// `by`).
#[derive(Debug, Clone, PartialEq)]
pub enum TargetExpr {
    /// A per-binding expression (`r.Y`, `r.A + r.B`).
    Plain(Expr),
    /// An aggregate: `sum(r.Salary by r.Dept)`.
    Aggregate {
        /// The aggregate function.
        func: Aggregate,
        /// The aggregated expression.
        arg: Expr,
        /// Grouping attributes (empty = one group over all bindings).
        by: Vec<AttrRef>,
    },
}

/// One item of a retrieve target list: an optional output name and an
/// expression (`r.Y` or `total = r.A + r.B`).
#[derive(Debug, Clone, PartialEq)]
pub struct Target {
    /// Output attribute name; defaults to the source attribute name.
    pub name: String,
    /// The computed expression.
    pub expr: TargetExpr,
}

/// A sort key: an output column name or a `var.attr` reference that is
/// matched against output columns by attribute name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortKey {
    /// Optional range variable (`r` in `sort by r.Y`).
    pub var: Option<String>,
    /// The attribute name.
    pub attr: String,
}

/// An assignment in `append`/`replace`: `Attr = expr`.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The target attribute.
    pub attr: String,
    /// The value expression.
    pub expr: Expr,
}

/// A parsed QUEL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `range of r is RELATION`.
    Range {
        /// The range variable.
        var: String,
        /// The relation it ranges over.
        relation: String,
    },
    /// `retrieve [into T] [unique] (targets) [where qual] [sort by keys]`.
    Retrieve {
        /// Destination relation for `into`.
        into: Option<String>,
        /// Whether duplicates are eliminated.
        unique: bool,
        /// The target list.
        targets: Vec<Target>,
        /// The qualification.
        qual: Option<Expr>,
        /// The sort keys.
        sort_by: Vec<SortKey>,
    },
    /// `delete r [where qual]`.
    Delete {
        /// The range variable whose tuples are deleted.
        var: String,
        /// The qualification (may reference other range variables,
        /// existentially).
        qual: Option<Expr>,
    },
    /// `append to RELATION (Attr = expr, ...)`.
    Append {
        /// The destination relation.
        relation: String,
        /// The attribute assignments.
        assignments: Vec<Assignment>,
    },
    /// `replace r (Attr = expr, ...) [where qual]`.
    Replace {
        /// The range variable whose tuples are updated.
        var: String,
        /// The attribute assignments.
        assignments: Vec<Assignment>,
        /// The qualification.
        qual: Option<Expr>,
    },
}
