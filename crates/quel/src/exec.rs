//! Execution of QUEL statements against a [`Database`].
//!
//! A [`Session`] holds the range-variable bindings created by `range of`
//! statements, mirroring the INGRES session the paper's EQUEL prototype
//! ran inside. Multi-variable qualifications are evaluated over the
//! cartesian product of the bound relations; `delete`/`replace` treat
//! variables other than the target as existentially quantified, which is
//! exactly the semantics the §5.2.1 induction algorithm relies on.

use crate::ast::{Assignment, SortKey, Statement, Target, TargetExpr};
use crate::parser::{parse_script, QuelParseError};
use intensio_storage::catalog::Database;
use intensio_storage::domain::Domain;
use intensio_storage::error::StorageError;
use intensio_storage::expr::{AttrRef, Env, Expr};
use intensio_storage::ops;
use intensio_storage::relation::Relation;
use intensio_storage::schema::{Attribute, Schema};
use intensio_storage::tuple::Tuple;
use intensio_storage::value::Value;
use std::collections::HashMap;
use std::fmt;

/// An error from parsing or executing QUEL.
#[derive(Debug, Clone, PartialEq)]
pub enum QuelError {
    /// A parse failure.
    Parse(QuelParseError),
    /// A storage-engine failure.
    Storage(StorageError),
    /// A semantic failure (undeclared range variable, etc.).
    Semantic(String),
}

impl fmt::Display for QuelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuelError::Parse(e) => write!(f, "{e}"),
            QuelError::Storage(e) => write!(f, "{e}"),
            QuelError::Semantic(m) => write!(f, "QUEL error: {m}"),
        }
    }
}

impl std::error::Error for QuelError {}

impl From<QuelParseError> for QuelError {
    fn from(e: QuelParseError) -> Self {
        QuelError::Parse(e)
    }
}

impl From<StorageError> for QuelError {
    fn from(e: StorageError) -> Self {
        QuelError::Storage(e)
    }
}

/// The result of executing one statement.
#[derive(Debug, Clone)]
pub enum Output {
    /// `range of` produced no output.
    None,
    /// A `retrieve` without `into` returns its result relation.
    Relation(Relation),
    /// A `retrieve into` stored its result under this name.
    Stored(String),
    /// `delete`/`replace`/`append` report affected tuple counts.
    Affected(usize),
}

impl Output {
    /// The result relation, if this output carries one.
    pub fn relation(&self) -> Option<&Relation> {
        match self {
            Output::Relation(r) => Some(r),
            _ => None,
        }
    }
}

/// A QUEL session: range-variable bindings plus statement execution.
#[derive(Debug, Default, Clone)]
pub struct Session {
    ranges: HashMap<String, String>,
    /// Range variables in declaration order (for unqualified retrieves).
    order: Vec<String>,
}

impl Session {
    /// A fresh session with no range variables.
    pub fn new() -> Session {
        Session::default()
    }

    /// The relation a range variable is bound to.
    pub fn range_of(&self, var: &str) -> Option<&str> {
        self.ranges
            .get(&var.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Parse and execute a script, returning one output per statement.
    pub fn run_script(&mut self, db: &mut Database, src: &str) -> Result<Vec<Output>, QuelError> {
        let stmts = parse_script(src)?;
        let mut out = Vec::with_capacity(stmts.len());
        for s in &stmts {
            out.push(self.execute_stmt(db, s)?);
        }
        Ok(out)
    }

    /// Parse and execute a single statement.
    pub fn execute(&mut self, db: &mut Database, src: &str) -> Result<Output, QuelError> {
        let stmt = crate::parser::parse(src)?;
        self.execute_stmt(db, &stmt)
    }

    /// Execute a parsed statement.
    pub fn execute_stmt(
        &mut self,
        db: &mut Database,
        stmt: &Statement,
    ) -> Result<Output, QuelError> {
        match stmt {
            Statement::Range { var, relation } => {
                db.get(relation)?; // must exist
                let key = var.to_ascii_lowercase();
                if !self.ranges.contains_key(&key) {
                    self.order.push(key.clone());
                }
                self.ranges.insert(key, relation.clone());
                Ok(Output::None)
            }
            Statement::Retrieve {
                into,
                unique,
                targets,
                qual,
                sort_by,
            } => self.retrieve(
                db,
                into.as_deref(),
                *unique,
                targets,
                qual.as_ref(),
                sort_by,
            ),
            Statement::Delete { var, qual } => self.delete(db, var, qual.as_ref()),
            Statement::Append {
                relation,
                assignments,
            } => self.append(db, relation, assignments),
            Statement::Replace {
                var,
                assignments,
                qual,
            } => self.replace(db, var, assignments, qual.as_ref()),
        }
    }

    /// The range variables a statement touches: every qualifier mentioned
    /// in its expressions, falling back to all declared variables when
    /// only bare attribute references occur.
    fn vars_used(&self, exprs: &[&Expr], sort_by: &[SortKey]) -> Vec<String> {
        let mut vars: Vec<String> = Vec::new();
        let mut push = |v: &str| {
            let k = v.to_ascii_lowercase();
            if !vars.contains(&k) {
                vars.push(k);
            }
        };
        let mut saw_bare = false;
        for e in exprs {
            for a in e.attr_refs() {
                match &a.qualifier {
                    Some(q) => push(q),
                    None => saw_bare = true,
                }
            }
        }
        for k in sort_by {
            if let Some(v) = &k.var {
                push(v);
            }
        }
        if vars.is_empty() && saw_bare {
            self.order.clone()
        } else {
            vars
        }
    }

    fn resolve_var<'d>(
        &self,
        db: &'d Database,
        var: &str,
    ) -> Result<(&'d Relation, String), QuelError> {
        let rel_name = self
            .ranges
            .get(&var.to_ascii_lowercase())
            .ok_or_else(|| QuelError::Semantic(format!("undeclared range variable: {var}")))?;
        Ok((db.get(rel_name)?, var.to_ascii_lowercase()))
    }

    fn retrieve(
        &mut self,
        db: &mut Database,
        into: Option<&str>,
        unique: bool,
        targets: &[Target],
        qual: Option<&Expr>,
        sort_by: &[SortKey],
    ) -> Result<Output, QuelError> {
        let mut exprs: Vec<&Expr> = Vec::new();
        let mut by_refs: Vec<&intensio_storage::expr::AttrRef> = Vec::new();
        for t in targets {
            match &t.expr {
                TargetExpr::Plain(e) => exprs.push(e),
                TargetExpr::Aggregate { arg, by, .. } => {
                    exprs.push(arg);
                    by_refs.extend(by.iter());
                }
            }
        }
        if let Some(q) = qual {
            exprs.push(q);
        }
        let mut vars = self.vars_used(&exprs, sort_by);
        for r in &by_refs {
            if let Some(q) = &r.qualifier {
                let k = q.to_ascii_lowercase();
                if !vars.contains(&k) {
                    vars.push(k);
                }
            }
        }
        if vars.is_empty() {
            return Err(QuelError::Semantic(
                "retrieve references no range variables".to_string(),
            ));
        }
        let mut rels: Vec<(&Relation, String)> = Vec::with_capacity(vars.len());
        for v in &vars {
            rels.push(self.resolve_var(db, v)?);
        }

        // Validate aggregate shape: one shared `by` list; plain targets
        // must be attributes of that list.
        let has_aggregate = targets
            .iter()
            .any(|t| matches!(t.expr, TargetExpr::Aggregate { .. }));
        let shared_by: Vec<intensio_storage::expr::AttrRef> = if has_aggregate {
            let mut shared: Option<&Vec<intensio_storage::expr::AttrRef>> = None;
            for t in targets {
                if let TargetExpr::Aggregate { by, .. } = &t.expr {
                    match shared {
                        None => shared = Some(by),
                        Some(s) if s == by => {}
                        Some(_) => {
                            return Err(QuelError::Semantic(
                                "all aggregates in a retrieve must share the same `by` list"
                                    .to_string(),
                            ))
                        }
                    }
                }
            }
            let shared = shared.expect("has_aggregate").clone();
            for t in targets {
                if let TargetExpr::Plain(e) = &t.expr {
                    let ok = matches!(e, Expr::Attr(a) if shared.contains(a));
                    if !ok {
                        return Err(QuelError::Semantic(format!(
                            "plain target `{}` must be one of the aggregate `by` attributes",
                            t.name
                        )));
                    }
                }
            }
            shared
        } else {
            Vec::new()
        };

        // Nested-loop evaluation over the cartesian product.
        let mut rows: Vec<Tuple> = Vec::new();
        // Aggregate path: group key -> per-aggregate-target value lists.
        let mut groups: std::collections::BTreeMap<
            Vec<intensio_storage::value::ValueKey>,
            Vec<Vec<Value>>,
        > = std::collections::BTreeMap::new();
        let agg_targets: Vec<usize> = targets
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.expr, TargetExpr::Aggregate { .. }))
            .map(|(i, _)| i)
            .collect();
        let mut indices = vec![0usize; rels.len()];
        'outer: loop {
            // Bind current tuple of each variable.
            if rels.iter().any(|(r, _)| r.is_empty()) {
                break;
            }
            let mut env = Env::empty();
            for (i, (rel, alias)) in rels.iter().enumerate() {
                env.push(alias, rel.schema(), &rel.tuples()[indices[i]]);
            }
            let keep = match qual {
                Some(q) => q.eval_bool(&env)?,
                None => true,
            };
            if keep {
                if has_aggregate {
                    let mut key = Vec::with_capacity(shared_by.len());
                    for b in &shared_by {
                        key.push(intensio_storage::value::ValueKey(env.lookup(b)?.clone()));
                    }
                    let entry = groups
                        .entry(key)
                        .or_insert_with(|| vec![Vec::new(); agg_targets.len()]);
                    for (slot, &ti) in agg_targets.iter().enumerate() {
                        if let TargetExpr::Aggregate { arg, .. } = &targets[ti].expr {
                            entry[slot].push(arg.eval(&env)?);
                        }
                    }
                } else {
                    let mut vals = Vec::with_capacity(targets.len());
                    for t in targets {
                        if let TargetExpr::Plain(e) = &t.expr {
                            vals.push(e.eval(&env)?);
                        }
                    }
                    rows.push(Tuple::new(vals));
                }
            }
            // Odometer increment.
            for i in (0..rels.len()).rev() {
                indices[i] += 1;
                if indices[i] < rels[i].0.len() {
                    continue 'outer;
                }
                indices[i] = 0;
            }
            break;
        }

        // Materialize aggregate groups as rows.
        if has_aggregate {
            for (key, arg_lists) in &groups {
                let mut vals = Vec::with_capacity(targets.len());
                let mut slot = 0usize;
                for t in targets {
                    match &t.expr {
                        TargetExpr::Plain(e) => {
                            let Expr::Attr(a) = e else {
                                unreachable!("validated")
                            };
                            let pos = shared_by.iter().position(|b| b == a).expect("validated");
                            vals.push(key[pos].0.clone());
                        }
                        TargetExpr::Aggregate { func, .. } => {
                            vals.push(
                                ops::aggregate(*func, &arg_lists[slot]).map_err(QuelError::from)?,
                            );
                            slot += 1;
                        }
                    }
                }
                rows.push(Tuple::new(vals));
            }
            // An aggregate with no `by` over zero bindings still yields
            // one row (count = 0, others NULL).
            if groups.is_empty() && shared_by.is_empty() {
                let mut vals = Vec::with_capacity(targets.len());
                for t in targets {
                    if let TargetExpr::Aggregate { func, .. } = &t.expr {
                        vals.push(ops::aggregate(*func, &[]).map_err(QuelError::from)?);
                    }
                }
                rows.push(Tuple::new(vals));
            }
        }

        let schema = self.result_schema(db, targets, &rows)?;
        let mut result = Relation::new("result", schema);
        for t in rows {
            result.insert(t)?;
        }
        let mut result = if unique { ops::unique(&result) } else { result };
        if !sort_by.is_empty() {
            let names: Vec<&str> = sort_by.iter().map(|k| k.attr.as_str()).collect();
            result.sort_by_names(&names)?;
        }
        match into {
            Some(name) => {
                result.set_name(name);
                db.create_or_replace(result);
                Ok(Output::Stored(name.to_string()))
            }
            None => {
                result.set_name("result");
                Ok(Output::Relation(result))
            }
        }
    }

    /// Output schema: plain attribute targets keep the source attribute's
    /// domain; computed targets take the basic type of their first
    /// non-null value.
    fn result_schema(
        &self,
        db: &Database,
        targets: &[Target],
        rows: &[Tuple],
    ) -> Result<Schema, QuelError> {
        let mut attrs = Vec::with_capacity(targets.len());
        for (i, t) in targets.iter().enumerate() {
            let domain = match &t.expr {
                TargetExpr::Plain(Expr::Attr(a)) => self.attr_domain(db, a),
                _ => None,
            };
            let domain = domain.unwrap_or_else(|| {
                let ty = rows
                    .iter()
                    .find_map(|r| r.get(i).value_type())
                    .unwrap_or(intensio_storage::value::ValueType::Str);
                Domain::basic(ty)
            });
            attrs.push(Attribute::new(t.name.clone(), domain));
        }
        Schema::new(attrs).map_err(QuelError::from)
    }

    fn attr_domain(&self, db: &Database, a: &AttrRef) -> Option<Domain> {
        let rel_name = match &a.qualifier {
            Some(q) => self.ranges.get(&q.to_ascii_lowercase())?,
            None => {
                // A bare attribute: find the unique declared relation
                // holding it.
                let mut found: Option<&String> = None;
                for v in &self.order {
                    let rel = self.ranges.get(v)?;
                    if db
                        .get(rel)
                        .ok()
                        .and_then(|r| r.schema().index_of(&a.name))
                        .is_some()
                    {
                        if found.is_some() {
                            return None;
                        }
                        found = Some(rel);
                    }
                }
                found?
            }
        };
        let rel = db.get(rel_name).ok()?;
        let idx = rel.schema().index_of(&a.name)?;
        Some(rel.schema().attr(idx).domain().clone())
    }

    fn delete(
        &mut self,
        db: &mut Database,
        var: &str,
        qual: Option<&Expr>,
    ) -> Result<Output, QuelError> {
        let target_rel_name = self
            .ranges
            .get(&var.to_ascii_lowercase())
            .ok_or_else(|| QuelError::Semantic(format!("undeclared range variable: {var}")))?
            .clone();

        let qual = match qual {
            None => {
                let n = db.get_mut(&target_rel_name)?.delete_where(|_| true);
                return Ok(Output::Affected(n));
            }
            Some(q) => q,
        };

        // Other variables are existentially quantified: snapshot their
        // relations before mutating.
        let vars = self.vars_used(&[qual], &[]);
        let mut others: Vec<(Relation, String)> = Vec::new();
        for v in &vars {
            if v.eq_ignore_ascii_case(var) {
                continue;
            }
            let (rel, alias) = self.resolve_var(db, v)?;
            others.push((rel.clone(), alias));
        }

        let target_alias = var.to_ascii_lowercase();
        let mut eval_err: Option<StorageError> = None;
        let target = db.get_mut(&target_rel_name)?;
        let target_schema = target.schema_ref();
        let n = target.delete_where(|t| {
            if eval_err.is_some() {
                return false;
            }
            match exists_binding(
                qual,
                &target_alias,
                &target_schema,
                t,
                &others,
                0,
                &mut Vec::new(),
            ) {
                Ok(b) => b,
                Err(e) => {
                    eval_err = Some(e);
                    false
                }
            }
        });
        if let Some(e) = eval_err {
            return Err(e.into());
        }
        Ok(Output::Affected(n))
    }

    fn append(
        &mut self,
        db: &mut Database,
        relation: &str,
        assignments: &[Assignment],
    ) -> Result<Output, QuelError> {
        let env = Env::empty();
        let mut values: Vec<(String, Value)> = Vec::with_capacity(assignments.len());
        for a in assignments {
            values.push((a.attr.clone(), a.expr.eval(&env)?));
        }
        let rel = db.get_mut(relation)?;
        let mut vals = vec![Value::Null; rel.schema().arity()];
        for (name, v) in values {
            let idx = rel.schema().require(relation, &name)?;
            vals[idx] = v;
        }
        rel.insert(Tuple::new(vals))?;
        Ok(Output::Affected(1))
    }

    fn replace(
        &mut self,
        db: &mut Database,
        var: &str,
        assignments: &[Assignment],
        qual: Option<&Expr>,
    ) -> Result<Output, QuelError> {
        let target_rel_name = self
            .ranges
            .get(&var.to_ascii_lowercase())
            .ok_or_else(|| QuelError::Semantic(format!("undeclared range variable: {var}")))?
            .clone();
        let alias = var.to_ascii_lowercase();

        // Snapshot other variables for existential qualification.
        let mut others: Vec<(Relation, String)> = Vec::new();
        if let Some(q) = qual {
            for v in self.vars_used(&[q], &[]) {
                if v.eq_ignore_ascii_case(var) {
                    continue;
                }
                let (rel, a) = self.resolve_var(db, &v)?;
                others.push((rel.clone(), a));
            }
        }

        let original = db.get(&target_rel_name)?.clone();
        let mut updated = Vec::with_capacity(original.len());
        let mut affected = 0usize;
        for t in original.iter() {
            let matches = match qual {
                None => true,
                Some(q) => exists_binding(
                    q,
                    &alias,
                    &original.schema_ref(),
                    t,
                    &others,
                    0,
                    &mut Vec::new(),
                )?,
            };
            if !matches {
                updated.push(t.clone());
                continue;
            }
            affected += 1;
            let mut vals = t.values().to_vec();
            let env = Env::single(&alias, original.schema(), t);
            for a in assignments {
                let idx = original.schema().require(&target_rel_name, &a.attr)?;
                vals[idx] = a.expr.eval(&env)?;
            }
            updated.push(Tuple::new(vals));
        }
        let target = db.get_mut(&target_rel_name)?;
        if let Err(e) = target.replace_all(updated) {
            // Restore on failure (transactional behaviour).
            *target = original;
            return Err(e.into());
        }
        Ok(Output::Affected(affected))
    }
}

/// Does some binding of `others` satisfy `qual` for the fixed target
/// tuple? (Existential semantics of QUEL delete/replace.)
fn exists_binding(
    qual: &Expr,
    target_alias: &str,
    target_schema: &intensio_storage::schema::SchemaRef,
    target_tuple: &Tuple,
    others: &[(Relation, String)],
    depth: usize,
    chosen: &mut Vec<usize>,
) -> Result<bool, StorageError> {
    if depth == others.len() {
        let mut env = Env::single(target_alias, target_schema, target_tuple);
        for (i, (rel, alias)) in others.iter().enumerate() {
            env.push(alias, rel.schema(), &rel.tuples()[chosen[i]]);
        }
        return qual.eval_bool(&env);
    }
    let (rel, _) = &others[depth];
    for i in 0..rel.len() {
        chosen.push(i);
        let found = exists_binding(
            qual,
            target_alias,
            target_schema,
            target_tuple,
            others,
            depth + 1,
            chosen,
        )?;
        chosen.pop();
        if found {
            return Ok(true);
        }
    }
    Ok(false)
}
