//! A dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! maps the `proptest` dependency name to this crate by path. It
//! reimplements exactly the surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! * range, tuple, string-pattern, `prop::collection::vec`,
//!   `prop::sample::select`, [`prop_oneof!`], `.prop_map`, and
//!   `any::<T>()` strategies.
//!
//! Unlike real proptest there is no shrinking: failures report the
//! generated inputs via the assertion message only. Generation is
//! deterministic per test name, so failures reproduce exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod pattern;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of proptest's `prop::` paths
/// (`prop::collection::vec`, `prop::sample::select`).
pub mod prop {
    pub mod collection {
        //! Collection strategies.
        pub use crate::strategy::{vec, VecStrategy};
    }
    pub mod sample {
        //! Sampling strategies.
        pub use crate::strategy::{select, Select};
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property: plain `assert!` (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// A strategy choosing uniformly among the argument strategies (which
/// must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define property tests: each `fn name(bindings) { body }` becomes a
/// regular test running the body over generated inputs.
///
/// Bindings are `pattern in strategy` or `name: Type` (which uses
/// `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __pt_cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __pt_rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __pt_case in 0..__pt_cfg.cases {
                let _ = __pt_case;
                $crate::__proptest_bind! { __pt_rng, $($params)* }
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $p:pat in $e:expr, $($rest:tt)*) => {
        let $p = $crate::strategy::Strategy::generate(&($e), &mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
    ($rng:ident, $p:pat in $e:expr) => {
        let $p = $crate::strategy::Strategy::generate(&($e), &mut $rng);
    };
    ($rng:ident, $i:ident : $t:ty, $($rest:tt)*) => {
        let $i = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$t>(),
            &mut $rng,
        );
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
    ($rng:ident, $i:ident : $t:ty) => {
        let $i = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$t>(),
            &mut $rng,
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = i64> {
        (0i64..50).prop_map(|v| v * 2)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(a in -5i64..5, b in 0u8..4, c in 1usize..6) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!(b < 4);
            prop_assert!((1..6).contains(&c));
        }

        #[test]
        fn tuples_and_vecs(xs in prop::collection::vec((0i64..25, 0u8..4), 1..60)) {
            prop_assert!(!xs.is_empty() && xs.len() < 60);
            for (x, y) in &xs {
                prop_assert!((0..25).contains(x));
                prop_assert!(*y < 4);
            }
        }

        #[test]
        fn bool_annotation_and_map(flag: bool, v in evens()) {
            prop_assert!(matches!(flag, true | false));
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn oneof_selects_an_arm(v in prop_oneof![0i64..10, 100i64..110]) {
            prop_assert!((0..10).contains(&v) || (100..110).contains(&v));
        }

        #[test]
        fn select_picks_member(kw in prop::sample::select(vec!["alpha", "beta"])) {
            prop_assert!(kw == "alpha" || kw == "beta");
        }

        #[test]
        fn patterns_generate_matching_strings(s in "[A-Za-z][A-Za-z0-9_]{0,8}") {
            let mut chars = s.chars();
            prop_assert!(chars.next().unwrap().is_ascii_alphabetic());
            prop_assert!(s.len() <= 9);
            prop_assert!(chars.all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        /// Doc comments on property functions must be accepted.
        #[test]
        fn config_is_honored(_x in 0i64..10) {
            // Body runs 7 times; nothing to assert beyond not panicking.
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("fixed");
        let mut b = TestRng::for_test("fixed");
        let s = crate::strategy::Strategy::generate(&"[ -~]{0,40}", &mut a);
        let t = crate::strategy::Strategy::generate(&"[ -~]{0,40}", &mut b);
        assert_eq!(s, t);
    }
}
