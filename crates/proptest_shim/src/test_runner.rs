//! Test configuration and the deterministic generation RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 128 }
    }
}

/// The RNG driving generation: deterministic per test name, so a
/// failing property reproduces on re-run.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// An RNG seeded from the test's name.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name, mixed with a fixed tag.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h ^ 0x1991_0226_cafe_f00d),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniform index below `bound` (> 0).
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// A uniform sample from the signed 128-bit interval `[lo, hi)`.
    pub fn in_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u128;
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        lo + (wide % span) as i128
    }
}
