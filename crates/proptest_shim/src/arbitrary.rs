//! `any::<T>()`: full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        char::from(b' ' + (rng.below(95)) as u8)
    }
}
