//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (for [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Clone, F: Clone> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: self.f.clone(),
        }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A uniform choice among type-erased strategies ([`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union of the given arms (at least one).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_range_i128(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.in_range_i128(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// String strategies from a regex-like pattern (see [`crate::pattern`]).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::pattern::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::pattern::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:ident $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

/// A `Vec` of `size.start..size.end` elements drawn from `elem`
/// (`prop::collection::vec`).
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = Strategy::generate(&self.size, rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// The result of [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    items: Vec<T>,
}

/// A uniform choice among concrete values (`prop::sample::select`).
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select needs at least one item");
    Select { items }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len())].clone()
    }
}
