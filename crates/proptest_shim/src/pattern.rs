//! String generation from the regex subset the workspace's tests use:
//! concatenations of character classes (`[a-z0-9_]`, ranges and
//! literals) and literal characters, each with an optional repetition
//! (`{n}`, `{m,n}`, `?`, `*`, `+`).
//!
//! Patterns arrive as Rust string literals, so escapes like `\n` are
//! already real characters by the time they get here.

use crate::test_runner::TestRng;

/// One pattern element: the candidate characters and repetition bounds.
struct Piece {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Generate a string matching `pattern`.
///
/// Panics on constructs outside the supported subset, which is a test
/// authoring error, not a runtime condition.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for p in &pieces {
        let n = if p.min == p.max {
            p.min
        } else {
            p.min + rng.below(p.max - p.min + 1)
        };
        for _ in 0..n {
            out.push(p.chars[rng.below(p.chars.len())]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let candidates = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                set
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                vec![unescape(c)]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = parse_repetition(&chars, &mut i, pattern);
        pieces.push(Piece {
            chars: candidates,
            min,
            max,
        });
    }
    pieces
}

/// Parse a `[...]` class body starting at `i` (past the `[`); returns
/// the candidate set and the index past the closing `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            unescape(
                *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
            )
        } else {
            chars[i]
        };
        i += 1;
        // `a-z` range (a trailing `-` is a literal).
        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
            let hi = if chars[i + 1] == '\\' {
                i += 1;
                unescape(chars[i + 1])
            } else {
                chars[i + 1]
            };
            i += 2;
            assert!(c <= hi, "inverted class range in pattern {pattern:?}");
            for x in c..=hi {
                set.push(x);
            }
        } else {
            set.push(c);
        }
    }
    assert!(
        i < chars.len(),
        "unterminated character class in pattern {pattern:?}"
    );
    assert!(
        !set.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    (set, i + 1)
}

/// Parse an optional repetition after a piece, advancing `i`.
fn parse_repetition(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| *i + p)
                .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"));
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => {
                    let lo = lo.trim().parse().expect("repetition lower bound");
                    let hi = hi.trim().parse().expect("repetition upper bound");
                    assert!(lo <= hi, "inverted repetition in pattern {pattern:?}");
                    (lo, hi)
                }
                None => {
                    let n = body.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_ranges_and_repetition() {
        let mut rng = TestRng::for_test("class");
        for _ in 0..200 {
            let s = generate("[A-Za-z][A-Za-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
        }
    }

    #[test]
    fn printable_ascii_class() {
        let mut rng = TestRng::for_test("ascii");
        for _ in 0..200 {
            let s = generate("[ -~\n]{0,160}", &mut rng);
            assert!(s.len() <= 160);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = TestRng::for_test("lit");
        let s = generate("ab{3}c?", &mut rng);
        assert!(s.starts_with("abbb"));
        assert!(s.len() == 4 || s.len() == 5);
    }

    #[test]
    fn class_containing_quote_and_newline() {
        let mut rng = TestRng::for_test("quote");
        for _ in 0..100 {
            let s = generate("[a-zA-Z ,\"\n]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_alphabetic()
                || c == ' '
                || c == ','
                || c == '"'
                || c == '\n'));
        }
    }
}
