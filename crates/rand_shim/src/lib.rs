//! A dependency-free stand-in for the `rand` crate, providing exactly
//! the API subset this workspace uses (`StdRng::seed_from_u64`,
//! `gen_range`, `gen_bool`, slice `shuffle`/`choose`).
//!
//! The build environment has no access to crates.io, so the workspace
//! maps the `rand` dependency name to this crate by path. The generator
//! is deterministic (xoshiro256**, seeded via splitmix64) but its
//! streams differ from upstream `rand`; seeded data sets are stable
//! across runs of *this* workspace, which is all the callers rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`Range` or `RangeInclusive`).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 high bits give a uniform f64 in [0, 1).
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction, mirroring `rand::SeedableRng`'s
/// `seed_from_u64` entry point.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Ranges a generator can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` below `bound` (> 0) without modulo bias worth worrying
/// about at the workspace's sample counts (Lemire-style rejection).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // span == 0 would mean the full u64 domain; none of the
                // supported types reach it with lo <= hi.
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Shuffling and random choice over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly chosen element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(0x1991);
        let mut b = StdRng::seed_from_u64(0x1991);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&w));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [1, 2, 3];
        for _ in 0..10 {
            assert!(xs.contains(xs.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
