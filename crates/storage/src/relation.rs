//! Relations: named collections of tuples over a schema.

use crate::error::{Result, StorageError};
use crate::index::AttributeIndex;
use crate::schema::{Schema, SchemaRef};
use crate::tuple::Tuple;
use crate::value::{Value, ValueKey};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::{Arc, RwLock};

/// An in-memory relation (table).
///
/// Tuples preserve insertion order, matching the paper's QUEL prototype
/// where physical order is only changed by explicit `sort by`. If the
/// schema declares key attributes, key uniqueness is enforced on insert.
#[derive(Debug)]
pub struct Relation {
    name: String,
    schema: SchemaRef,
    tuples: Vec<Tuple>,
    key_indices: Vec<usize>,
    key_set: BTreeSet<Vec<ValueKey>>,
    /// Mutation counter for lazy index invalidation.
    version: u64,
    /// Lazily built secondary indexes: attr (lowercase) -> (version,
    /// index). Interior mutability lets read-only scans build and reuse
    /// indexes; the lock is uncontended in single-threaded use.
    indexes: RwLock<HashMap<String, (u64, AttributeIndex)>>,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Relation {
            name: self.name.clone(),
            schema: Arc::clone(&self.schema),
            tuples: self.tuples.clone(),
            key_indices: self.key_indices.clone(),
            key_set: self.key_set.clone(),
            version: self.version,
            indexes: RwLock::new(
                self.indexes
                    .read()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone(),
            ),
        }
    }
}

impl Relation {
    /// Create an empty relation.
    pub fn new(name: impl Into<String>, schema: Schema) -> Relation {
        Self::with_schema_ref(name, Arc::new(schema))
    }

    /// Create an empty relation sharing an existing schema handle.
    pub fn with_schema_ref(name: impl Into<String>, schema: SchemaRef) -> Relation {
        let key_indices = schema.key_indices();
        Relation {
            name: name.into(),
            schema,
            tuples: Vec::new(),
            key_indices,
            key_set: BTreeSet::new(),
            version: 0,
            indexes: RwLock::new(HashMap::new()),
        }
    }

    /// Bump the mutation counter (invalidates cached indexes lazily).
    fn touch(&mut self) {
        self.version = self.version.wrapping_add(1);
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the relation (used by `retrieve into`).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// A shared handle to the schema.
    pub fn schema_ref(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterate over tuples in physical order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The tuples as a slice.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Insert a tuple, validating schema conformance and key uniqueness.
    pub fn insert(&mut self, tuple: Tuple) -> Result<()> {
        tuple.check(&self.schema)?;
        if !self.key_indices.is_empty() {
            let key = tuple.key(&self.key_indices);
            if !self.key_set.insert(key.clone()) {
                return Err(StorageError::DuplicateKey {
                    relation: self.name.clone(),
                    key: format!("{}", tuple.project(&self.key_indices)),
                });
            }
        }
        self.tuples.push(tuple);
        self.touch();
        Ok(())
    }

    /// Insert many tuples; stops at the first error.
    pub fn insert_all<I: IntoIterator<Item = Tuple>>(&mut self, tuples: I) -> Result<()> {
        for t in tuples {
            self.insert(t)?;
        }
        Ok(())
    }

    /// Insert without key/domain validation. For internal operators whose
    /// outputs are derived (projections lose keys, values already checked).
    pub(crate) fn push_unchecked(&mut self, tuple: Tuple) {
        self.tuples.push(tuple);
        self.touch();
    }

    /// Delete all tuples matching `pred`; returns the number removed.
    pub fn delete_where<F: FnMut(&Tuple) -> bool>(&mut self, mut pred: F) -> usize {
        let before = self.tuples.len();
        self.tuples.retain(|t| !pred(t));
        let removed = before - self.tuples.len();
        if removed > 0 {
            if !self.key_indices.is_empty() {
                self.rebuild_key_set();
            }
            self.touch();
        }
        removed
    }

    /// Remove every tuple.
    pub fn clear(&mut self) {
        self.tuples.clear();
        self.key_set.clear();
        self.touch();
    }

    /// Replace the relation's contents with `tuples`, validating each
    /// (used by updates that rewrite tuples in place). On error the
    /// relation is left empty of the failing suffix; callers treat the
    /// operation as transactional by cloning first.
    pub fn replace_all<I: IntoIterator<Item = Tuple>>(&mut self, tuples: I) -> Result<()> {
        self.clear();
        self.insert_all(tuples)
    }

    fn rebuild_key_set(&mut self) {
        self.key_set = self
            .tuples
            .iter()
            .map(|t| t.key(&self.key_indices))
            .collect();
    }

    /// Whether a tuple with the given key values exists.
    pub fn contains_key(&self, key: &[Value]) -> bool {
        if self.key_indices.is_empty() {
            return false;
        }
        let key: Vec<ValueKey> = key.iter().cloned().map(ValueKey).collect();
        self.key_set.contains(&key)
    }

    /// Find the first tuple whose key attributes equal `key`.
    pub fn find_by_key(&self, key: &[Value]) -> Option<&Tuple> {
        if self.key_indices.len() != key.len() {
            return None;
        }
        self.tuples.iter().find(|t| {
            self.key_indices
                .iter()
                .zip(key)
                .all(|(&i, v)| t.get(i).sem_eq(v))
        })
    }

    /// Sort tuples in place by the listed attribute positions (ascending,
    /// using the total value order).
    pub fn sort_by_indices(&mut self, indices: &[usize]) {
        self.touch();
        self.tuples.sort_by(|a, b| {
            for &i in indices {
                let o = a.get(i).total_cmp(b.get(i));
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    /// Sort tuples in place by attribute names.
    pub fn sort_by_names(&mut self, names: &[&str]) -> Result<()> {
        let mut indices = Vec::with_capacity(names.len());
        for n in names {
            indices.push(self.schema.require(&self.name, n)?);
        }
        self.sort_by_indices(&indices);
        Ok(())
    }

    /// Run `f` over the (lazily built, cached) secondary index on
    /// `attr`. The index is rebuilt when the relation has mutated since
    /// it was last built.
    ///
    /// A panic in an earlier caller's `f` poisons the cache lock; the
    /// cache holds only derived data (rebuildable from `tuples`), so
    /// poisoning is recovered rather than propagated — one panicked
    /// reader must not wedge every future query of a long-lived
    /// service.
    pub fn with_index<R>(&self, attr: &str, f: impl FnOnce(&AttributeIndex) -> R) -> Result<R> {
        let idx = self.schema.require(&self.name, attr)?;
        let key = attr.to_ascii_lowercase();
        {
            let cache = self.indexes.read().unwrap_or_else(|e| e.into_inner());
            if let Some((v, index)) = cache.get(&key) {
                if *v == self.version {
                    return Ok(f(index));
                }
            }
        }
        let built = AttributeIndex::build(self.tuples.iter().map(|t| t.get(idx)));
        let mut cache = self.indexes.write().unwrap_or_else(|e| e.into_inner());
        let entry = cache.entry(key).insert_entry((self.version, built));
        Ok(f(&entry.get().1))
    }

    /// Positions of tuples whose `attr` equals `v`, via the secondary
    /// index.
    pub fn index_lookup(&self, attr: &str, v: &Value) -> Result<Vec<usize>> {
        self.with_index(attr, |idx| idx.lookup(v).to_vec())
    }

    /// Positions of tuples whose `attr` lies within the bounds
    /// (`(value, inclusive)`), via the secondary index, in value order.
    pub fn index_range(
        &self,
        attr: &str,
        lo: Option<(&Value, bool)>,
        hi: Option<(&Value, bool)>,
    ) -> Result<Vec<usize>> {
        self.with_index(attr, |idx| idx.range(lo, hi))
    }

    /// The distinct values of one attribute, sorted by the total order.
    pub fn distinct_values(&self, attr: &str) -> Result<Vec<Value>> {
        let idx = self.schema.require(&self.name, attr)?;
        let mut set: BTreeSet<ValueKey> = BTreeSet::new();
        for t in &self.tuples {
            set.insert(ValueKey(t.get(idx).clone()));
        }
        Ok(set.into_iter().map(|k| k.0).collect())
    }

    /// Column accessor: all values of one attribute in physical order.
    pub fn column(&self, attr: &str) -> Result<Vec<Value>> {
        let idx = self.schema.require(&self.name, attr)?;
        Ok(self.tuples.iter().map(|t| t.get(idx).clone()).collect())
    }

    /// Render as an ASCII table in the style of the paper's example
    /// answers (header row, separator, data rows).
    pub fn to_table(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .attributes()
            .iter()
            .map(|a| a.name().to_string())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rows: Vec<Vec<String>> = self
            .tuples
            .iter()
            .map(|t| t.values().iter().map(|v| v.render_bare()).collect())
            .collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:<w$} |"));
            }
            line
        };
        let sep = {
            let mut line = String::from("+");
            for w in &widths {
                line.push_str(&"-".repeat(w + 2));
                line.push('+');
            }
            line
        };
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&fmt_row(&headers, &widths));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out.push_str(&sep);
        out
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} {}", self.name, self.schema)?;
        f.write_str(&self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::schema::Attribute;
    use crate::tuple;

    fn submarine() -> Relation {
        let schema = Schema::new(vec![
            Attribute::key("Id", Domain::char_n(7)),
            Attribute::new("Name", Domain::char_n(20)),
            Attribute::new("Class", Domain::char_n(4)),
        ])
        .unwrap();
        Relation::new("SUBMARINE", schema)
    }

    #[test]
    fn insert_and_len() {
        let mut r = submarine();
        r.insert(tuple!["SSBN730", "Rhode Island", "0101"]).unwrap();
        r.insert(tuple!["SSN582", "Bonefish", "0215"]).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut r = submarine();
        r.insert(tuple!["SSBN730", "Rhode Island", "0101"]).unwrap();
        let err = r.insert(tuple!["SSBN730", "Impostor", "0101"]).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKey { .. }));
    }

    #[test]
    fn delete_where_updates_key_set() {
        let mut r = submarine();
        r.insert(tuple!["SSBN730", "Rhode Island", "0101"]).unwrap();
        let removed = r.delete_where(|t| t.get(0) == &Value::str("SSBN730"));
        assert_eq!(removed, 1);
        // Key is free again after delete.
        r.insert(tuple!["SSBN730", "Rhode Island", "0101"]).unwrap();
    }

    #[test]
    fn find_by_key() {
        let mut r = submarine();
        r.insert(tuple!["SSN582", "Bonefish", "0215"]).unwrap();
        let t = r.find_by_key(&[Value::str("SSN582")]).unwrap();
        assert_eq!(t.get(1), &Value::str("Bonefish"));
        assert!(r.find_by_key(&[Value::str("NOPE")]).is_none());
    }

    #[test]
    fn sort_and_distinct() {
        let mut r = submarine();
        r.insert(tuple!["SSN592", "Snook", "0209"]).unwrap();
        r.insert(tuple!["SSBN130", "Typhoon", "1301"]).unwrap();
        r.insert(tuple!["SSN582", "Bonefish", "0209"]).unwrap();
        r.sort_by_names(&["Id"]).unwrap();
        assert_eq!(r.tuples()[0].get(0), &Value::str("SSBN130"));
        let classes = r.distinct_values("Class").unwrap();
        assert_eq!(classes, vec![Value::str("0209"), Value::str("1301")]);
    }

    #[test]
    fn table_rendering_contains_headers_and_rows() {
        let mut r = submarine();
        r.insert(tuple!["SSN582", "Bonefish", "0215"]).unwrap();
        let table = r.to_table();
        assert!(table.contains("| Id "));
        assert!(table.contains("Bonefish"));
    }

    #[test]
    fn arity_violation_rejected() {
        let mut r = submarine();
        assert!(r.insert(tuple!["only-one"]).is_err());
    }

    #[test]
    fn index_cache_recovers_from_poisoned_lock() {
        let mut r = submarine();
        r.insert(tuple!["SSBN730", "Rhode Island", "0101"]).unwrap();
        r.insert(tuple!["SSN582", "Bonefish", "0215"]).unwrap();
        // Poison the cache lock: panic inside the index closure.
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = r.with_index("Class", |_| panic!("reader died"));
        }));
        assert!(poisoned.is_err());
        // Later readers must still get correct answers.
        let hits = r.index_lookup("Class", &Value::str("0215")).unwrap();
        assert_eq!(hits, vec![1]);
        let range = r
            .index_range("Class", Some((&Value::str("0000"), true)), None)
            .unwrap();
        assert_eq!(range.len(), 2);
    }

    #[test]
    fn index_cache_survives_concurrent_poisoning_hammer() {
        let mut r = submarine();
        r.insert(tuple!["SSBN730", "Rhode Island", "0101"]).unwrap();
        r.insert(tuple!["SSN582", "Bonefish", "0215"]).unwrap();
        r.insert(tuple!["SSN592", "Snook", "0209"]).unwrap();
        let r = &r;
        // Poisoner threads repeatedly kill readers inside the index
        // closure while reader threads hammer lookups; every answer
        // must stay correct throughout — poisoning is invisible.
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    for _ in 0..50 {
                        let dead = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let _ = r.with_index("Class", |_| panic!("reader died"));
                        }));
                        assert!(dead.is_err());
                    }
                });
            }
            for _ in 0..4 {
                s.spawn(move || {
                    for _ in 0..200 {
                        let hits = r.index_lookup("Class", &Value::str("0215")).unwrap();
                        assert_eq!(hits, vec![1]);
                        let range = r
                            .index_range("Class", Some((&Value::str("0000"), true)), None)
                            .unwrap();
                        assert_eq!(range.len(), 3);
                    }
                });
            }
        });
        // And the cache still answers correctly after the storm.
        let hits = r.index_lookup("Class", &Value::str("0101")).unwrap();
        assert_eq!(hits, vec![0]);
    }
}
