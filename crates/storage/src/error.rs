//! Error types for the storage engine.

use std::fmt;

/// Errors produced by the relational storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum StorageError {
    /// A value did not match the type expected by its attribute or operation.
    TypeMismatch {
        expected: String,
        found: String,
        context: String,
    },
    /// A relation name was not found in the catalog.
    UnknownRelation(String),
    /// An attribute name was not found in a schema.
    UnknownAttribute { relation: String, attribute: String },
    /// A relation with this name already exists.
    DuplicateRelation(String),
    /// A tuple violated the primary-key uniqueness constraint.
    DuplicateKey { relation: String, key: String },
    /// A value fell outside its attribute's domain.
    DomainViolation {
        attribute: String,
        value: String,
        domain: String,
    },
    /// A tuple had the wrong number of values for its schema.
    ArityMismatch { expected: usize, found: usize },
    /// A literal could not be parsed as the requested type.
    ParseValue { text: String, ty: String },
    /// An invalid calendar date was constructed.
    InvalidDate { year: i32, month: u32, day: u32 },
    /// Two values of incomparable types were compared.
    Incomparable { left: String, right: String },
    /// A malformed CSV row or file.
    Csv(String),
    /// A fault injected by an armed failpoint (`intensio-fault`); never
    /// produced in normal operation.
    Injected(String),
    /// Any other invariant violation, with a description.
    Invalid(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TypeMismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, found {found}"
            ),
            StorageError::UnknownRelation(name) => write!(f, "unknown relation: {name}"),
            StorageError::UnknownAttribute {
                relation,
                attribute,
            } => write!(f, "unknown attribute {attribute} in relation {relation}"),
            StorageError::DuplicateRelation(name) => {
                write!(f, "relation already exists: {name}")
            }
            StorageError::DuplicateKey { relation, key } => {
                write!(f, "duplicate key {key} in relation {relation}")
            }
            StorageError::DomainViolation {
                attribute,
                value,
                domain,
            } => write!(
                f,
                "value {value} for attribute {attribute} violates domain {domain}"
            ),
            StorageError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "arity mismatch: expected {expected} values, found {found}"
                )
            }
            StorageError::ParseValue { text, ty } => {
                write!(f, "cannot parse {text:?} as {ty}")
            }
            StorageError::InvalidDate { year, month, day } => {
                write!(f, "invalid date: {year:04}-{month:02}-{day:02}")
            }
            StorageError::Incomparable { left, right } => {
                write!(f, "cannot compare {left} with {right}")
            }
            StorageError::Csv(msg) => write!(f, "csv error: {msg}"),
            StorageError::Injected(msg) => write!(f, "{msg}"),
            StorageError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<intensio_fault::InjectedFault> for StorageError {
    fn from(f: intensio_fault::InjectedFault) -> StorageError {
        StorageError::Injected(f.to_string())
    }
}

/// Convenience result alias used throughout the storage engine.
pub type Result<T> = std::result::Result<T, StorageError>;
