//! Secondary indexes over relation attributes.
//!
//! An index maps attribute values to tuple positions, supporting exact
//! lookups and range scans. Indexes are owned by the relation, built on
//! demand, and invalidated by any mutation (inserts, deletes, updates,
//! sorting) — the next lookup rebuilds them lazily. The SQL executor
//! uses them for equality restriction push-down and as prebuilt join
//! sides.

use crate::value::{Value, ValueKey};
use std::collections::BTreeMap;
use std::ops::Bound;

/// A sorted index from attribute values to tuple positions.
#[derive(Debug, Clone, Default)]
pub struct AttributeIndex {
    map: BTreeMap<ValueKey, Vec<usize>>,
    /// Tuple count the index was built against (staleness check).
    built_for: usize,
}

impl AttributeIndex {
    /// Build an index over a column of values.
    pub fn build<'a, I: Iterator<Item = &'a Value>>(column: I) -> AttributeIndex {
        let mut map: BTreeMap<ValueKey, Vec<usize>> = BTreeMap::new();
        let mut n = 0usize;
        for (i, v) in column.enumerate() {
            n += 1;
            if v.is_null() {
                continue; // nulls never satisfy predicates
            }
            map.entry(ValueKey(v.clone())).or_default().push(i);
        }
        AttributeIndex { map, built_for: n }
    }

    /// Tuple count the index was built against.
    pub fn built_for(&self) -> usize {
        self.built_for
    }

    /// Positions of tuples with the exact value.
    pub fn lookup(&self, v: &Value) -> &[usize] {
        self.map
            .get(&ValueKey(v.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Positions of tuples whose value lies in `[lo, hi]`-style bounds,
    /// in value order.
    pub fn range(&self, lo: Option<(&Value, bool)>, hi: Option<(&Value, bool)>) -> Vec<usize> {
        // Provably empty bounds (lo > hi, or a shared endpoint that is
        // excluded on either side) return nothing; `BTreeMap::range`
        // would panic on them.
        if let (Some((l, li)), Some((h, hi_incl))) = (lo, hi) {
            match l.total_cmp(h) {
                std::cmp::Ordering::Greater => return Vec::new(),
                std::cmp::Ordering::Equal if !(li && hi_incl) => return Vec::new(),
                _ => {}
            }
        }
        let lo_bound = match lo {
            None => Bound::Unbounded,
            Some((v, true)) => Bound::Included(ValueKey(v.clone())),
            Some((v, false)) => Bound::Excluded(ValueKey(v.clone())),
        };
        let hi_bound = match hi {
            None => Bound::Unbounded,
            Some((v, true)) => Bound::Included(ValueKey(v.clone())),
            Some((v, false)) => Bound::Excluded(ValueKey(v.clone())),
        };
        let mut out = Vec::new();
        for (_, positions) in self.map.range((lo_bound, hi_bound)) {
            out.extend_from_slice(positions);
        }
        out
    }

    /// Number of distinct indexed values.
    pub fn distinct(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AttributeIndex {
        let values = [
            Value::Int(5),
            Value::Int(3),
            Value::Int(5),
            Value::Null,
            Value::Int(9),
        ];
        AttributeIndex::build(values.iter())
    }

    #[test]
    fn exact_lookup() {
        let idx = sample();
        assert_eq!(idx.lookup(&Value::Int(5)), &[0, 2]);
        assert_eq!(idx.lookup(&Value::Int(3)), &[1]);
        assert!(idx.lookup(&Value::Int(4)).is_empty());
        assert_eq!(idx.built_for(), 5);
        assert_eq!(idx.distinct(), 3);
    }

    #[test]
    fn nulls_not_indexed() {
        let idx = sample();
        assert!(idx.lookup(&Value::Null).is_empty());
    }

    #[test]
    fn range_scan() {
        let idx = sample();
        let v3 = Value::Int(3);
        let v9 = Value::Int(9);
        assert_eq!(
            idx.range(Some((&v3, true)), Some((&v9, false))),
            vec![1, 0, 2]
        );
        assert_eq!(idx.range(None, Some((&v3, true))), vec![1]);
        assert_eq!(idx.range(Some((&v9, false)), None), Vec::<usize>::new());
    }

    #[test]
    fn cross_type_range_uses_total_order() {
        let values = [Value::Int(1), Value::str("a"), Value::Int(2)];
        let idx = AttributeIndex::build(values.iter());
        // Numbers sort before strings in the total order.
        let all = idx.range(None, None);
        assert_eq!(all, vec![0, 2, 1]);
    }
}
