//! A minimal proleptic-Gregorian calendar date.
//!
//! The KER model of the paper lists `date` among the basic domains
//! (Appendix A), so the storage engine supports it as a first-class value
//! type. Dates are stored as `(year, month, day)` and ordered by their day
//! number from the civil epoch, computed with Howard Hinnant's
//! `days_from_civil` algorithm.

use crate::error::{Result, StorageError};
use std::fmt;
use std::str::FromStr;

/// A calendar date in the proleptic Gregorian calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Date {
    year: i32,
    month: u32,
    day: u32,
}

impl Date {
    /// Construct a date, validating month and day-of-month.
    pub fn new(year: i32, month: u32, day: u32) -> Result<Self> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return Err(StorageError::InvalidDate { year, month, day });
        }
        Ok(Date { year, month, day })
    }

    /// The year component.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// The month component (1-12).
    pub fn month(&self) -> u32 {
        self.month
    }

    /// The day-of-month component (1-based).
    pub fn day(&self) -> u32 {
        self.day
    }

    /// Days since 1970-01-01 (may be negative).
    pub fn days_from_epoch(&self) -> i64 {
        days_from_civil(self.year, self.month, self.day)
    }

    /// Construct a date from a day count since 1970-01-01.
    pub fn from_days_from_epoch(days: i64) -> Self {
        let (year, month, day) = civil_from_days(days);
        Date { year, month, day }
    }

    /// The date `n` days after this one (negative `n` goes backwards).
    pub fn plus_days(&self, n: i64) -> Self {
        Self::from_days_from_epoch(self.days_from_epoch() + n)
    }

    /// Signed number of days from `other` to `self`.
    pub fn days_since(&self, other: &Date) -> i64 {
        self.days_from_epoch() - other.days_from_epoch()
    }
}

impl PartialOrd for Date {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Date {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.year, self.month, self.day).cmp(&(other.year, other.month, other.day))
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl FromStr for Date {
    type Err = StorageError;

    /// Parse an ISO `YYYY-MM-DD` date string.
    fn from_str(s: &str) -> Result<Self> {
        let err = || StorageError::ParseValue {
            text: s.to_string(),
            ty: "date".to_string(),
        };
        let mut parts = s.splitn(3, '-');
        let year: i32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let month: u32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let day: u32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        Date::new(year, month, day)
    }
}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(year) => 29,
        2 => 28,
        _ => 0,
    }
}

/// Days since 1970-01-01 for a civil date (Hinnant's algorithm).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Civil date for a day count since 1970-01-01 (Hinnant's algorithm).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m as u32, d as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        let d = Date::new(1970, 1, 1).unwrap();
        assert_eq!(d.days_from_epoch(), 0);
    }

    #[test]
    fn known_day_numbers() {
        assert_eq!(Date::new(2000, 3, 1).unwrap().days_from_epoch(), 11017);
        assert_eq!(Date::new(1969, 12, 31).unwrap().days_from_epoch(), -1);
    }

    #[test]
    fn roundtrip_day_numbers() {
        for days in [-100_000, -1, 0, 1, 59, 60, 365, 366, 100_000] {
            let d = Date::from_days_from_epoch(days);
            assert_eq!(d.days_from_epoch(), days, "roundtrip failed for {days}");
        }
    }

    #[test]
    fn rejects_invalid_dates() {
        assert!(Date::new(2021, 2, 29).is_err());
        assert!(Date::new(2021, 13, 1).is_err());
        assert!(Date::new(2021, 0, 1).is_err());
        assert!(Date::new(2021, 4, 31).is_err());
        assert!(Date::new(2020, 2, 29).is_ok());
    }

    #[test]
    fn ordering_follows_calendar() {
        let a = Date::new(1981, 6, 30).unwrap();
        let b = Date::new(1981, 7, 1).unwrap();
        assert!(a < b);
        assert_eq!(b.days_since(&a), 1);
    }

    #[test]
    fn parse_and_display() {
        let d: Date = "1981-06-30".parse().unwrap();
        assert_eq!(d.to_string(), "1981-06-30");
        assert!("1981-6".parse::<Date>().is_err());
        assert!("not-a-date".parse::<Date>().is_err());
    }

    #[test]
    fn plus_days_crosses_month_and_year() {
        let d = Date::new(1999, 12, 31).unwrap();
        assert_eq!(d.plus_days(1).to_string(), "2000-01-01");
        assert_eq!(d.plus_days(-365).to_string(), "1998-12-31");
    }
}
