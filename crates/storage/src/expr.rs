//! Expressions and predicates evaluated against tuples.
//!
//! Both the QUEL executor (paper §5.2.1) and the SQL executor (paper §6)
//! lower their qualification clauses to this AST. Expressions are
//! evaluated against an [`Env`]: a stack of `(alias, schema, tuple)`
//! frames, one per range variable / FROM relation.

use crate::error::{Result, StorageError};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Whether `ord` (left vs right) satisfies the operator.
    pub fn matches(&self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with sides swapped (`a < b` ⇔ `b > a`).
    pub fn flip(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation (`NOT (a < b)` ⇔ `a >= b`).
    pub fn negate(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        })
    }
}

/// A reference to an attribute, optionally qualified by a range variable
/// or relation alias (`r.Displacement` or bare `Displacement`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttrRef {
    /// The range variable / relation alias, if written.
    pub qualifier: Option<String>,
    /// The attribute name.
    pub name: String,
}

impl AttrRef {
    /// A qualified reference `q.name`.
    pub fn qualified(q: impl Into<String>, name: impl Into<String>) -> AttrRef {
        AttrRef {
            qualifier: Some(q.into()),
            name: name.into(),
        }
    }

    /// An unqualified reference `name`.
    pub fn bare(name: impl Into<String>) -> AttrRef {
        AttrRef {
            qualifier: None,
            name: name.into(),
        }
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// An attribute reference resolved at evaluation time.
    Attr(AttrRef),
    /// A comparison producing a boolean.
    #[allow(missing_docs)]
    Cmp {
        op: CmpOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic over numeric operands.
    #[allow(missing_docs)]
    Arith {
        op: ArithOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
}

impl Expr {
    /// Shorthand: `attr op value`.
    pub fn cmp_value(attr: AttrRef, op: CmpOp, value: impl Into<Value>) -> Expr {
        Expr::Cmp {
            op,
            left: Box::new(Expr::Attr(attr)),
            right: Box::new(Expr::Const(value.into())),
        }
    }

    /// Shorthand: `left_attr = right_attr` (a join condition).
    pub fn eq_attrs(left: AttrRef, right: AttrRef) -> Expr {
        Expr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(Expr::Attr(left)),
            right: Box::new(Expr::Attr(right)),
        }
    }

    /// Conjoin a list of expressions; `None` for an empty list.
    pub fn conjoin(exprs: Vec<Expr>) -> Option<Expr> {
        exprs
            .into_iter()
            .reduce(|a, b| Expr::And(Box::new(a), Box::new(b)))
    }

    /// Collect the conjuncts of a chain of `And` nodes.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// All attribute references occurring in the expression.
    pub fn attr_refs(&self) -> Vec<&AttrRef> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a AttrRef>) {
            match e {
                Expr::Const(_) => {}
                Expr::Attr(a) => out.push(a),
                Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
                Expr::And(a, b) | Expr::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Expr::Not(a) => walk(a, out),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Evaluate to a value under `env`.
    pub fn eval(&self, env: &Env<'_>) -> Result<Value> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Attr(a) => env.lookup(a).cloned(),
            Expr::Cmp { op, left, right } => {
                let l = left.eval(env)?;
                let r = right.eval(env)?;
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Int(i64::from(op.matches(l.compare(&r)?))))
            }
            Expr::And(a, b) => {
                let l = a.eval_bool(env)?;
                let r = b.eval_bool(env)?;
                Ok(Value::Int(i64::from(l && r)))
            }
            Expr::Or(a, b) => {
                let l = a.eval_bool(env)?;
                let r = b.eval_bool(env)?;
                Ok(Value::Int(i64::from(l || r)))
            }
            Expr::Not(a) => Ok(Value::Int(i64::from(!a.eval_bool(env)?))),
            Expr::Arith { op, left, right } => {
                let l = left.eval(env)?;
                let r = right.eval(env)?;
                arith(*op, &l, &r)
            }
        }
    }

    /// Evaluate as a predicate. `Null` results are false (a tuple with a
    /// missing value never satisfies a qualification).
    pub fn eval_bool(&self, env: &Env<'_>) -> Result<bool> {
        match self.eval(env)? {
            Value::Null => Ok(false),
            Value::Int(v) => Ok(v != 0),
            other => Err(StorageError::TypeMismatch {
                expected: "boolean".to_string(),
                found: other.to_string(),
                context: "predicate".to_string(),
            }),
        }
    }
}

fn arith(op: ArithOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    let err = || StorageError::TypeMismatch {
        expected: "numeric operands".to_string(),
        found: format!("{l} {op} {r}"),
        context: "arithmetic".to_string(),
    };
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(match op {
            ArithOp::Add => Value::Int(a.wrapping_add(*b)),
            ArithOp::Sub => Value::Int(a.wrapping_sub(*b)),
            ArithOp::Mul => Value::Int(a.wrapping_mul(*b)),
            ArithOp::Div => {
                if *b == 0 {
                    return Err(StorageError::Invalid("division by zero".to_string()));
                }
                Value::Int(a / b)
            }
        }),
        _ => {
            let a = l.as_real().ok_or_else(err)?;
            let b = r.as_real().ok_or_else(err)?;
            Ok(Value::Real(match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => a / b,
            }))
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Attr(a) => write!(f, "{a}"),
            Expr::Cmp { op, left, right } => write!(f, "{left} {op} {right}"),
            Expr::And(a, b) => write!(f, "({a} and {b})"),
            Expr::Or(a, b) => write!(f, "({a} or {b})"),
            Expr::Not(a) => write!(f, "not ({a})"),
            Expr::Arith { op, left, right } => write!(f, "({left} {op} {right})"),
        }
    }
}

/// One frame of an evaluation environment: a range variable bound to the
/// current tuple of a relation.
#[derive(Debug, Clone, Copy)]
pub struct Frame<'a> {
    /// The range variable / alias.
    pub alias: &'a str,
    /// The relation's schema.
    pub schema: &'a Schema,
    /// The tuple currently bound.
    pub tuple: &'a Tuple,
}

/// An evaluation environment: an ordered set of frames.
#[derive(Debug, Default)]
pub struct Env<'a> {
    frames: Vec<Frame<'a>>,
}

impl<'a> Env<'a> {
    /// An environment with a single frame.
    pub fn single(alias: &'a str, schema: &'a Schema, tuple: &'a Tuple) -> Env<'a> {
        Env {
            frames: vec![Frame {
                alias,
                schema,
                tuple,
            }],
        }
    }

    /// An empty environment (constants only).
    pub fn empty() -> Env<'a> {
        Env { frames: Vec::new() }
    }

    /// Add a frame.
    pub fn push(&mut self, alias: &'a str, schema: &'a Schema, tuple: &'a Tuple) {
        self.frames.push(Frame {
            alias,
            schema,
            tuple,
        });
    }

    /// Resolve an attribute reference.
    ///
    /// A qualified reference looks up its alias (case-insensitive); a bare
    /// reference must resolve in exactly one frame, otherwise it is
    /// ambiguous.
    pub fn lookup(&self, attr: &AttrRef) -> Result<&Value> {
        match &attr.qualifier {
            Some(q) => {
                let frame = self
                    .frames
                    .iter()
                    .find(|f| f.alias.eq_ignore_ascii_case(q))
                    .ok_or_else(|| StorageError::UnknownRelation(q.clone()))?;
                let idx = frame.schema.require(frame.alias, &attr.name)?;
                Ok(frame.tuple.get(idx))
            }
            None => {
                let mut found: Option<&Value> = None;
                for f in &self.frames {
                    if let Some(idx) = f.schema.index_of(&attr.name) {
                        if found.is_some() {
                            return Err(StorageError::Invalid(format!(
                                "ambiguous attribute: {}",
                                attr.name
                            )));
                        }
                        found = Some(f.tuple.get(idx));
                    }
                }
                found.ok_or_else(|| StorageError::UnknownAttribute {
                    relation: "<any>".to_string(),
                    attribute: attr.name.clone(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::schema::{Attribute, Schema};
    use crate::tuple;
    use crate::value::ValueType;

    fn class_schema() -> Schema {
        Schema::new(vec![
            Attribute::key("Class", Domain::char_n(4)),
            Attribute::new("Type", Domain::char_n(4)),
            Attribute::new("Displacement", Domain::basic(ValueType::Int)),
        ])
        .unwrap()
    }

    #[test]
    fn comparison_predicate() {
        let schema = class_schema();
        let t = tuple!["0101", "SSBN", 16600];
        let env = Env::single("c", &schema, &t);
        let e = Expr::cmp_value(AttrRef::qualified("c", "Displacement"), CmpOp::Gt, 8000);
        assert!(e.eval_bool(&env).unwrap());
        let e2 = Expr::cmp_value(AttrRef::bare("Type"), CmpOp::Eq, "SSN");
        assert!(!e2.eval_bool(&env).unwrap());
    }

    #[test]
    fn and_or_not() {
        let schema = class_schema();
        let t = tuple!["0101", "SSBN", 16600];
        let env = Env::single("c", &schema, &t);
        let a = Expr::cmp_value(AttrRef::bare("Type"), CmpOp::Eq, "SSBN");
        let b = Expr::cmp_value(AttrRef::bare("Displacement"), CmpOp::Lt, 10000);
        let and = Expr::And(Box::new(a.clone()), Box::new(b.clone()));
        let or = Expr::Or(Box::new(a.clone()), Box::new(b.clone()));
        let not = Expr::Not(Box::new(b));
        assert!(!and.eval_bool(&env).unwrap());
        assert!(or.eval_bool(&env).unwrap());
        assert!(not.eval_bool(&env).unwrap());
    }

    #[test]
    fn null_never_satisfies() {
        let schema = Schema::new(vec![Attribute::new("X", Domain::basic(ValueType::Int))]).unwrap();
        let t = Tuple::new(vec![Value::Null]);
        let env = Env::single("r", &schema, &t);
        let e = Expr::cmp_value(AttrRef::bare("X"), CmpOp::Eq, Value::Null);
        assert!(!e.eval_bool(&env).unwrap());
        let e2 = Expr::cmp_value(AttrRef::bare("X"), CmpOp::Lt, 100);
        assert!(!e2.eval_bool(&env).unwrap());
    }

    #[test]
    fn arithmetic() {
        let env = Env::empty();
        let e = Expr::Arith {
            op: ArithOp::Add,
            left: Box::new(Expr::Const(Value::Int(2))),
            right: Box::new(Expr::Const(Value::Real(0.5))),
        };
        assert_eq!(e.eval(&env).unwrap(), Value::Real(2.5));
        let div0 = Expr::Arith {
            op: ArithOp::Div,
            left: Box::new(Expr::Const(Value::Int(1))),
            right: Box::new(Expr::Const(Value::Int(0))),
        };
        assert!(div0.eval(&env).is_err());
    }

    #[test]
    fn multi_frame_lookup_and_ambiguity() {
        let sub_schema = Schema::new(vec![
            Attribute::key("Id", Domain::char_n(7)),
            Attribute::new("Class", Domain::char_n(4)),
        ])
        .unwrap();
        let cls_schema = class_schema();
        let sub = tuple!["SSBN730", "0101"];
        let cls = tuple!["0101", "SSBN", 16600];
        let mut env = Env::single("s", &sub_schema, &sub);
        env.push("c", &cls_schema, &cls);

        // Join condition SUBMARINE.CLASS = CLASS.CLASS.
        let join = Expr::eq_attrs(
            AttrRef::qualified("s", "Class"),
            AttrRef::qualified("c", "Class"),
        );
        assert!(join.eval_bool(&env).unwrap());

        // Bare "Class" is ambiguous across frames.
        let e = Expr::Attr(AttrRef::bare("Class"));
        assert!(e.eval(&env).is_err());
        // Bare "Displacement" is unique.
        let d = Expr::Attr(AttrRef::bare("Displacement"));
        assert_eq!(d.eval(&env).unwrap(), Value::Int(16600));
    }

    #[test]
    fn conjuncts_flatten() {
        let a = Expr::cmp_value(AttrRef::bare("A"), CmpOp::Eq, 1);
        let b = Expr::cmp_value(AttrRef::bare("B"), CmpOp::Eq, 2);
        let c = Expr::cmp_value(AttrRef::bare("C"), CmpOp::Eq, 3);
        let e = Expr::conjoin(vec![a, b, c]).unwrap();
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn op_flip_negate() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.negate(), CmpOp::Gt);
        assert!(CmpOp::Ge.matches(Ordering::Equal));
        assert!(!CmpOp::Ne.matches(Ordering::Equal));
    }
}
