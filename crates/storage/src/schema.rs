//! Relation schemas: named, typed, optionally key attributes.

use crate::domain::Domain;
use crate::error::{Result, StorageError};
use crate::value::ValueType;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// One attribute of a relation schema.
#[derive(Debug, Clone)]
pub struct Attribute {
    name: String,
    domain: Domain,
    key: bool,
}

impl Attribute {
    /// A non-key attribute.
    pub fn new(name: impl Into<String>, domain: Domain) -> Attribute {
        Attribute {
            name: name.into(),
            domain,
            key: false,
        }
    }

    /// A key attribute (`has key:` in KER).
    pub fn key(name: impl Into<String>, domain: Domain) -> Attribute {
        Attribute {
            name: name.into(),
            domain,
            key: true,
        }
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The attribute's basic value type.
    pub fn value_type(&self) -> ValueType {
        self.domain.base()
    }

    /// Whether this attribute participates in the primary key.
    pub fn is_key(&self) -> bool {
        self.key
    }
}

/// An ordered list of attributes with case-insensitive name lookup.
///
/// Attribute names in the paper appear in mixed case (`ShipId`, `SHIPID`,
/// `Id`); lookups are case-insensitive while the declared spelling is
/// preserved for display.
#[derive(Debug, Clone)]
pub struct Schema {
    attrs: Vec<Attribute>,
    by_name: HashMap<String, usize>,
}

/// A cheaply clonable shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema from attributes; names must be unique
    /// (case-insensitively).
    pub fn new(attrs: Vec<Attribute>) -> Result<Schema> {
        let mut by_name = HashMap::with_capacity(attrs.len());
        for (i, a) in attrs.iter().enumerate() {
            if by_name.insert(a.name.to_ascii_lowercase(), i).is_some() {
                return Err(StorageError::Invalid(format!(
                    "duplicate attribute name: {}",
                    a.name
                )));
            }
        }
        Ok(Schema { attrs, by_name })
    }

    /// The attributes, in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Position of an attribute by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    /// Position of an attribute, or an error naming the relation.
    pub fn require(&self, relation: &str, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| StorageError::UnknownAttribute {
                relation: relation.to_string(),
                attribute: name.to_string(),
            })
    }

    /// The attribute at a position.
    pub fn attr(&self, idx: usize) -> &Attribute {
        &self.attrs[idx]
    }

    /// Positions of the key attributes, in declaration order.
    pub fn key_indices(&self) -> Vec<usize> {
        self.attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.key)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether the schema declares any key attribute.
    pub fn has_key(&self) -> bool {
        self.attrs.iter().any(|a| a.key)
    }

    /// A schema with the given attributes projected out, preserving order
    /// of `indices`. Key flags are dropped (a projection loses keyness).
    // Infallible by construction: a subset of a valid schema's attributes
    // keeps names unique, so `Schema::new` cannot reject it.
    #[allow(clippy::expect_used)]
    pub fn project(&self, indices: &[usize]) -> Schema {
        let attrs = indices
            .iter()
            .map(|&i| {
                let a = &self.attrs[i];
                Attribute::new(a.name.clone(), a.domain.clone())
            })
            .collect();
        Schema::new(attrs).expect("projection of valid schema is valid")
    }

    /// Concatenate two schemas for a join result; colliding names are
    /// prefixed with the relation aliases.
    // Infallible by construction: colliding names are alias-prefixed
    // before `Schema::new` sees them.
    #[allow(clippy::expect_used)]
    pub fn join(&self, self_alias: &str, other: &Schema, other_alias: &str) -> Schema {
        let mut attrs = Vec::with_capacity(self.arity() + other.arity());
        for a in &self.attrs {
            let name = if other.index_of(&a.name).is_some() {
                format!("{self_alias}.{}", a.name)
            } else {
                a.name.clone()
            };
            attrs.push(Attribute::new(name, a.domain.clone()));
        }
        for a in &other.attrs {
            let name = if self.index_of(&a.name).is_some() {
                format!("{other_alias}.{}", a.name)
            } else {
                a.name.clone()
            };
            attrs.push(Attribute::new(name, a.domain.clone()));
        }
        Schema::new(attrs).expect("join schema names are disambiguated")
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if a.key {
                write!(f, "*")?;
            }
            write!(f, "{}: {}", a.name, a.domain.name())?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueType;

    fn sample() -> Schema {
        Schema::new(vec![
            Attribute::key("Id", Domain::char_n(7)),
            Attribute::new("Name", Domain::char_n(20)),
            Attribute::new("Class", Domain::char_n(4)),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("id"), Some(0));
        assert_eq!(s.index_of("NAME"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::new(vec![
            Attribute::new("A", Domain::basic(ValueType::Int)),
            Attribute::new("a", Domain::basic(ValueType::Int)),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn key_indices() {
        let s = sample();
        assert_eq!(s.key_indices(), vec![0]);
        assert!(s.has_key());
    }

    #[test]
    fn projection_keeps_order() {
        let s = sample();
        let p = s.project(&[2, 0]);
        assert_eq!(p.attr(0).name(), "Class");
        assert_eq!(p.attr(1).name(), "Id");
        assert!(!p.has_key());
    }

    #[test]
    fn join_disambiguates_collisions() {
        let a = sample();
        let b = Schema::new(vec![
            Attribute::key("Class", Domain::char_n(4)),
            Attribute::new("Type", Domain::char_n(4)),
        ])
        .unwrap();
        let j = a.join("s", &b, "c");
        assert_eq!(j.arity(), 5);
        assert!(j.index_of("s.Class").is_some());
        assert!(j.index_of("c.Class").is_some());
        assert!(j.index_of("Type").is_some());
    }

    #[test]
    fn require_names_relation_in_error() {
        let s = sample();
        let err = s.require("SUBMARINE", "Draft").unwrap_err();
        assert_eq!(
            err.to_string(),
            "unknown attribute Draft in relation SUBMARINE"
        );
    }
}
