//! Directory persistence: save and load a whole [`Database`] as a
//! directory of CSV files plus a schema manifest.
//!
//! The paper's §5.2.2 requires that "a database and its associated rule
//! relations can be relocated together"; this module provides the
//! relocation vehicle. Layout:
//!
//! ```text
//! <dir>/
//!   _schema.csv          one row per attribute:
//!                        (Relation, Position, Attribute, IsKey, Type, CharLen)
//!   <RELATION>.csv       data, one file per relation
//! ```
//!
//! Domain range/set constraints are not persisted (they live in the KER
//! schema, which travels as source text); `char[n]` widths are, because
//! they affect value validation on load.

use crate::catalog::Database;
use crate::csv::{from_csv, to_csv};
use crate::domain::Domain;
use crate::error::{Result, StorageError};
use crate::relation::Relation;
use crate::schema::{Attribute, Schema};
use crate::tuple::Tuple;
use crate::value::{Value, ValueType};
use std::fs;
use std::path::Path;

fn schema_manifest_schema() -> Result<Schema> {
    Schema::new(vec![
        Attribute::new("Relation", Domain::basic(ValueType::Str)),
        Attribute::new("Position", Domain::basic(ValueType::Int)),
        Attribute::new("Attribute", Domain::basic(ValueType::Str)),
        Attribute::new("IsKey", Domain::basic(ValueType::Int)),
        Attribute::new("Type", Domain::basic(ValueType::Str)),
        Attribute::new("CharLen", Domain::basic(ValueType::Int)),
    ])
    .map_err(|e| StorageError::Invalid(format!("manifest schema: {e}")))
}

/// Serialize the catalog's schemas into the manifest relation.
fn manifest_of(db: &Database) -> Result<Relation> {
    let mut m = Relation::new("_schema", schema_manifest_schema()?);
    for rel in db.relations() {
        for (pos, a) in rel.schema().attributes().iter().enumerate() {
            let char_len = a
                .domain()
                .constraints()
                .iter()
                .find_map(|c| match c {
                    crate::domain::DomainConstraint::CharLen(n) => Some(*n as i64),
                    _ => None,
                })
                .unwrap_or(0);
            m.insert(Tuple::new(vec![
                Value::str(rel.name()),
                Value::Int(pos as i64),
                Value::str(a.name()),
                Value::Int(i64::from(a.is_key())),
                Value::str(a.value_type().keyword()),
                Value::Int(char_len),
            ]))?;
        }
    }
    Ok(m)
}

fn io_err(e: std::io::Error) -> StorageError {
    StorageError::Invalid(format!("io error: {e}"))
}

/// Write one file and flush it to stable storage before returning.
fn write_sync(path: &Path, contents: &str) -> Result<()> {
    let mut f = fs::File::create(path).map_err(io_err)?;
    std::io::Write::write_all(&mut f, contents.as_bytes()).map_err(io_err)?;
    f.sync_all().map_err(io_err)
}

/// Flush a directory entry itself (best effort — not all filesystems
/// support syncing directories).
fn sync_dir(path: &Path) {
    if let Ok(d) = fs::File::open(path) {
        let _ = d.sync_all();
    }
}

/// The hidden siblings [`save_database`]'s rename dance leaves next to
/// `dir`: `.{name}.{marker}-{pid}` directories, any pid.
fn hidden_siblings(parent: &Path, name: &str, marker: &str) -> Vec<std::path::PathBuf> {
    let prefix = format!(".{name}.{marker}-");
    let mut out = Vec::new();
    if let Ok(entries) = fs::read_dir(parent) {
        for entry in entries.flatten() {
            if entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with(&prefix))
            {
                out.push(entry.path());
            }
        }
    }
    out
}

/// Save a database to a directory: the full layout is staged in a
/// temporary sibling directory, synced, and renamed into place. A crash
/// mid-save never leaves a torn mix — readers see the old save, the new
/// save, or (in the brief window between the two renames) no directory
/// plus an `.old-*` sibling that [`load_database`] falls back to.
/// Saves to one destination are single-writer: stale `.saving-*` and
/// `.old-*` siblings from a crashed process are swept here.
pub fn save_database(db: &Database, dir: &Path) -> Result<()> {
    let manifest = manifest_of(db)?;

    let parent = dir.parent().unwrap_or_else(|| Path::new("."));
    let name = dir
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| StorageError::Invalid(format!("bad save path {}", dir.display())))?;
    if !parent.as_os_str().is_empty() {
        fs::create_dir_all(parent).map_err(io_err)?;
    }
    for stale in hidden_siblings(parent, name, "saving") {
        let _ = fs::remove_dir_all(&stale);
    }
    let staging = parent.join(format!(".{name}.saving-{}", std::process::id()));
    fs::create_dir_all(&staging).map_err(io_err)?;

    let staged = (|| -> Result<()> {
        write_sync(&staging.join("_schema.csv"), &to_csv(&manifest))?;
        for rel in db.relations() {
            write_sync(&staging.join(format!("{}.csv", rel.name())), &to_csv(rel))?;
        }
        Ok(())
    })();
    if let Err(e) = staged {
        let _ = fs::remove_dir_all(&staging);
        return Err(e);
    }
    sync_dir(&staging);

    // Swap in. `rename` won't replace a non-empty directory, so an
    // existing save is moved aside first and only deleted once the new
    // one is in place. A crash between the two renames leaves nothing
    // at `dir`, but the previous save survives as the `.old-*` sibling
    // and `load_database` consults it — the worst case is reading the
    // previous save, never a torn one.
    let old = parent.join(format!(".{name}.old-{}", std::process::id()));
    let _ = fs::remove_dir_all(&old);
    let had_old = dir.exists();
    if had_old {
        fs::rename(dir, &old).map_err(io_err)?;
    }
    if let Err(e) = fs::rename(&staging, dir) {
        // Try to put the old save back before reporting failure.
        if had_old {
            let _ = fs::rename(&old, dir);
        }
        let _ = fs::remove_dir_all(&staging);
        return Err(io_err(e));
    }
    // The new save is in place; every `.old-*` sibling (ours, or a
    // crashed process's with another pid) is now stale.
    for stale in hidden_siblings(parent, name, "old") {
        let _ = fs::remove_dir_all(&stale);
    }
    sync_dir(parent);
    Ok(())
}

/// Load a database previously written by [`save_database`]. When `dir`
/// itself is missing but a crash left an `.old-*` sibling behind (the
/// window between `save_database`'s two renames), the newest such
/// sibling is read instead; nothing on disk is modified — the next
/// successful save sweeps the relic.
pub fn load_database(dir: &Path) -> Result<Database> {
    if !dir.exists() {
        if let Some(old) = newest_old_save(dir) {
            return load_database_dir(&old);
        }
    }
    load_database_dir(dir)
}

/// The newest `.old-*` sibling of `dir`, by modification time.
fn newest_old_save(dir: &Path) -> Option<std::path::PathBuf> {
    let parent = match dir.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let name = dir.file_name()?.to_str()?;
    hidden_siblings(parent, name, "old")
        .into_iter()
        .max_by_key(|p| fs::metadata(p).and_then(|m| m.modified()).ok())
}

fn load_database_dir(dir: &Path) -> Result<Database> {
    let manifest_text = fs::read_to_string(dir.join("_schema.csv")).map_err(io_err)?;
    let manifest = from_csv("_schema", schema_manifest_schema()?, &manifest_text)?;

    // Group manifest rows by relation, ordered by position.
    let mut relations: Vec<String> = Vec::new();
    for t in manifest.iter() {
        let name = t.get(0).as_str().unwrap_or_default().to_string();
        if !relations.contains(&name) {
            relations.push(name);
        }
    }

    let mut db = Database::new();
    for rel_name in relations {
        let mut attrs: Vec<(i64, Attribute)> = Vec::new();
        for t in manifest.iter() {
            if t.get(0).as_str() != Some(rel_name.as_str()) {
                continue;
            }
            let pos = t
                .get(1)
                .as_int()
                .ok_or_else(|| StorageError::Invalid("bad manifest Position".to_string()))?;
            let name = t
                .get(2)
                .as_str()
                .ok_or_else(|| StorageError::Invalid("bad manifest Attribute".to_string()))?;
            let is_key = t.get(3).as_int().unwrap_or(0) != 0;
            let ty = ValueType::from_keyword(t.get(4).as_str().unwrap_or(""))
                .ok_or_else(|| StorageError::Invalid("bad manifest Type".to_string()))?;
            let char_len = t.get(5).as_int().unwrap_or(0);
            let domain = if char_len > 0 && ty == ValueType::Str {
                Domain::char_n(char_len as usize)
            } else {
                Domain::basic(ty)
            };
            let attr = if is_key {
                Attribute::key(name, domain)
            } else {
                Attribute::new(name, domain)
            };
            attrs.push((pos, attr));
        }
        attrs.sort_by_key(|(pos, _)| *pos);
        let schema = Schema::new(attrs.into_iter().map(|(_, a)| a).collect())?;
        let text = fs::read_to_string(dir.join(format!("{rel_name}.csv"))).map_err(io_err)?;
        db.create(from_csv(&rel_name, schema, &text)?)?;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn sample_db() -> Database {
        let schema = Schema::new(vec![
            Attribute::key("Id", Domain::char_n(7)),
            Attribute::new("Name", Domain::char_n(20)),
            Attribute::new("Displacement", Domain::basic(ValueType::Int)),
        ])
        .unwrap();
        let mut ships = Relation::new("SHIPS", schema);
        ships
            .insert_all([
                tuple!["SSBN730", "Rhode Island", 16600],
                tuple!["SSN671", "Narwhal", 4450],
            ])
            .unwrap();
        let schema2 = Schema::new(vec![
            Attribute::key("Type", Domain::char_n(4)),
            Attribute::new("Count", Domain::basic(ValueType::Int)),
        ])
        .unwrap();
        let mut types = Relation::new("TYPES", schema2);
        types.insert(tuple!["SSN", 17]).unwrap();
        let mut db = Database::new();
        db.create(ships).unwrap();
        db.create(types).unwrap();
        db
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("intensio_persist_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_preserves_everything() {
        let dir = tmpdir("roundtrip");
        let db = sample_db();
        save_database(&db, &dir).unwrap();
        let loaded = load_database(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        let ships = loaded.get("SHIPS").unwrap();
        assert_eq!(ships.len(), 2);
        assert_eq!(ships.tuples(), db.get("SHIPS").unwrap().tuples());
        // Keys survive: duplicate insert must fail.
        let mut loaded = loaded;
        assert!(loaded
            .get_mut("SHIPS")
            .unwrap()
            .insert(tuple!["SSBN730", "Impostor", 1])
            .is_err());
        // char[n] domains survive: overlong strings rejected.
        assert!(loaded
            .get_mut("SHIPS")
            .unwrap()
            .insert(tuple!["WAY-TOO-LONG-ID", "x", 1])
            .is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_errors() {
        let dir = tmpdir("missing").join("nope");
        assert!(load_database(&dir).is_err());
    }

    #[test]
    fn load_falls_back_to_old_sibling_in_the_crash_window() {
        let dir = tmpdir("oldfallback");
        let db = sample_db();
        save_database(&db, &dir).unwrap();
        // Simulate a crash between save's two renames: `dir` is gone
        // and only an `.old-*` sibling (another pid's) remains.
        let parent = dir.parent().unwrap().to_path_buf();
        let name = dir.file_name().unwrap().to_str().unwrap().to_string();
        let old = parent.join(format!(".{name}.old-999999"));
        fs::rename(&dir, &old).unwrap();

        let loaded = load_database(&dir).unwrap();
        assert_eq!(loaded.total_tuples(), db.total_tuples());
        assert!(!dir.exists(), "the fallback load must not modify disk");

        // The next successful save restores `dir` and sweeps the relic.
        save_database(&db, &dir).unwrap();
        assert!(dir.exists());
        assert!(!old.exists(), "stale .old-* swept after a save");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_staging_directories_are_swept_on_save() {
        let dir = tmpdir("sweepstaging");
        let parent = dir.parent().unwrap().to_path_buf();
        let name = dir.file_name().unwrap().to_str().unwrap().to_string();
        let stale = parent.join(format!(".{name}.saving-999999"));
        fs::create_dir_all(&stale).unwrap();
        save_database(&sample_db(), &dir).unwrap();
        assert!(!stale.exists(), "crashed staging dir swept by the save");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_is_idempotent() {
        let dir = tmpdir("idempotent");
        let db = sample_db();
        save_database(&db, &dir).unwrap();
        save_database(&db, &dir).unwrap();
        let loaded = load_database(&dir).unwrap();
        assert_eq!(loaded.total_tuples(), db.total_tuples());
        fs::remove_dir_all(&dir).unwrap();
    }
}
