//! Tuples: ordered value lists conforming to a schema.

use crate::error::{Result, StorageError};
use crate::schema::Schema;
use crate::value::{Value, ValueKey};
use std::fmt;

/// A tuple (row) of values.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple { values }
    }

    /// The values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at position `idx`.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Mutable access to the value at position `idx`.
    pub fn get_mut(&mut self, idx: usize) -> &mut Value {
        &mut self.values[idx]
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Consume the tuple, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// The value named `attr` under `schema`.
    pub fn value_by_name<'a>(&'a self, schema: &Schema, attr: &str) -> Option<&'a Value> {
        schema.index_of(attr).map(|i| self.get(i))
    }

    /// Validate the tuple against a schema: arity and per-attribute domain.
    pub fn check(&self, schema: &Schema) -> Result<()> {
        if self.arity() != schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: schema.arity(),
                found: self.arity(),
            });
        }
        for (v, a) in self.values.iter().zip(schema.attributes()) {
            a.domain().check(a.name(), v)?;
        }
        Ok(())
    }

    /// The key of this tuple under `key_indices`, as hashable/orderable
    /// wrapper values.
    pub fn key(&self, key_indices: &[usize]) -> Vec<ValueKey> {
        key_indices
            .iter()
            .map(|&i| ValueKey(self.get(i).clone()))
            .collect()
    }

    /// Project the tuple onto the given positions.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple::new(indices.iter().map(|&i| self.get(i).clone()).collect())
    }

    /// Concatenate two tuples (for join results).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple::new(values)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// Build a tuple from heterogeneous literals: `tuple!["SSBN730", "Rhode Island", 16600]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::schema::{Attribute, Schema};
    use crate::value::ValueType;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::key("Id", Domain::char_n(7)),
            Attribute::new("Displacement", Domain::int_range("D", 0, 50000)),
        ])
        .unwrap()
    }

    #[test]
    fn check_validates_arity_and_domains() {
        let s = schema();
        assert!(tuple!["SSBN730", 16600].check(&s).is_ok());
        assert!(tuple!["SSBN730"].check(&s).is_err());
        assert!(tuple!["SSBN730", 99999].check(&s).is_err());
        assert!(tuple!["TOO-LONG-ID", 100].check(&s).is_err());
    }

    #[test]
    fn value_by_name() {
        let s = schema();
        let t = tuple!["SSN582", 2145];
        assert_eq!(t.value_by_name(&s, "displacement"), Some(&Value::Int(2145)));
        assert_eq!(t.value_by_name(&s, "nope"), None);
    }

    #[test]
    fn project_and_concat() {
        let t = tuple![1, 2, 3];
        assert_eq!(t.project(&[2, 0]), tuple![3, 1]);
        assert_eq!(t.concat(&tuple![4]), tuple![1, 2, 3, 4]);
    }

    #[test]
    fn key_extraction() {
        let t = tuple!["SSN582", 2145];
        let k = t.key(&[0]);
        assert_eq!(k.len(), 1);
        assert_eq!(k[0].0, Value::str("SSN582"));
    }

    #[test]
    fn display_format() {
        assert_eq!(tuple![1, "a"].to_string(), "(1, \"a\")");
        let _ = ValueType::Int; // silence unused import in some cfgs
    }
}
