//! The database catalog: a named collection of relations.
//!
//! Relations are held behind [`Arc`] so that cloning a `Database` is a
//! **copy-on-write snapshot**: the clone shares every relation's tuple
//! storage with the original, and only a relation that is subsequently
//! mutated (through [`Database::get_mut`]) is deep-copied. Long-lived
//! services lean on this — each query epoch pins an immutable snapshot
//! while the write path builds the next one, paying only for the
//! relations it actually touches.

use crate::error::{Result, StorageError};
use crate::relation::Relation;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An in-memory database: relations indexed by (case-insensitive) name.
#[derive(Debug, Default, Clone)]
pub struct Database {
    relations: BTreeMap<String, Arc<Relation>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Add a relation; fails if the name is taken.
    pub fn create(&mut self, rel: Relation) -> Result<()> {
        let key = Self::key(rel.name());
        if self.relations.contains_key(&key) {
            return Err(StorageError::DuplicateRelation(rel.name().to_string()));
        }
        self.relations.insert(key, Arc::new(rel));
        Ok(())
    }

    /// Add or replace a relation (used by `retrieve into` re-runs).
    pub fn create_or_replace(&mut self, rel: Relation) {
        self.relations.insert(Self::key(rel.name()), Arc::new(rel));
    }

    /// Remove a relation; returns it if present.
    pub fn drop(&mut self, name: &str) -> Option<Relation> {
        self.relations
            .remove(&Self::key(name))
            .map(|arc| Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Look up a relation.
    pub fn get(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(&Self::key(name))
            .map(Arc::as_ref)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// A shared handle to a relation (no copy; shares storage with this
    /// catalog until either side mutates).
    pub fn get_shared(&self, name: &str) -> Result<Arc<Relation>> {
        self.relations
            .get(&Self::key(name))
            .cloned()
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Look up a relation mutably. If the relation is shared with a
    /// snapshot (a cloned `Database`), it is deep-copied first
    /// (copy-on-write), so snapshots never observe the mutation.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .get_mut(&Self::key(name))
            .map(Arc::make_mut)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Whether a relation exists.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(&Self::key(name))
    }

    /// Declared relation names, sorted.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.values().map(|r| r.name()).collect()
    }

    /// Iterate over relations.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values().map(Arc::as_ref)
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the database holds no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total tuple count across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Whether `other` shares `name`'s physical storage with `self`
    /// (i.e. neither side has mutated the relation since the snapshot).
    pub fn shares_storage(&self, other: &Database, name: &str) -> bool {
        match (
            self.relations.get(&Self::key(name)),
            other.relations.get(&Self::key(name)),
        ) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::schema::{Attribute, Schema};
    use crate::tuple;

    fn rel(name: &str) -> Relation {
        let schema = Schema::new(vec![Attribute::key("Id", Domain::char_n(7))]).unwrap();
        Relation::new(name, schema)
    }

    #[test]
    fn create_get_drop() {
        let mut db = Database::new();
        db.create(rel("SUBMARINE")).unwrap();
        assert!(db.get("submarine").is_ok(), "lookup is case-insensitive");
        assert!(db.contains("SUBMARINE"));
        assert!(db.create(rel("Submarine")).is_err(), "duplicate rejected");
        assert!(db.drop("SUBMARINE").is_some());
        assert!(db.get("SUBMARINE").is_err());
    }

    #[test]
    fn create_or_replace_overwrites() {
        let mut db = Database::new();
        let mut a = rel("S");
        a.insert(tuple!["X1"]).unwrap();
        db.create(a).unwrap();
        db.create_or_replace(rel("S"));
        assert_eq!(db.get("S").unwrap().len(), 0);
    }

    #[test]
    fn stats() {
        let mut db = Database::new();
        let mut a = rel("A");
        a.insert(tuple!["X1"]).unwrap();
        a.insert(tuple!["X2"]).unwrap();
        db.create(a).unwrap();
        db.create(rel("B")).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.total_tuples(), 2);
        assert_eq!(db.relation_names(), vec!["A", "B"]);
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut db = Database::new();
        let mut a = rel("A");
        a.insert(tuple!["X1"]).unwrap();
        db.create(a).unwrap();
        db.create(rel("B")).unwrap();

        let snapshot = db.clone();
        assert!(db.shares_storage(&snapshot, "A"), "clone shares storage");
        assert!(db.shares_storage(&snapshot, "B"));

        // Mutating A through the original detaches only A.
        db.get_mut("A").unwrap().insert(tuple!["X2"]).unwrap();
        assert!(!db.shares_storage(&snapshot, "A"), "A detached on write");
        assert!(db.shares_storage(&snapshot, "B"), "B still shared");

        // The snapshot kept the pre-mutation contents.
        assert_eq!(snapshot.get("A").unwrap().len(), 1);
        assert_eq!(db.get("A").unwrap().len(), 2);
    }

    #[test]
    fn get_shared_pins_a_relation() {
        let mut db = Database::new();
        let mut a = rel("A");
        a.insert(tuple!["X1"]).unwrap();
        db.create(a).unwrap();
        let pinned = db.get_shared("A").unwrap();
        db.get_mut("A").unwrap().insert(tuple!["X2"]).unwrap();
        assert_eq!(pinned.len(), 1, "pin is immutable across writes");
        assert_eq!(db.get("A").unwrap().len(), 2);
        assert!(db.get_shared("MISSING").is_err());
    }
}
