//! Relational algebra operators over [`Relation`]s.
//!
//! These are the operations the paper's prototype obtained from INGRES:
//! selection, projection, duplicate elimination (`unique`), sorting
//! (`sort by`), joins, and simple aggregates. All operators are
//! value-based and produce new relations; inputs are untouched.

use crate::domain::Domain;
use crate::error::{Result, StorageError};
use crate::expr::{AttrRef, CmpOp, Env, Expr};
use crate::relation::Relation;
use crate::schema::{Attribute, Schema};
use crate::tuple::Tuple;
use crate::value::{Value, ValueKey};
use std::collections::{BTreeSet, HashMap};

/// Selection: tuples of `rel` (bound to `alias`) satisfying `pred`.
pub fn select(rel: &Relation, alias: &str, pred: &Expr) -> Result<Relation> {
    let span = scan_span(rel, "full");
    let out = scan_filter(rel, alias, pred)?;
    finish_scan(span, rel.len(), out.len());
    Ok(out)
}

/// The unindexed scan loop shared by [`select`] and the fallback path
/// of [`select_indexed`].
fn scan_filter(rel: &Relation, alias: &str, pred: &Expr) -> Result<Relation> {
    intensio_fault::fire("storage.scan")?;
    let mut out = Relation::with_schema_ref(format!("σ({})", rel.name()), rel.schema_ref());
    for t in rel.iter() {
        let env = Env::single(alias, rel.schema(), t);
        if pred.eval_bool(&env)? {
            out.push_unchecked(t.clone());
        }
    }
    Ok(out)
}

/// Open the relation-scan span (one per selection, whatever the access
/// path).
fn scan_span(rel: &Relation, path: &'static str) -> intensio_obs::Span {
    intensio_obs::Span::stage("storage.scan", intensio_obs::Stage::Scan)
        .with_field("relation", rel.name())
        .with_field("path", path)
}

/// Close the scan span with its outcome and bump the scan counters.
fn finish_scan(mut span: intensio_obs::Span, scanned: usize, kept: usize) {
    span.field("scanned", scanned);
    span.field("kept", kept);
    intensio_obs::inc("storage.scans");
    intensio_obs::add("storage.tuples_scanned", scanned as u64);
}

/// Projection onto named attributes, in the given order.
pub fn project(rel: &Relation, attrs: &[&str]) -> Result<Relation> {
    let mut indices = Vec::with_capacity(attrs.len());
    for a in attrs {
        indices.push(rel.schema().require(rel.name(), a)?);
    }
    let schema = rel.schema().project(&indices);
    let mut out = Relation::new(format!("π({})", rel.name()), schema);
    for t in rel.iter() {
        out.push_unchecked(t.project(&indices));
    }
    Ok(out)
}

/// Generalized projection: evaluate `(output name, expression)` pairs per
/// tuple, producing a new relation. Output domains are inferred loosely
/// (basic type of the first non-null result, defaulting to string).
pub fn project_exprs(rel: &Relation, alias: &str, targets: &[(String, Expr)]) -> Result<Relation> {
    let mut rows: Vec<Tuple> = Vec::with_capacity(rel.len());
    for t in rel.iter() {
        let env = Env::single(alias, rel.schema(), t);
        let mut vals = Vec::with_capacity(targets.len());
        for (_, e) in targets {
            vals.push(e.eval(&env)?);
        }
        rows.push(Tuple::new(vals));
    }
    let schema = infer_schema(targets, &rows)?;
    let mut out = Relation::new(format!("π({})", rel.name()), schema);
    for t in rows {
        out.push_unchecked(t);
    }
    Ok(out)
}

/// Infer a schema for computed rows: each column takes the basic type of
/// its first non-null value (string when the column is entirely null).
fn infer_schema(targets: &[(String, Expr)], rows: &[Tuple]) -> Result<Schema> {
    let mut attrs = Vec::with_capacity(targets.len());
    for (i, (name, _)) in targets.iter().enumerate() {
        let ty = rows
            .iter()
            .find_map(|t| t.get(i).value_type())
            .unwrap_or(crate::value::ValueType::Str);
        attrs.push(Attribute::new(name.clone(), Domain::basic(ty)));
    }
    Schema::new(attrs)
}

/// Duplicate elimination over whole tuples (QUEL `unique`).
pub fn unique(rel: &Relation) -> Relation {
    let mut seen: BTreeSet<Vec<ValueKey>> = BTreeSet::new();
    let mut out = Relation::with_schema_ref(format!("δ({})", rel.name()), rel.schema_ref());
    let all: Vec<usize> = (0..rel.schema().arity()).collect();
    for t in rel.iter() {
        if seen.insert(t.key(&all)) {
            out.push_unchecked(t.clone());
        }
    }
    out
}

/// Sort (ascending) by the named attributes, returning a new relation.
pub fn sort(rel: &Relation, attrs: &[&str]) -> Result<Relation> {
    let mut out = rel.clone();
    out.sort_by_names(attrs)?;
    out.set_name(format!("τ({})", rel.name()));
    Ok(out)
}

/// Cartesian product of two relations under aliases.
pub fn cartesian(left: &Relation, lalias: &str, right: &Relation, ralias: &str) -> Relation {
    let schema = left.schema().join(lalias, right.schema(), ralias);
    let mut out = Relation::new(format!("{}×{}", left.name(), right.name()), schema);
    for l in left.iter() {
        for r in right.iter() {
            out.push_unchecked(l.concat(r));
        }
    }
    out
}

/// Theta join: the subset of the cartesian product satisfying `pred`,
/// where `pred` sees the two sides under their aliases.
pub fn theta_join(
    left: &Relation,
    lalias: &str,
    right: &Relation,
    ralias: &str,
    pred: &Expr,
) -> Result<Relation> {
    let schema = left.schema().join(lalias, right.schema(), ralias);
    let mut out = Relation::new(format!("{}⋈{}", left.name(), right.name()), schema);
    for l in left.iter() {
        for r in right.iter() {
            let mut env = Env::single(lalias, left.schema(), l);
            env.push(ralias, right.schema(), r);
            if pred.eval_bool(&env)? {
                out.push_unchecked(l.concat(r));
            }
        }
    }
    Ok(out)
}

/// Equi-join on `left.lattr = right.rattr`, probing the right side's
/// (lazily built, cached) secondary index; null join keys never match.
/// Repeated joins against the same relation reuse the index.
pub fn equi_join(
    left: &Relation,
    lalias: &str,
    lattr: &str,
    right: &Relation,
    ralias: &str,
    rattr: &str,
) -> Result<Relation> {
    let li = left.schema().require(left.name(), lattr)?;
    right.schema().require(right.name(), rattr)?;
    let schema = left.schema().join(lalias, right.schema(), ralias);
    let mut out = Relation::new(format!("{}⋈{}", left.name(), right.name()), schema);
    right.with_index(rattr, |idx| {
        for l in left.iter() {
            let v = l.get(li);
            if v.is_null() {
                continue;
            }
            for &p in idx.lookup(v) {
                out.push_unchecked(l.concat(&right.tuples()[p]));
            }
        }
    })?;
    Ok(out)
}

/// Selection accelerated by a secondary index: when a conjunct of the
/// predicate compares one attribute against a constant, the index
/// narrows the candidate tuples before the full predicate is evaluated.
/// Falls back to a plain scan otherwise. Result order follows the index
/// (value order) on the fast path.
pub fn select_indexed(rel: &Relation, alias: &str, pred: &Expr) -> Result<Relation> {
    /// An index-scan bound: `(value, inclusive)`.
    type ScanBound = Option<(Value, bool)>;
    // Find an indexable conjunct: attr op const with op in {=,<,<=,>,>=}.
    let mut plan: Option<(String, ScanBound, ScanBound)> = None;
    for c in pred.conjuncts() {
        let Expr::Cmp { op, left, right } = c else {
            continue;
        };
        let (attr, op, value) = match (&**left, &**right) {
            (Expr::Attr(a), Expr::Const(v)) => (a, *op, v.clone()),
            (Expr::Const(v), Expr::Attr(a)) => (a, op.flip(), v.clone()),
            _ => continue,
        };
        if let Some(q) = &attr.qualifier {
            if !q.eq_ignore_ascii_case(alias) {
                continue;
            }
        }
        if rel.schema().index_of(&attr.name).is_none() {
            continue;
        }
        let bounds = match op {
            CmpOp::Eq => (Some((value.clone(), true)), Some((value, true))),
            CmpOp::Lt => (None, Some((value, false))),
            CmpOp::Le => (None, Some((value, true))),
            CmpOp::Gt => (Some((value, false)), None),
            CmpOp::Ge => (Some((value, true)), None),
            CmpOp::Ne => continue,
        };
        plan = Some((attr.name.clone(), bounds.0, bounds.1));
        break;
    }

    let Some((attr, lo, hi)) = plan else {
        let span = scan_span(rel, "full");
        let out = scan_filter(rel, alias, pred)?;
        finish_scan(span, rel.len(), out.len());
        return Ok(out);
    };
    let span = scan_span(rel, "index");
    intensio_fault::fire("storage.scan")?;
    let positions = rel.index_range(
        &attr,
        lo.as_ref().map(|(v, i)| (v, *i)),
        hi.as_ref().map(|(v, i)| (v, *i)),
    )?;
    let mut out = Relation::with_schema_ref(format!("σ({})", rel.name()), rel.schema_ref());
    let scanned = positions.len();
    for p in positions {
        let t = &rel.tuples()[p];
        let env = Env::single(alias, rel.schema(), t);
        if pred.eval_bool(&env)? {
            out.push_unchecked(t.clone());
        }
    }
    finish_scan(span, scanned, out.len());
    Ok(out)
}

/// An aggregate function over a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Row count (nulls included).
    Count,
    /// Minimum non-null value.
    Min,
    /// Maximum non-null value.
    Max,
    /// Numeric sum of non-null values.
    Sum,
    /// Numeric mean of non-null values.
    Avg,
}

/// Apply an aggregate to a column of values.
pub fn aggregate(agg: Aggregate, values: &[Value]) -> Result<Value> {
    let present: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
    match agg {
        Aggregate::Count => Ok(Value::Int(values.len() as i64)),
        Aggregate::Min => Ok(present
            .iter()
            .min_by(|a, b| a.total_cmp(b))
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null)),
        Aggregate::Max => Ok(present
            .iter()
            .max_by(|a, b| a.total_cmp(b))
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null)),
        Aggregate::Sum | Aggregate::Avg => {
            if present.is_empty() {
                return Ok(Value::Null);
            }
            let mut all_int = true;
            let mut sum = 0.0f64;
            let mut isum = 0i64;
            for v in &present {
                match v {
                    Value::Int(i) => {
                        isum = isum.wrapping_add(*i);
                        sum += *i as f64;
                    }
                    Value::Real(r) => {
                        all_int = false;
                        sum += r;
                    }
                    other => {
                        return Err(StorageError::TypeMismatch {
                            expected: "numeric".to_string(),
                            found: other.to_string(),
                            context: "aggregate".to_string(),
                        })
                    }
                }
            }
            if agg == Aggregate::Sum {
                Ok(if all_int {
                    Value::Int(isum)
                } else {
                    Value::Real(sum)
                })
            } else {
                Ok(Value::Real(sum / present.len() as f64))
            }
        }
    }
}

/// Group `rel` by `group_attrs` and compute `(output name, aggregate,
/// input attr)` per group. The result schema is the group attributes
/// followed by the aggregate outputs; groups appear in first-seen order.
pub fn group_by(
    rel: &Relation,
    group_attrs: &[&str],
    aggs: &[(&str, Aggregate, &str)],
) -> Result<Relation> {
    let mut gidx = Vec::with_capacity(group_attrs.len());
    for a in group_attrs {
        gidx.push(rel.schema().require(rel.name(), a)?);
    }
    let mut aidx = Vec::with_capacity(aggs.len());
    for (_, _, a) in aggs {
        aidx.push(rel.schema().require(rel.name(), a)?);
    }

    let mut order: Vec<Vec<ValueKey>> = Vec::new();
    let mut groups: HashMap<Vec<ValueKey>, Vec<&Tuple>> = HashMap::new();
    for t in rel.iter() {
        let key = t.key(&gidx);
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(t);
    }

    // Output schema: group columns keep their domains; aggregates get
    // inferred basic types after computation.
    let mut rows: Vec<Tuple> = Vec::with_capacity(order.len());
    for key in &order {
        let members = &groups[key];
        let mut vals: Vec<Value> = key.iter().map(|k| k.0.clone()).collect();
        for ((_, agg, _), &ai) in aggs.iter().zip(&aidx) {
            let col: Vec<Value> = members.iter().map(|t| t.get(ai).clone()).collect();
            vals.push(aggregate(*agg, &col)?);
        }
        rows.push(Tuple::new(vals));
    }

    let mut attrs: Vec<Attribute> = gidx
        .iter()
        .map(|&i| {
            let a = rel.schema().attr(i);
            Attribute::new(a.name().to_string(), a.domain().clone())
        })
        .collect();
    for (i, (name, _, _)) in aggs.iter().enumerate() {
        let col_pos = gidx.len() + i;
        let ty = rows
            .iter()
            .find_map(|t| t.get(col_pos).value_type())
            .unwrap_or(crate::value::ValueType::Int);
        attrs.push(Attribute::new(name.to_string(), Domain::basic(ty)));
    }
    let mut out = Relation::new(format!("γ({})", rel.name()), Schema::new(attrs)?);
    for t in rows {
        out.push_unchecked(t);
    }
    Ok(out)
}

/// Convenience: `select` with an `attr op constant` predicate.
pub fn restrict(
    rel: &Relation,
    attr: &str,
    op: CmpOp,
    value: impl Into<Value>,
) -> Result<Relation> {
    let pred = Expr::cmp_value(AttrRef::bare(attr), op, value);
    select(rel, rel.name(), &pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;
    use crate::tuple;
    use crate::value::ValueType;

    fn class_rel() -> Relation {
        let schema = Schema::new(vec![
            Attribute::key("Class", Domain::char_n(4)),
            Attribute::new("Type", Domain::char_n(4)),
            Attribute::new("Displacement", Domain::basic(ValueType::Int)),
        ])
        .unwrap();
        let mut r = Relation::new("CLASS", schema);
        r.insert_all([
            tuple!["0101", "SSBN", 16600],
            tuple!["0102", "SSBN", 7250],
            tuple!["0201", "SSN", 6000],
            tuple!["0215", "SSN", 2145],
            tuple!["1301", "SSBN", 30000],
        ])
        .unwrap();
        r
    }

    fn sub_rel() -> Relation {
        let schema = Schema::new(vec![
            Attribute::key("Id", Domain::char_n(7)),
            Attribute::new("Class", Domain::char_n(4)),
        ])
        .unwrap();
        let mut r = Relation::new("SUBMARINE", schema);
        r.insert_all([
            tuple!["SSBN730", "0101"],
            tuple!["SSN582", "0215"],
            tuple!["SSBN130", "1301"],
        ])
        .unwrap();
        r
    }

    #[test]
    fn select_filters() {
        let r = class_rel();
        let out = restrict(&r, "Displacement", CmpOp::Gt, 8000).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|t| t.get(2).as_int().unwrap() > 8000));
    }

    #[test]
    fn project_reorders() {
        let r = class_rel();
        let out = project(&r, &["Type", "Class"]).unwrap();
        assert_eq!(out.schema().attr(0).name(), "Type");
        assert_eq!(out.tuples()[0], tuple!["SSBN", "0101"]);
    }

    #[test]
    fn unique_deduplicates() {
        let r = class_rel();
        let types = project(&r, &["Type"]).unwrap();
        assert_eq!(types.len(), 5);
        let u = unique(&types);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn sort_orders() {
        let r = class_rel();
        let s = sort(&r, &["Displacement"]).unwrap();
        let d: Vec<i64> = s.iter().map(|t| t.get(2).as_int().unwrap()).collect();
        assert_eq!(d, vec![2145, 6000, 7250, 16600, 30000]);
    }

    #[test]
    fn equi_join_matches_paper_join() {
        // SUBMARINE.CLASS = CLASS.CLASS, as in the paper's Example 1.
        let s = sub_rel();
        let c = class_rel();
        let j = equi_join(&s, "s", "Class", &c, "c", "Class").unwrap();
        assert_eq!(j.len(), 3);
        assert!(j.schema().index_of("s.Class").is_some());
        assert!(j.schema().index_of("Displacement").is_some());
    }

    #[test]
    fn theta_join_general_predicate() {
        let s = sub_rel();
        let c = class_rel();
        let pred = Expr::And(
            Box::new(Expr::eq_attrs(
                AttrRef::qualified("s", "Class"),
                AttrRef::qualified("c", "Class"),
            )),
            Box::new(Expr::cmp_value(
                AttrRef::qualified("c", "Displacement"),
                CmpOp::Gt,
                8000,
            )),
        );
        let j = theta_join(&s, "s", &c, "c", &pred).unwrap();
        assert_eq!(j.len(), 2); // SSBN730 (16600) and SSBN130 (30000)
    }

    #[test]
    fn cartesian_size() {
        let s = sub_rel();
        let c = class_rel();
        assert_eq!(cartesian(&s, "s", &c, "c").len(), 15);
    }

    #[test]
    fn aggregates() {
        let r = class_rel();
        let d = r.column("Displacement").unwrap();
        assert_eq!(aggregate(Aggregate::Count, &d).unwrap(), Value::Int(5));
        assert_eq!(aggregate(Aggregate::Min, &d).unwrap(), Value::Int(2145));
        assert_eq!(aggregate(Aggregate::Max, &d).unwrap(), Value::Int(30000));
        assert_eq!(aggregate(Aggregate::Sum, &d).unwrap(), Value::Int(61995));
        assert_eq!(
            aggregate(Aggregate::Avg, &d).unwrap(),
            Value::Real(61995.0 / 5.0)
        );
    }

    #[test]
    fn group_by_type() {
        let r = class_rel();
        let g = group_by(
            &r,
            &["Type"],
            &[
                ("MinD", Aggregate::Min, "Displacement"),
                ("MaxD", Aggregate::Max, "Displacement"),
                ("N", Aggregate::Count, "Displacement"),
            ],
        )
        .unwrap();
        assert_eq!(g.len(), 2);
        let ssbn = g.iter().find(|t| t.get(0) == &Value::str("SSBN")).unwrap();
        assert_eq!(ssbn.get(1), &Value::Int(7250));
        assert_eq!(ssbn.get(2), &Value::Int(30000));
        assert_eq!(ssbn.get(3), &Value::Int(3));
    }

    #[test]
    fn project_exprs_computes() {
        let r = class_rel();
        let targets = vec![
            ("Class".to_string(), Expr::Attr(AttrRef::bare("Class"))),
            (
                "DoubleD".to_string(),
                Expr::Arith {
                    op: crate::expr::ArithOp::Mul,
                    left: Box::new(Expr::Attr(AttrRef::bare("Displacement"))),
                    right: Box::new(Expr::Const(Value::Int(2))),
                },
            ),
        ];
        let out = project_exprs(&r, "c", &targets).unwrap();
        assert_eq!(out.tuples()[0], tuple!["0101", 33200]);
        assert_eq!(out.schema().attr(1).value_type(), ValueType::Int);
    }

    #[test]
    fn select_indexed_agrees_with_select() {
        let r = class_rel();
        for pred in [
            Expr::cmp_value(AttrRef::bare("Displacement"), CmpOp::Gt, 8000),
            Expr::cmp_value(AttrRef::bare("Type"), CmpOp::Eq, "SSN"),
            Expr::And(
                Box::new(Expr::cmp_value(AttrRef::bare("Type"), CmpOp::Eq, "SSBN")),
                Box::new(Expr::cmp_value(
                    AttrRef::bare("Displacement"),
                    CmpOp::Lt,
                    20000,
                )),
            ),
            // Not indexable (Ne): falls back to a scan.
            Expr::cmp_value(AttrRef::bare("Type"), CmpOp::Ne, "SSN"),
        ] {
            let plain = select(&r, "c", &pred).unwrap();
            let fast = select_indexed(&r, "c", &pred).unwrap();
            assert_eq!(plain.len(), fast.len(), "pred {pred}");
            // Same multiset of tuples (order may differ on the fast path).
            let mut a: Vec<String> = plain.iter().map(|t| t.to_string()).collect();
            let mut b: Vec<String> = fast.iter().map(|t| t.to_string()).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn index_invalidated_by_mutation() {
        let mut r = class_rel();
        let before = select_indexed(
            &r,
            "c",
            &Expr::cmp_value(AttrRef::bare("Type"), CmpOp::Eq, "SSN"),
        )
        .unwrap()
        .len();
        r.insert(tuple!["0216", "SSN", 2500]).unwrap();
        let after = select_indexed(
            &r,
            "c",
            &Expr::cmp_value(AttrRef::bare("Type"), CmpOp::Eq, "SSN"),
        )
        .unwrap()
        .len();
        assert_eq!(after, before + 1, "stale index must be rebuilt");
    }

    #[test]
    fn equi_join_reuses_right_index() {
        // Functional check: two joins against the same right side give
        // identical results (the second reuses the cached index).
        let s = sub_rel();
        let c = class_rel();
        let j1 = equi_join(&s, "s", "Class", &c, "c", "Class").unwrap();
        let j2 = equi_join(&s, "s", "Class", &c, "c", "Class").unwrap();
        assert_eq!(j1.len(), j2.len());
    }

    #[test]
    fn empty_aggregate_behaviour() {
        assert_eq!(aggregate(Aggregate::Count, &[]).unwrap(), Value::Int(0));
        assert_eq!(aggregate(Aggregate::Min, &[]).unwrap(), Value::Null);
        assert_eq!(aggregate(Aggregate::Sum, &[]).unwrap(), Value::Null);
    }
}
