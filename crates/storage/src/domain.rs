//! Attribute domains with optional constraints.
//!
//! The KER model (paper §2, Appendix A) builds complex domains on top of
//! the basic domains: a domain may restrict a base type to a value range
//! (`range [2000..30000]`), a value set (`set of {..}`), or a maximum
//! character length (`char[10]`). A subtype's `isa` chain of domains is
//! flattened here into a single base type plus a constraint stack.

use crate::error::{Result, StorageError};
use crate::value::{Value, ValueType};
use std::cmp::Ordering;
use std::fmt;

/// Inclusive/exclusive boundary of a range constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// `[` / `]` — the endpoint belongs to the range.
    Inclusive,
    /// `(` / `)` — the endpoint is excluded.
    Exclusive,
}

/// A single domain constraint.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // fields are self-describing range endpoints
pub enum DomainConstraint {
    /// `range [lo .. hi]` with per-end inclusivity.
    Range {
        lo: Value,
        lo_bound: Bound,
        hi: Value,
        hi_bound: Bound,
    },
    /// `set of { v1, v2, ... }`.
    Set(Vec<Value>),
    /// `char[n]` — strings of at most `n` bytes.
    CharLen(usize),
}

impl DomainConstraint {
    /// Whether `v` satisfies this constraint.
    pub fn admits(&self, v: &Value) -> bool {
        match self {
            DomainConstraint::Range {
                lo,
                lo_bound,
                hi,
                hi_bound,
            } => {
                let lo_ok = match v.compare(lo) {
                    Ok(Ordering::Greater) => true,
                    Ok(Ordering::Equal) => *lo_bound == Bound::Inclusive,
                    _ => false,
                };
                let hi_ok = match v.compare(hi) {
                    Ok(Ordering::Less) => true,
                    Ok(Ordering::Equal) => *hi_bound == Bound::Inclusive,
                    _ => false,
                };
                lo_ok && hi_ok
            }
            DomainConstraint::Set(vs) => vs.iter().any(|x| x.sem_eq(v)),
            DomainConstraint::CharLen(n) => match v {
                Value::Str(s) => s.len() <= *n,
                _ => false,
            },
        }
    }
}

impl fmt::Display for DomainConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainConstraint::Range {
                lo,
                lo_bound,
                hi,
                hi_bound,
            } => {
                let l = if *lo_bound == Bound::Inclusive {
                    '['
                } else {
                    '('
                };
                let r = if *hi_bound == Bound::Inclusive {
                    ']'
                } else {
                    ')'
                };
                write!(f, "range {l}{lo}..{hi}{r}")
            }
            DomainConstraint::Set(vs) => {
                write!(f, "set of {{")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            DomainConstraint::CharLen(n) => write!(f, "char[{n}]"),
        }
    }
}

/// A named domain: a base value type plus zero or more constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct Domain {
    name: String,
    base: ValueType,
    constraints: Vec<DomainConstraint>,
}

impl Domain {
    /// An unconstrained domain over a basic type, named by its keyword.
    pub fn basic(base: ValueType) -> Domain {
        Domain {
            name: base.keyword().to_string(),
            base,
            constraints: Vec::new(),
        }
    }

    /// A named domain over a base type.
    pub fn named(name: impl Into<String>, base: ValueType) -> Domain {
        Domain {
            name: name.into(),
            base,
            constraints: Vec::new(),
        }
    }

    /// A `char[n]` domain, as used throughout the paper's schemas.
    pub fn char_n(n: usize) -> Domain {
        Domain {
            name: format!("char[{n}]"),
            base: ValueType::Str,
            constraints: vec![DomainConstraint::CharLen(n)],
        }
    }

    /// An integer domain restricted to an inclusive range, e.g. the paper's
    /// `Displacement in [2000..30000]`.
    pub fn int_range(name: impl Into<String>, lo: i64, hi: i64) -> Domain {
        Domain::named(name, ValueType::Int).with_constraint(DomainConstraint::Range {
            lo: Value::Int(lo),
            lo_bound: Bound::Inclusive,
            hi: Value::Int(hi),
            hi_bound: Bound::Inclusive,
        })
    }

    /// Add a constraint, consuming and returning the domain (builder style).
    pub fn with_constraint(mut self, c: DomainConstraint) -> Domain {
        self.constraints.push(c);
        self
    }

    /// Derive a new named domain that inherits this one's base type and
    /// constraints (`domain: SHIP_NAME isa NAME`).
    pub fn derive(&self, name: impl Into<String>) -> Domain {
        Domain {
            name: name.into(),
            base: self.base,
            constraints: self.constraints.clone(),
        }
    }

    /// The domain's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying basic type.
    pub fn base(&self) -> ValueType {
        self.base
    }

    /// The constraint stack.
    pub fn constraints(&self) -> &[DomainConstraint] {
        &self.constraints
    }

    /// Whether a value belongs to this domain. `Null` is always admitted
    /// (domain constraints restrict present values only).
    pub fn admits(&self, v: &Value) -> bool {
        if v.is_null() {
            return true;
        }
        match v.value_type() {
            Some(t) if t.comparable_with(&self.base) => {
                self.constraints.iter().all(|c| c.admits(v))
            }
            _ => false,
        }
    }

    /// Validate a value, returning a descriptive error on violation.
    pub fn check(&self, attribute: &str, v: &Value) -> Result<()> {
        if self.admits(v) {
            Ok(())
        } else {
            Err(StorageError::DomainViolation {
                attribute: attribute.to_string(),
                value: v.to_string(),
                domain: self.to_string(),
            })
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}", self.name, self.base)?;
        for c in &self.constraints {
            write!(f, ", {c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_domain_admits_matching_type() {
        let d = Domain::basic(ValueType::Int);
        assert!(d.admits(&Value::Int(5)));
        assert!(d.admits(&Value::Real(5.0)), "int/real coerce");
        assert!(!d.admits(&Value::str("x")));
        assert!(d.admits(&Value::Null));
    }

    #[test]
    fn range_constraint() {
        let d = Domain::int_range("DISPLACEMENT", 2000, 30000);
        assert!(d.admits(&Value::Int(2000)));
        assert!(d.admits(&Value::Int(30000)));
        assert!(!d.admits(&Value::Int(1999)));
        assert!(!d.admits(&Value::Int(30001)));
    }

    #[test]
    fn exclusive_bounds() {
        let d = Domain::named("D", ValueType::Int).with_constraint(DomainConstraint::Range {
            lo: Value::Int(0),
            lo_bound: Bound::Exclusive,
            hi: Value::Int(10),
            hi_bound: Bound::Exclusive,
        });
        assert!(!d.admits(&Value::Int(0)));
        assert!(d.admits(&Value::Int(1)));
        assert!(!d.admits(&Value::Int(10)));
    }

    #[test]
    fn char_len_domain() {
        let d = Domain::char_n(4);
        assert!(d.admits(&Value::str("SSBN")));
        assert!(!d.admits(&Value::str("TOOLONG")));
        assert!(!d.admits(&Value::Int(4)));
    }

    #[test]
    fn set_domain() {
        let d = Domain::named("TYPE", ValueType::Str).with_constraint(DomainConstraint::Set(vec![
            Value::str("SSBN"),
            Value::str("SSN"),
        ]));
        assert!(d.admits(&Value::str("SSN")));
        assert!(!d.admits(&Value::str("CVN")));
    }

    #[test]
    fn derived_domain_inherits_constraints() {
        let name = Domain::char_n(20).derive("NAME");
        let ship_name = name.derive("SHIP_NAME");
        assert_eq!(ship_name.name(), "SHIP_NAME");
        assert!(!ship_name.admits(&Value::str("x".repeat(21))));
    }

    #[test]
    fn check_reports_violation() {
        let d = Domain::int_range("AGE", 0, 200);
        let err = d.check("Age", &Value::Int(300)).unwrap_err();
        assert!(matches!(err, StorageError::DomainViolation { .. }));
    }
}
