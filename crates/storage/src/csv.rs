//! Minimal CSV import/export for relations.
//!
//! Supports RFC-4180-style quoting (double quotes, embedded commas and
//! quotes, quote-doubling). Used to relocate a database together with its
//! rule relations, as the paper's §5.2.2 requires ("a database and its
//! associated rule relations can be relocated together").

use crate::error::{Result, StorageError};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Serialize a relation to CSV with a header row.
pub fn to_csv(rel: &Relation) -> String {
    let mut out = String::new();
    let header: Vec<String> = rel
        .schema()
        .attributes()
        .iter()
        .map(|a| escape(a.name()))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for t in rel.iter() {
        let row: Vec<String> = t
            .values()
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                other => escape(&other.render_bare()),
            })
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Parse CSV text (with header) into a relation under the given schema.
/// Empty cells become `Null`; other cells are parsed as the attribute's
/// basic type.
pub fn from_csv(name: &str, schema: Schema, text: &str) -> Result<Relation> {
    let mut rows = parse_rows(text)?;
    if rows.is_empty() {
        return Err(StorageError::Csv("missing header row".to_string()));
    }
    let header = rows.remove(0);
    if header.len() != schema.arity() {
        return Err(StorageError::Csv(format!(
            "header has {} columns, schema expects {}",
            header.len(),
            schema.arity()
        )));
    }
    for (cell, attr) in header.iter().zip(schema.attributes()) {
        if !cell.eq_ignore_ascii_case(attr.name()) {
            return Err(StorageError::Csv(format!(
                "header column {cell:?} does not match attribute {:?}",
                attr.name()
            )));
        }
    }
    let mut rel = Relation::new(name, schema);
    for (lineno, row) in rows.into_iter().enumerate() {
        if row.len() != rel.schema().arity() {
            return Err(StorageError::Csv(format!(
                "row {} has {} cells, expected {}",
                lineno + 2,
                row.len(),
                rel.schema().arity()
            )));
        }
        let mut vals = Vec::with_capacity(row.len());
        for (cell, attr) in row.iter().zip(rel.schema().attributes()) {
            if cell.is_empty() {
                vals.push(Value::Null);
            } else {
                vals.push(Value::parse_as(cell, attr.value_type())?);
            }
        }
        rel.insert(Tuple::new(vals))?;
    }
    Ok(rel)
}

fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Split CSV text into rows of cells, honoring quoting.
fn parse_rows(text: &str) -> Result<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut cell = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cell.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => cell.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    row.push(std::mem::take(&mut cell));
                }
                '\r' => {}
                '\n' => {
                    row.push(std::mem::take(&mut cell));
                    rows.push(std::mem::take(&mut row));
                }
                other => cell.push(other),
            }
        }
    }
    if in_quotes {
        return Err(StorageError::Csv("unterminated quoted cell".to_string()));
    }
    if any && (!cell.is_empty() || !row.is_empty()) {
        row.push(cell);
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::schema::Attribute;
    use crate::tuple;
    use crate::value::ValueType;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::key("Id", Domain::char_n(7)),
            Attribute::new("Name", Domain::char_n(30)),
            Attribute::new("Displacement", Domain::basic(ValueType::Int)),
        ])
        .unwrap()
    }

    #[test]
    fn round_trip() {
        let mut r = Relation::new("SHIPS", schema());
        r.insert_all([
            tuple!["SSBN730", "Rhode Island", 16600],
            tuple!["SSN671", "Narwhal", 4450],
        ])
        .unwrap();
        let csv = to_csv(&r);
        let back = from_csv("SHIPS", schema(), &csv).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.tuples()[0], r.tuples()[0]);
    }

    #[test]
    fn quoting_round_trip() {
        let s = Schema::new(vec![Attribute::new("Note", Domain::basic(ValueType::Str))]).unwrap();
        let mut r = Relation::new("NOTES", s.clone());
        r.insert(tuple!["has, comma and \"quotes\""]).unwrap();
        let csv = to_csv(&r);
        let back = from_csv("NOTES", s, &csv).unwrap();
        assert_eq!(back.tuples()[0], r.tuples()[0]);
    }

    #[test]
    fn nulls_round_trip() {
        let s = Schema::new(vec![
            Attribute::new("A", Domain::basic(ValueType::Str)),
            Attribute::new("B", Domain::basic(ValueType::Int)),
        ])
        .unwrap();
        let mut r = Relation::new("T", s.clone());
        r.insert(Tuple::new(vec![Value::str("x"), Value::Null]))
            .unwrap();
        let back = from_csv("T", s, &to_csv(&r)).unwrap();
        assert!(back.tuples()[0].get(1).is_null());
    }

    #[test]
    fn header_mismatch_rejected() {
        let text = "Wrong,Name,Displacement\nSSBN730,Rhode Island,16600\n";
        assert!(from_csv("SHIPS", schema(), text).is_err());
    }

    #[test]
    fn bad_cell_type_rejected() {
        let text = "Id,Name,Displacement\nSSBN730,Rhode Island,heavy\n";
        assert!(from_csv("SHIPS", schema(), text).is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(parse_rows("a,\"b\nc,d").is_err());
    }
}
