//! Typed values and value types.
//!
//! The paper's KER model provides the basic domains `integer`, `real`,
//! `string`, and `date` (Appendix A). `Value` is the dynamic value type
//! flowing through the engine; `ValueType` is its static tag.

use crate::date::Date;
use crate::error::{Result, StorageError};
use std::cmp::Ordering;
use std::fmt;

/// The static type of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer (`integer`).
    Int,
    /// 64-bit float (`real`).
    Real,
    /// UTF-8 string (`string` / `char[n]`).
    Str,
    /// Calendar date (`date`).
    Date,
}

impl ValueType {
    /// The KER basic-domain keyword for this type.
    pub fn keyword(&self) -> &'static str {
        match self {
            ValueType::Int => "integer",
            ValueType::Real => "real",
            ValueType::Str => "string",
            ValueType::Date => "date",
        }
    }

    /// Parse a KER basic-domain keyword.
    pub fn from_keyword(kw: &str) -> Option<ValueType> {
        match kw.to_ascii_lowercase().as_str() {
            "integer" | "int" => Some(ValueType::Int),
            "real" | "float" => Some(ValueType::Real),
            "string" | "char" | "text" => Some(ValueType::Str),
            "date" => Some(ValueType::Date),
            _ => None,
        }
    }

    /// Whether two types can be compared directly (Int and Real coerce).
    pub fn comparable_with(&self, other: &ValueType) -> bool {
        self == other
            || matches!(
                (self, other),
                (ValueType::Int, ValueType::Real) | (ValueType::Real, ValueType::Int)
            )
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A dynamically typed value stored in a relation.
///
/// `Null` represents a missing value; it never satisfies a comparison
/// predicate and sorts before every non-null value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing value.
    Null,
    /// `integer` value.
    Int(i64),
    /// `real` value.
    Real(f64),
    /// `string` value.
    Str(String),
    /// `date` value.
    Date(Date),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The static type of this value, or `None` for `Null`.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Real(_) => Some(ValueType::Real),
            Value::Str(_) => Some(ValueType::Str),
            Value::Date(_) => Some(ValueType::Date),
        }
    }

    /// Whether this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload, coercing `Int` to `Real`.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The date payload, if this is a `Date`.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Compare two values of compatible types.
    ///
    /// `Int` and `Real` are mutually comparable; any other cross-type
    /// comparison (or a comparison involving `Null`) is an error. Use
    /// [`Value::total_cmp`] when an arbitrary but total order is needed
    /// (e.g. sorting heterogeneous columns).
    pub fn compare(&self, other: &Value) -> Result<Ordering> {
        let incomparable = || StorageError::Incomparable {
            left: format!("{self}"),
            right: format!("{other}"),
        };
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(a.cmp(b)),
            (Value::Real(a), Value::Real(b)) => Ok(a.total_cmp(b)),
            (Value::Int(a), Value::Real(b)) => Ok((*a as f64).total_cmp(b)),
            (Value::Real(a), Value::Int(b)) => Ok(a.total_cmp(&(*b as f64))),
            (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Ok(a.cmp(b)),
            _ => Err(incomparable()),
        }
    }

    /// A total order over all values, for sorting and keying.
    ///
    /// `Null` sorts first, then values are grouped by type tag
    /// (Int/Real merged on the number line), then compared within type.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Real(_) => 1,
                Value::Str(_) => 2,
                Value::Date(_) => 3,
            }
        }
        match rank(self).cmp(&rank(other)) {
            Ordering::Equal => self.compare(other).unwrap_or(Ordering::Equal),
            o => o,
        }
    }

    /// Whether two values are equal under [`Value::compare`] semantics.
    pub fn sem_eq(&self, other: &Value) -> bool {
        self.compare(other).map(Ordering::is_eq).unwrap_or(false)
    }

    /// Parse a literal string as a value of the given type.
    pub fn parse_as(text: &str, ty: ValueType) -> Result<Value> {
        let err = || StorageError::ParseValue {
            text: text.to_string(),
            ty: ty.keyword().to_string(),
        };
        match ty {
            ValueType::Int => text
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| err()),
            ValueType::Real => text
                .trim()
                .parse::<f64>()
                .map(Value::Real)
                .map_err(|_| err()),
            ValueType::Str => Ok(Value::Str(text.to_string())),
            ValueType::Date => text.trim().parse::<Date>().map(Value::Date),
        }
    }

    /// Render the value as a bare literal (no quotes on strings).
    pub fn render_bare(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(v) => v.to_string(),
            Value::Real(v) => format_real(*v),
            Value::Str(s) => s.clone(),
            Value::Date(d) => d.to_string(),
        }
    }
}

fn format_real(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

impl fmt::Display for Value {
    /// Display as a source-level literal: strings are double-quoted.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => f.write_str(&format_real(*v)),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

/// A key wrapper giving [`Value`] `Eq + Ord + Hash` via the total order,
/// usable in `BTreeMap`/`HashMap` keys (e.g. primary-key indexes).
///
/// Equality follows `total_cmp`, so `Int(3)` and `Real(3.0)` are the same
/// key.
#[derive(Debug, Clone)]
pub struct ValueKey(pub Value);

impl PartialEq for ValueKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for ValueKey {}

impl PartialOrd for ValueKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ValueKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for ValueKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match &self.0 {
            Value::Null => 0u8.hash(state),
            // Int and Real hash identically when numerically equal so that
            // hashing is consistent with total_cmp equality.
            Value::Int(v) => {
                1u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Real(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                3u8.hash(state);
                d.days_from_epoch().hash(state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(
            Value::Int(3).compare(&Value::Real(3.0)).unwrap(),
            Ordering::Equal
        );
        assert_eq!(
            Value::Real(2.5).compare(&Value::Int(3)).unwrap(),
            Ordering::Less
        );
    }

    #[test]
    fn string_comparison_is_lexicographic() {
        // The paper's rules order ship ids lexicographically, e.g.
        // SSN623 <= Id <= SSN635.
        let a = Value::str("SSN623");
        let b = Value::str("SSN635");
        assert_eq!(a.compare(&b).unwrap(), Ordering::Less);
    }

    #[test]
    fn incomparable_types_error() {
        assert!(Value::Int(1).compare(&Value::str("x")).is_err());
        assert!(Value::Null.compare(&Value::Int(1)).is_err());
    }

    #[test]
    fn total_order_ranks_types() {
        let mut vs = [
            Value::str("a"),
            Value::Int(5),
            Value::Null,
            Value::Date(Date::new(1981, 1, 1).unwrap()),
            Value::Real(1.5),
        ];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert!(vs[0].is_null());
        assert_eq!(vs[1], Value::Real(1.5));
        assert_eq!(vs[2], Value::Int(5));
        assert_eq!(vs[3], Value::str("a"));
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(
            Value::parse_as("42", ValueType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::parse_as("4.5", ValueType::Real).unwrap(),
            Value::Real(4.5)
        );
        assert_eq!(
            Value::parse_as("hello", ValueType::Str).unwrap(),
            Value::str("hello")
        );
        assert!(Value::parse_as("abc", ValueType::Int).is_err());
    }

    #[test]
    fn display_literals() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::str("SSBN").to_string(), "\"SSBN\"");
        assert_eq!(Value::Real(2.0).to_string(), "2.0");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn value_key_hash_consistent_with_eq() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(ValueKey(Value::Int(3)), "three");
        // Numerically equal Real must find the Int entry.
        assert_eq!(m.get(&ValueKey(Value::Real(3.0))), Some(&"three"));
    }
}
