//! # intensio-storage
//!
//! An in-memory relational storage engine: the substrate beneath the
//! intensional query processing system of Chu & Lee, *"Using Type
//! Inference and Induced Rules to Provide Intensional Answers"* (ICDE
//! 1991). The paper's prototype ran on INGRES; this crate provides the
//! same relational semantics the prototype relied on — typed values,
//! constrained domains, relations with primary keys, selection,
//! projection, joins, `unique`, `sort by`, and deletion — as a
//! self-contained library.
//!
//! ## Quick tour
//!
//! ```
//! use intensio_storage::prelude::*;
//! use intensio_storage::tuple;
//!
//! let schema = Schema::new(vec![
//!     Attribute::key("Class", Domain::char_n(4)),
//!     Attribute::new("Type", Domain::char_n(4)),
//!     Attribute::new("Displacement", Domain::basic(ValueType::Int)),
//! ]).unwrap();
//! let mut class = Relation::new("CLASS", schema);
//! class.insert(tuple!["0101", "SSBN", 16600]).unwrap();
//! class.insert(tuple!["0215", "SSN", 2145]).unwrap();
//!
//! let heavy = ops::restrict(&class, "Displacement", CmpOp::Gt, 8000).unwrap();
//! assert_eq!(heavy.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The storage layer underpins durability: a panic here can tear a save
// half-done. Panicking escape hatches are lint-visible so every one
// needs an explicit, justified exemption.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod catalog;
pub mod csv;
pub mod date;
pub mod domain;
pub mod error;
pub mod expr;
pub mod index;
pub mod ops;
pub mod persist;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::catalog::Database;
    pub use crate::date::Date;
    pub use crate::domain::{Bound, Domain, DomainConstraint};
    pub use crate::error::{Result, StorageError};
    pub use crate::expr::{ArithOp, AttrRef, CmpOp, Env, Expr};
    pub use crate::index::AttributeIndex;
    pub use crate::ops;
    pub use crate::ops::Aggregate;
    pub use crate::relation::Relation;
    pub use crate::schema::{Attribute, Schema, SchemaRef};
    pub use crate::tuple::Tuple;
    pub use crate::value::{Value, ValueKey, ValueType};
}

pub use prelude::*;
