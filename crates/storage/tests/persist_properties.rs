//! Property tests for directory persistence: `save_database` followed
//! by `load_database` must reproduce the database exactly — every
//! tuple, every key flag, every `char[n]` width — for arbitrary
//! schemas and CSV-hostile values (commas, quotes, embedded newlines).

use intensio_storage::persist::{load_database, save_database};
use intensio_storage::prelude::*;
use intensio_storage::tuple::Tuple;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir() -> std::path::PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("intensio-persist-props-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Alphabet chosen to stress CSV quoting: separators, quotes, newline.
const ALPHABET: [char; 12] = ['a', 'B', 'z', '0', '7', ' ', ',', '"', '\n', '.', '-', ';'];

/// One non-key attribute, encoded for the generator: `0` = Int,
/// `w > 0` = `char[w]`.
fn build_relation(name: &str, specs: &[usize], rows: &[Vec<u64>]) -> Relation {
    let mut attrs = vec![Attribute::key("Id", Domain::char_n(7))];
    for (j, &spec) in specs.iter().enumerate() {
        let domain = if spec == 0 {
            Domain::basic(ValueType::Int)
        } else {
            Domain::char_n(spec)
        };
        attrs.push(Attribute::new(format!("A{j}"), domain));
    }
    let mut rel = Relation::new(name, Schema::new(attrs).unwrap());
    for (i, row) in rows.iter().enumerate() {
        let mut vals = vec![Value::str(format!("K{i:05}"))];
        for (j, &spec) in specs.iter().enumerate() {
            let seed = row.get(j).copied().unwrap_or(0);
            let v = if spec == 0 {
                if seed % 7 == 0 {
                    Value::Null // exercise Null round-tripping
                } else {
                    Value::Int(seed as i64 - 500)
                }
            } else {
                // 1..=spec chars from the alphabet (empty cells load as
                // Null, so strings are never empty).
                let len = 1 + (seed as usize % spec);
                let s: String = (0..len)
                    .map(|k| ALPHABET[(seed as usize + k * 5) % ALPHABET.len()])
                    .collect();
                Value::str(s)
            };
            vals.push(v);
        }
        rel.insert(Tuple::new(vals)).unwrap();
    }
    rel
}

fn char_widths(schema: &Schema) -> Vec<Option<usize>> {
    schema
        .attributes()
        .iter()
        .map(|a| {
            a.domain().constraints().iter().find_map(|c| match c {
                DomainConstraint::CharLen(n) => Some(*n),
                _ => None,
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn save_load_round_trip_is_exact(
        spec1 in prop::collection::vec(0usize..9, 0..4),
        spec2 in prop::collection::vec(0usize..9, 0..4),
        rows1 in prop::collection::vec(prop::collection::vec(0u64..10_000, 0..4), 0..30),
        rows2 in prop::collection::vec(prop::collection::vec(0u64..10_000, 0..4), 0..30),
    ) {
        let mut db = Database::new();
        db.create(build_relation("ALPHA", &spec1, &rows1)).unwrap();
        db.create(build_relation("BETA", &spec2, &rows2)).unwrap();

        let dir = temp_dir();
        save_database(&db, &dir).unwrap();
        let loaded = load_database(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        prop_assert_eq!(loaded.len(), db.len());
        for rel in db.relations() {
            let got = loaded.get(rel.name()).unwrap();

            // Tuples: exact values in exact order.
            prop_assert_eq!(got.tuples(), rel.tuples(), "tuples of {}", rel.name());

            // Key flags: attribute-by-attribute.
            let keys: Vec<bool> = rel.schema().attributes().iter().map(|a| a.is_key()).collect();
            let got_keys: Vec<bool> =
                got.schema().attributes().iter().map(|a| a.is_key()).collect();
            prop_assert_eq!(got_keys, keys, "key flags of {}", rel.name());

            // char[n] widths: preserved wherever declared.
            prop_assert_eq!(
                char_widths(got.schema()),
                char_widths(rel.schema()),
                "char[n] widths of {}",
                rel.name()
            );
        }
    }

    #[test]
    fn atomic_save_replaces_previous_save_completely(
        spec in prop::collection::vec(0usize..9, 0..4),
        rows in prop::collection::vec(prop::collection::vec(0u64..10_000, 0..4), 1..20),
    ) {
        // First save: a database with an extra relation.
        let mut first = Database::new();
        first.create(build_relation("ALPHA", &spec, &rows)).unwrap();
        first.create(build_relation("STALE", &[], &rows)).unwrap();
        let dir = temp_dir();
        save_database(&first, &dir).unwrap();

        // Second save over the same directory drops STALE; the load must
        // see only the new state — no leftover relation files.
        let mut second = Database::new();
        second.create(build_relation("ALPHA", &spec, &rows)).unwrap();
        save_database(&second, &dir).unwrap();

        let loaded = load_database(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(loaded.len(), 1);
        prop_assert!(loaded.get("ALPHA").is_ok());
        prop_assert!(loaded.get("STALE").is_err(), "stale relation file survived the swap");
    }
}
