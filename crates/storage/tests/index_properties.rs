//! Property tests: the secondary index must agree with a full scan for
//! every lookup and range, across mutations.

use intensio_storage::prelude::*;
use intensio_storage::tuple::Tuple;
use proptest::prelude::*;

fn relation_of(xs: &[i64]) -> Relation {
    let schema = Schema::new(vec![
        Attribute::new("X", Domain::basic(ValueType::Int)),
        Attribute::new("Tag", Domain::basic(ValueType::Int)),
    ])
    .unwrap();
    let mut r = Relation::new("T", schema);
    for (i, x) in xs.iter().enumerate() {
        r.insert(Tuple::new(vec![Value::Int(*x), Value::Int(i as i64)]))
            .unwrap();
    }
    r
}

proptest! {
    #[test]
    fn lookup_agrees_with_scan(xs in prop::collection::vec(-20i64..20, 0..60), probe in -25i64..25) {
        let r = relation_of(&xs);
        let via_index = r.index_lookup("X", &Value::Int(probe)).unwrap();
        let via_scan: Vec<usize> = xs
            .iter()
            .enumerate()
            .filter(|(_, x)| **x == probe)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(via_index, via_scan);
    }

    #[test]
    fn range_agrees_with_scan(
        xs in prop::collection::vec(-20i64..20, 0..60),
        a in -25i64..25,
        b in -25i64..25,
        lo_incl: bool,
        hi_incl: bool,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let r = relation_of(&xs);
        let (lv, hv) = (Value::Int(lo), Value::Int(hi));
        let mut via_index = r
            .index_range("X", Some((&lv, lo_incl)), Some((&hv, hi_incl)))
            .unwrap();
        via_index.sort_unstable();
        let mut via_scan: Vec<usize> = xs
            .iter()
            .enumerate()
            .filter(|(_, x)| {
                let lo_ok = if lo_incl { **x >= lo } else { **x > lo };
                let hi_ok = if hi_incl { **x <= hi } else { **x < hi };
                lo_ok && hi_ok
            })
            .map(|(i, _)| i)
            .collect();
        via_scan.sort_unstable();
        prop_assert_eq!(via_index, via_scan);
    }

    #[test]
    fn index_survives_mutation(
        xs in prop::collection::vec(-10i64..10, 1..40),
        extra in -10i64..10,
        delete_below in -10i64..10,
    ) {
        let mut r = relation_of(&xs);
        // Prime the cache.
        let _ = r.index_lookup("X", &Value::Int(0)).unwrap();
        // Mutate: insert then delete.
        r.insert(Tuple::new(vec![Value::Int(extra), Value::Int(999)])).unwrap();
        r.delete_where(|t| t.get(0).as_int().unwrap() < delete_below);
        // Index must reflect the current contents exactly.
        let survivors: Vec<i64> = r
            .iter()
            .map(|t| t.get(0).as_int().unwrap())
            .collect();
        for probe in -12i64..12 {
            let via_index = r.index_lookup("X", &Value::Int(probe)).unwrap().len();
            let via_scan = survivors.iter().filter(|x| **x == probe).count();
            prop_assert_eq!(via_index, via_scan, "probe {}", probe);
        }
    }
}
