//! Property tests for the calendar date implementation.

use intensio_storage::date::Date;
use proptest::prelude::*;

proptest! {
    #[test]
    fn day_number_round_trip(days in -1_000_000i64..1_000_000) {
        let d = Date::from_days_from_epoch(days);
        prop_assert_eq!(d.days_from_epoch(), days);
    }

    #[test]
    fn ordering_matches_day_numbers(a in -500_000i64..500_000, b in -500_000i64..500_000) {
        let da = Date::from_days_from_epoch(a);
        let db = Date::from_days_from_epoch(b);
        prop_assert_eq!(da.cmp(&db), a.cmp(&b));
    }

    #[test]
    fn plus_days_is_additive(start in -100_000i64..100_000, step in -1000i64..1000) {
        let d = Date::from_days_from_epoch(start);
        let e = d.plus_days(step);
        prop_assert_eq!(e.days_since(&d), step);
    }

    #[test]
    fn display_parse_round_trip(days in -500_000i64..500_000) {
        let d = Date::from_days_from_epoch(days);
        let s = d.to_string();
        let back: Date = s.parse().unwrap();
        prop_assert_eq!(d, back);
    }

    #[test]
    fn components_are_valid(days in -500_000i64..500_000) {
        let d = Date::from_days_from_epoch(days);
        prop_assert!((1..=12).contains(&d.month()));
        prop_assert!((1..=31).contains(&d.day()));
        // Reconstructing from components must succeed and agree.
        let rebuilt = Date::new(d.year(), d.month(), d.day()).unwrap();
        prop_assert_eq!(rebuilt, d);
    }
}
