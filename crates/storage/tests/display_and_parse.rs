//! Rendering and parsing smoke tests: Display impls are part of the
//! public contract (examples, dictionary output, rule printing all rely
//! on them).

use intensio_storage::prelude::*;
use intensio_storage::tuple;

#[test]
fn expr_displays_read_like_source() {
    let e = Expr::And(
        Box::new(Expr::cmp_value(
            AttrRef::qualified("c", "Displacement"),
            CmpOp::Gt,
            8000,
        )),
        Box::new(Expr::Not(Box::new(Expr::cmp_value(
            AttrRef::bare("Type"),
            CmpOp::Eq,
            "SSN",
        )))),
    );
    assert_eq!(
        e.to_string(),
        "(c.Displacement > 8000 and not (Type = \"SSN\"))"
    );
    let arith = Expr::Arith {
        op: ArithOp::Div,
        left: Box::new(Expr::Attr(AttrRef::bare("A"))),
        right: Box::new(Expr::Const(Value::Int(2))),
    };
    assert_eq!(arith.to_string(), "(A / 2)");
}

#[test]
fn schema_display_marks_keys() {
    let s = Schema::new(vec![
        Attribute::key("Id", Domain::char_n(7)),
        Attribute::new("Name", Domain::char_n(20)),
    ])
    .unwrap();
    let text = s.to_string();
    assert!(text.contains("*Id"), "{text}");
    assert!(!text.contains("*Name"), "{text}");
}

#[test]
fn value_from_impls() {
    assert_eq!(Value::from(7i64), Value::Int(7));
    assert_eq!(Value::from(7i32), Value::Int(7));
    assert_eq!(Value::from(1.5f64), Value::Real(1.5));
    assert_eq!(Value::from("x"), Value::str("x"));
    assert_eq!(Value::from(String::from("y")), Value::str("y"));
    let d = Date::new(1991, 4, 8).unwrap();
    assert_eq!(Value::from(d), Value::Date(d));
}

#[test]
fn relation_table_aligns_columns() {
    let s = Schema::new(vec![
        Attribute::new("A", Domain::char_n(10)),
        Attribute::new("LongHeader", Domain::basic(ValueType::Int)),
    ])
    .unwrap();
    let mut r = Relation::new("T", s);
    r.insert(tuple!["x", 1]).unwrap();
    r.insert(tuple!["longvalue", 22222]).unwrap();
    let t = r.to_table();
    let lines: Vec<&str> = t.lines().collect();
    // Every border row has the same width.
    let widths: std::collections::BTreeSet<usize> = lines.iter().map(|l| l.len()).collect();
    assert_eq!(widths.len(), 1, "ragged table:\n{t}");
}

#[test]
fn domain_display_mentions_constraints() {
    let d = Domain::int_range("AGE", 0, 200);
    let text = d.to_string();
    assert!(text.contains("AGE"));
    assert!(text.contains("range [0..200]"), "{text}");
    assert!(Domain::char_n(4).to_string().contains("char[4]"));
}

#[test]
fn tuple_macro_accepts_mixed_literals() {
    let d = Date::new(1981, 1, 1).unwrap();
    let t = tuple!["id", 5, 1.25, d];
    assert_eq!(t.arity(), 4);
    assert_eq!(t.get(3), &Value::Date(d));
}

#[test]
fn value_parse_as_date() {
    let v = Value::parse_as("1981-06-30", ValueType::Date).unwrap();
    assert_eq!(v.as_date().unwrap().year(), 1981);
    assert!(Value::parse_as("junk", ValueType::Date).is_err());
}
