//! Abstract syntax for the Knowledge-based Entity-Relationship (KER)
//! model, following the BNF of the paper's Appendix A.
//!
//! A KER definition is a sequence of *domain definitions*, *object type
//! definitions*, and *type hierarchy definitions*. Object types carry
//! `with` constraints: domain-range constraints, *constraint rules*
//! (`if premise then consequence` over attribute values), and *structure
//! rules* (`if roles and premise then var isa TYPE`).

use intensio_storage::expr::CmpOp;
use intensio_storage::value::Value;
use std::fmt;

/// The base of a domain definition.
#[derive(Debug, Clone, PartialEq)]
pub enum DomainBase {
    /// One of the standard domains: `string`, `integer`, `real`, `date`.
    Standard(intensio_storage::value::ValueType),
    /// A fixed-width character domain `char[n]`.
    CharN(usize),
    /// Another named domain (`SHIP_NAME isa NAME`).
    Named(String),
}

/// A `range` or `set of` specification restricting a domain.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // fields are self-describing range endpoints
pub enum DomainSpec {
    /// `range [lo .. hi]`, with per-end inclusivity (`[`/`(` and `]`/`)`).
    Range {
        lo: Value,
        lo_inclusive: bool,
        hi: Value,
        hi_inclusive: bool,
    },
    /// `set of { v1, v2, ... }`.
    Set(Vec<Value>),
}

/// `domain: NAME isa CHAR[20]` or `domain AGE isa integer range [0..200]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainDef {
    /// The new domain's name.
    pub name: String,
    /// What it derives from.
    pub base: DomainBase,
    /// Optional restriction.
    pub spec: Option<DomainSpec>,
}

/// One attribute of an object type: `has [key]: Name domain: D`.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeDef {
    /// Attribute name.
    pub name: String,
    /// Domain name (standard keyword, `char[n]`, or user domain; may also
    /// name an object type, making this an object-valued attribute).
    pub domain: String,
    /// Whether the attribute is (part of) the primary key.
    pub key: bool,
}

/// A reference to an attribute inside a constraint: optionally qualified
/// by a role variable (`x.Displacement`) or an object type
/// (`Employee.Age`), or bare (`Displacement`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttrPath {
    /// Role variable or object/relation qualifier, if any.
    pub qualifier: Option<String>,
    /// The attribute name.
    pub name: String,
}

impl AttrPath {
    /// An unqualified path.
    pub fn bare(name: impl Into<String>) -> AttrPath {
        AttrPath {
            qualifier: None,
            name: name.into(),
        }
    }

    /// A qualified path `q.name`.
    pub fn qualified(q: impl Into<String>, name: impl Into<String>) -> AttrPath {
        AttrPath {
            qualifier: Some(q.into()),
            name: name.into(),
        }
    }
}

impl fmt::Display for AttrPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

/// An atomic clause `attribute op constant`.
///
/// The paper's rules chain comparisons (`2145 <= x.Displacement <= 6955`);
/// the parser desugars a chain into two clauses.
#[derive(Debug, Clone, PartialEq)]
pub struct ClauseAst {
    /// The attribute being constrained.
    pub attr: AttrPath,
    /// The comparison operator (attribute on the left).
    pub op: CmpOp,
    /// The constant operand.
    pub value: Value,
}

impl fmt::Display for ClauseAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.attr, self.op, self.value)
    }
}

/// The consequence of a rule: either an attribute equation or a subtype
/// classification.
#[derive(Debug, Clone, PartialEq)]
pub enum ConsequenceAst {
    /// `then Attr = constant`.
    Clause(ClauseAst),
    /// `then x isa TYPE`.
    Isa {
        /// The role variable being classified.
        var: String,
        /// The target subtype.
        type_name: String,
    },
}

impl fmt::Display for ConsequenceAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsequenceAst::Clause(c) => write!(f, "{c}"),
            ConsequenceAst::Isa { var, type_name } => write!(f, "{var} isa {type_name}"),
        }
    }
}

/// A role declaration `x isa SUBMARINE` binding a variable to a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoleDef {
    /// The role variable.
    pub var: String,
    /// The object type it ranges over.
    pub type_name: String,
}

impl fmt::Display for RoleDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} isa {}", self.var, self.type_name)
    }
}

/// A `with` constraint attached to an object type or hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstraintAst {
    /// `Attr in range [lo..hi]` / `Attr in set of {...}`.
    DomainRange {
        /// The constrained attribute.
        attr: String,
        /// The allowed values.
        spec: DomainSpec,
    },
    /// `if C1 and ... and Cn then C` — a semantic (constraint or
    /// structure) rule. Roles may come from an explicit declaration or
    /// from the `with /* x isa T ... */` comment convention the paper's
    /// Appendix B uses.
    Rule {
        /// Role variables in scope.
        roles: Vec<RoleDef>,
        /// The premise conjunction.
        premise: Vec<ClauseAst>,
        /// The consequence.
        consequence: ConsequenceAst,
    },
}

impl fmt::Display for ConstraintAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintAst::DomainRange { attr, spec } => {
                write!(f, "{attr} in ")?;
                match spec {
                    DomainSpec::Range {
                        lo,
                        lo_inclusive,
                        hi,
                        hi_inclusive,
                    } => write!(
                        f,
                        "{}{lo}..{hi}{}",
                        if *lo_inclusive { '[' } else { '(' },
                        if *hi_inclusive { ']' } else { ')' }
                    ),
                    DomainSpec::Set(vs) => {
                        write!(f, "{{")?;
                        for (i, v) in vs.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "{v}")?;
                        }
                        write!(f, "}}")
                    }
                }
            }
            ConstraintAst::Rule {
                premise,
                consequence,
                ..
            } => {
                write!(f, "if ")?;
                for (i, c) in premise.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, " then {consequence}")
            }
        }
    }
}

/// `object type NAME has ... with ...`.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectTypeDef {
    /// The type name.
    pub name: String,
    /// Declared attributes.
    pub attrs: Vec<AttributeDef>,
    /// Attached `with` constraints.
    pub constraints: Vec<ConstraintAst>,
}

/// `SUPER contains S1, S2, ... [attrs] [with ...]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainsDef {
    /// The supertype.
    pub supertype: String,
    /// The disjoint subtypes.
    pub subtypes: Vec<String>,
    /// Attributes introduced at this hierarchy level.
    pub attrs: Vec<AttributeDef>,
    /// Constraints (typically structure rules classifying instances).
    pub constraints: Vec<ConstraintAst>,
}

/// `SUB isa SUPER with <derivation specification>`.
#[derive(Debug, Clone, PartialEq)]
pub struct IsaDef {
    /// The subtype being derived.
    pub subtype: String,
    /// The supertype.
    pub supertype: String,
    /// The derivation specification (clauses over the supertype's
    /// attributes that characterize membership).
    pub derivation: Vec<ClauseAst>,
}

/// A top-level KER statement.
#[derive(Debug, Clone, PartialEq)]
pub enum KerStatement {
    /// A domain definition.
    Domain(DomainDef),
    /// An object type definition.
    ObjectType(ObjectTypeDef),
    /// A `contains` hierarchy definition.
    Contains(ContainsDef),
    /// An `isa` subtype derivation.
    Isa(IsaDef),
}

/// A parsed KER schema: an ordered list of statements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KerSchema {
    /// The statements, in source order.
    pub statements: Vec<KerStatement>,
}

impl KerSchema {
    /// All domain definitions.
    pub fn domains(&self) -> impl Iterator<Item = &DomainDef> {
        self.statements.iter().filter_map(|s| match s {
            KerStatement::Domain(d) => Some(d),
            _ => None,
        })
    }

    /// All object type definitions.
    pub fn object_types(&self) -> impl Iterator<Item = &ObjectTypeDef> {
        self.statements.iter().filter_map(|s| match s {
            KerStatement::ObjectType(o) => Some(o),
            _ => None,
        })
    }

    /// All `contains` definitions.
    pub fn contains_defs(&self) -> impl Iterator<Item = &ContainsDef> {
        self.statements.iter().filter_map(|s| match s {
            KerStatement::Contains(c) => Some(c),
            _ => None,
        })
    }

    /// All `isa` definitions.
    pub fn isa_defs(&self) -> impl Iterator<Item = &IsaDef> {
        self.statements.iter().filter_map(|s| match s {
            KerStatement::Isa(i) => Some(i),
            _ => None,
        })
    }
}
