//! Instance classification: the KER model's third construct,
//! `has-instance` (§2) — linking a type to the objects that are its
//! instances.
//!
//! A subtype's *derivation specification* (`SSBN isa CLASS with
//! Type = "SSBN"`) is a membership predicate over its supertype's
//! attributes; classification walks the hierarchy from a root type
//! downwards, descending into whichever subtype's derivation the tuple
//! satisfies, and returns the most specific type reached.

use crate::ast::ClauseAst;
use crate::model::{coerce_value, KerModel};
use intensio_storage::relation::Relation;
use intensio_storage::schema::Schema;
use intensio_storage::tuple::Tuple;
use intensio_storage::value::Value;

impl KerModel {
    /// Does a tuple (under `schema`) satisfy a derivation clause?
    fn satisfies_clause(&self, schema: &Schema, tuple: &Tuple, clause: &ClauseAst) -> bool {
        let Some(idx) = schema.index_of(&clause.attr.name) else {
            return false;
        };
        let actual = tuple.get(idx);
        // Coerce the declared constant to the stored value's type where
        // needed (class codes, numerics).
        let expected = actual
            .value_type()
            .and_then(|t| coerce_value(&clause.value, t))
            .unwrap_or_else(|| clause.value.clone());
        match actual.compare(&expected) {
            Ok(ord) => clause.op.matches(ord),
            Err(_) => false,
        }
    }

    /// Does a tuple satisfy every clause of a subtype's derivation?
    /// Types with an empty derivation match nothing here (membership is
    /// not decidable from the tuple alone).
    pub fn satisfies_derivation(&self, schema: &Schema, tuple: &Tuple, subtype: &str) -> bool {
        match self.derivation_of(subtype) {
            Some(clauses) if !clauses.is_empty() => clauses
                .iter()
                .all(|c| self.satisfies_clause(schema, tuple, c)),
            _ => false,
        }
    }

    /// Classify a tuple of `root`'s instances into the most specific
    /// subtype whose derivations it satisfies, walking the hierarchy
    /// top-down. Returns `root` itself when no subtype matches.
    pub fn classify_instance<'a>(
        &'a self,
        root: &'a str,
        schema: &Schema,
        tuple: &Tuple,
    ) -> &'a str {
        let mut current = match self.object_type(root) {
            Some(t) => t,
            None => return root,
        };
        'descend: loop {
            for child in &current.children {
                if self.satisfies_derivation(schema, tuple, child) {
                    if let Some(ct) = self.object_type(child) {
                        current = ct;
                        continue 'descend;
                    }
                }
            }
            return &current.name;
        }
    }

    /// The instances of a (sub)type within a relation of `root`
    /// instances: every tuple whose classification path passes through
    /// `subtype` (i.e. it satisfies the derivations from `root` down to
    /// `subtype`).
    pub fn instances_of(&self, root: &str, subtype: &str, relation: &Relation) -> Vec<Tuple> {
        if !self.is_subtype_of(subtype, root) {
            return Vec::new();
        }
        // Chain of derivations from root (exclusive) down to subtype.
        let mut chain: Vec<&str> = vec![subtype];
        let mut cur = subtype;
        while let Some(p) = self.parent_of(cur) {
            if p.eq_ignore_ascii_case(root) {
                break;
            }
            chain.push(p);
            cur = p;
        }
        relation
            .iter()
            .filter(|t| {
                chain
                    .iter()
                    .all(|s| self.satisfies_derivation(relation.schema(), t, s))
            })
            .cloned()
            .collect()
    }

    /// Count instances per direct subtype of `root` within a relation
    /// (the `has-instance` view of a hierarchy level). Unclassifiable
    /// tuples are reported under the root's own name.
    pub fn instance_distribution(&self, root: &str, relation: &Relation) -> Vec<(String, usize)> {
        let children: Vec<String> = self
            .object_type(root)
            .map(|t| t.children.clone())
            .unwrap_or_default();
        let mut counts: Vec<(String, usize)> = children.iter().map(|c| (c.clone(), 0)).collect();
        let mut unclassified = 0usize;
        for t in relation.iter() {
            let mut placed = false;
            for (i, c) in children.iter().enumerate() {
                if self.satisfies_derivation(relation.schema(), t, c) {
                    counts[i].1 += 1;
                    placed = true;
                    break;
                }
            }
            if !placed {
                unclassified += 1;
            }
        }
        if unclassified > 0 {
            counts.push((root.to_string(), unclassified));
        }
        counts
    }
}

/// Convenience: classify a single value as if it were a one-attribute
/// tuple (useful for classifying an attribute value against a hierarchy,
/// e.g. a sonar name against SONAR's subtypes).
pub fn classify_value<'m>(
    model: &'m KerModel,
    root: &'m str,
    attribute: &str,
    value: &Value,
) -> &'m str {
    let Some(t) = model.object_type(root) else {
        return root;
    };
    let mut current = t;
    'descend: loop {
        for child in &current.children {
            if let Some(clauses) = model.derivation_of(child) {
                if !clauses.is_empty()
                    && clauses.iter().all(|c| {
                        c.attr.name.eq_ignore_ascii_case(attribute)
                            && value
                                .compare(&coerce_to(value, &c.value))
                                .map(|o| c.op.matches(o))
                                .unwrap_or(false)
                    })
                {
                    if let Some(ct) = model.object_type(child) {
                        current = ct;
                        continue 'descend;
                    }
                }
            }
        }
        return &current.name;
    }
}

fn coerce_to(like: &Value, v: &Value) -> Value {
    like.value_type()
        .and_then(|t| coerce_value(v, t))
        .unwrap_or_else(|| v.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        object type CLASS
          has key: Class domain: CHAR[4]
          has: Type domain: CHAR[4]
          has: Displacement domain: INTEGER

        CLASS contains SSBN, SSN
        SSBN isa CLASS with Type = "SSBN"
        SSN  isa CLASS with Type = "SSN"
        SSBN contains C0101, C0102
        C0101 isa SSBN with Class = "0101"
        C0102 isa SSBN with Class = "0102"
    "#;

    fn model() -> KerModel {
        KerModel::parse(SRC).unwrap()
    }

    fn class_rel() -> Relation {
        use intensio_storage::domain::Domain;
        use intensio_storage::schema::Attribute;
        use intensio_storage::tuple;
        use intensio_storage::value::ValueType;
        let schema = Schema::new(vec![
            Attribute::key("Class", Domain::char_n(4)),
            Attribute::new("Type", Domain::char_n(4)),
            Attribute::new("Displacement", Domain::basic(ValueType::Int)),
        ])
        .unwrap();
        let mut r = Relation::new("CLASS", schema);
        r.insert_all([
            tuple!["0101", "SSBN", 16600],
            tuple!["0102", "SSBN", 7250],
            tuple!["0201", "SSN", 6000],
            tuple!["0203", "SSN", 4450],
        ])
        .unwrap();
        r
    }

    #[test]
    fn classifies_to_most_specific_subtype() {
        let m = model();
        let rel = class_rel();
        let t0101 = &rel.tuples()[0];
        assert_eq!(m.classify_instance("CLASS", rel.schema(), t0101), "C0101");
        let t0201 = &rel.tuples()[2];
        assert_eq!(m.classify_instance("CLASS", rel.schema(), t0201), "SSN");
    }

    #[test]
    fn unknown_values_stay_at_root() {
        use intensio_storage::tuple;
        let m = model();
        let rel = class_rel();
        let alien = tuple!["9999", "XXXX", 1];
        assert_eq!(m.classify_instance("CLASS", rel.schema(), &alien), "CLASS");
    }

    #[test]
    fn instances_of_intermediate_and_leaf_types() {
        let m = model();
        let rel = class_rel();
        assert_eq!(m.instances_of("CLASS", "SSBN", &rel).len(), 2);
        assert_eq!(m.instances_of("CLASS", "C0101", &rel).len(), 1);
        assert_eq!(m.instances_of("CLASS", "SSN", &rel).len(), 2);
        assert!(m.instances_of("CLASS", "NOPE", &rel).is_empty());
    }

    #[test]
    fn distribution_counts() {
        let m = model();
        let rel = class_rel();
        let d = m.instance_distribution("CLASS", &rel);
        assert_eq!(d, vec![("SSBN".to_string(), 2), ("SSN".to_string(), 2)]);
    }

    #[test]
    fn classify_single_value() {
        let m = KerModel::parse(
            r#"
            object type SONAR
              has key: Sonar domain: CHAR[8]
              has: SonarType domain: CHAR[8]
            SONAR contains BQQ, BQS
            BQQ isa SONAR with SonarType = "BQQ"
            BQS isa SONAR with SonarType = "BQS"
            "#,
        )
        .unwrap();
        assert_eq!(
            classify_value(&m, "SONAR", "SonarType", &Value::str("BQS")),
            "BQS"
        );
        assert_eq!(
            classify_value(&m, "SONAR", "SonarType", &Value::str("???")),
            "SONAR"
        );
    }
}
