//! # intensio-ker
//!
//! The Knowledge-based Entity-Relationship (KER) data model of Chu & Lee
//! (ICDE 1991), §2 and Appendix A: object types built from `has`/`with`
//! (aggregation), `isa`/`contains` `with` (generalization with derivation
//! constraints), and `has-instance` (classification via relations in
//! `intensio-storage`).
//!
//! The crate provides:
//! * an AST and recursive-descent parser for the Appendix A BNF (tolerant
//!   of the Appendix B notational conventions, including role
//!   declarations in comments);
//! * a resolved [`model::KerModel`] with attribute inheritance, domain
//!   resolution, hierarchy traversal, and classifying-attribute
//!   detection;
//! * textual rendering in the style of the paper's Figures 1, 2, and 5.
//!
//! ```
//! use intensio_ker::model::KerModel;
//!
//! let m = KerModel::parse(r#"
//!     object type SUBMARINE
//!       has key: Id domain: char[7]
//!       has: ShipType domain: char[4]
//!     SUBMARINE contains SSBN, SSN
//!     SSBN isa SUBMARINE with ShipType = "SSBN"
//!     SSN isa SUBMARINE with ShipType = "SSN"
//! "#).unwrap();
//! assert!(m.is_subtype_of("SSBN", "SUBMARINE"));
//! assert_eq!(m.classifier_of("SUBMARINE").unwrap().attribute, "ShipType");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod classify;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod render;

pub use ast::{
    AttrPath, AttributeDef, ClauseAst, ConsequenceAst, ConstraintAst, ContainsDef, DomainBase,
    DomainDef, DomainSpec, IsaDef, KerSchema, KerStatement, ObjectTypeDef, RoleDef,
};
pub use classify::classify_value;
pub use lexer::KerError;
pub use model::{coerce_value, Classifier, KerModel, ModelError, ObjectType};
pub use parser::parse;
