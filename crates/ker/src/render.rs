//! Textual rendering of KER models, reproducing the style of the paper's
//! Figure 1 (object type boxes), Figure 2 (type hierarchy tree), and
//! Figure 5 (hierarchy with induced rules).

use crate::ast::ConstraintAst;
use crate::model::KerModel;
use std::fmt::Write as _;

/// Render an object type in the Figure 1 style:
///
/// ```text
/// object type SUBMARINE
///   has key: ShipId        domain: char[10]
///   has:     ShipName      domain: char[20]
/// with Displacement in [2000..30000]
/// ```
pub fn render_object_type(model: &KerModel, name: &str) -> Option<String> {
    let t = model.object_type(name)?;
    let mut out = String::new();
    let _ = writeln!(out, "object type {}", t.name);
    let width = t
        .declared_attrs
        .iter()
        .map(|a| a.name().len())
        .max()
        .unwrap_or(0);
    for a in &t.declared_attrs {
        let kw = if a.is_key() { "has key:" } else { "has:    " };
        let _ = writeln!(
            out,
            "  {kw} {:<width$}  domain: {}",
            a.name(),
            a.domain().name()
        );
    }
    if !t.constraints.is_empty() {
        let _ = writeln!(out, "with");
        for c in &t.constraints {
            if let ConstraintAst::Rule { roles, .. } = c {
                if !roles.is_empty() {
                    let rendered: Vec<String> = roles.iter().map(|r| r.to_string()).collect();
                    let _ = writeln!(out, "  /* {} */", rendered.join(" and "));
                }
            }
            let _ = writeln!(out, "  {c}");
        }
    }
    Some(out)
}

/// Render a type hierarchy as an ASCII tree (Figure 2 style), annotating
/// each subtype with its derivation specification when present.
pub fn render_hierarchy(model: &KerModel, root: &str) -> Option<String> {
    model.object_type(root)?;
    let mut out = String::new();
    fn walk(model: &KerModel, name: &str, prefix: &str, is_last: bool, out: &mut String) {
        let t = match model.object_type(name) {
            Some(t) => t,
            None => return,
        };
        let connector = if prefix.is_empty() {
            ""
        } else if is_last {
            "└── "
        } else {
            "├── "
        };
        let derivation = if t.derivation.is_empty() {
            String::new()
        } else {
            let cs: Vec<String> = t.derivation.iter().map(|c| c.to_string()).collect();
            format!("  [with {}]", cs.join(" and "))
        };
        let _ = writeln!(out, "{prefix}{connector}{}{derivation}", t.name);
        let child_prefix = if prefix.is_empty() {
            String::new()
        } else if is_last {
            format!("{prefix}    ")
        } else {
            format!("{prefix}│   ")
        };
        let n = t.children.len();
        for (i, c) in t.children.clone().iter().enumerate() {
            let p = if prefix.is_empty() {
                "    ".to_string()
            } else {
                child_prefix.clone()
            };
            walk(model, c, &p, i + 1 == n, out);
        }
    }
    walk(model, root, "", true, &mut out);
    Some(out)
}

/// Render the whole model: every root hierarchy plus each object type
/// box, in declaration order (a textual stand-in for the paper's
/// Figure 4 KER diagram).
pub fn render_model(model: &KerModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Type hierarchies ==");
    for root in model.roots() {
        if let Some(tree) = render_hierarchy(model, root) {
            out.push_str(&tree);
            out.push('\n');
        }
    }
    let _ = writeln!(out, "== Object types ==");
    for name in model.type_names() {
        let has_attrs = model
            .object_type(name)
            .map(|t| !t.declared_attrs.is_empty())
            .unwrap_or(false);
        if has_attrs {
            if let Some(box_) = render_object_type(model, name) {
                out.push_str(&box_);
                out.push('\n');
            }
        }
    }
    out
}

/// Serialize a model back to KER source text that re-parses to an
/// equivalent model (types, attributes, hierarchies, derivations, and
/// rule constraints survive the round trip; resolved domain constraints
/// are emitted as their base types plus `char[n]` widths).
pub fn to_source(model: &KerModel) -> String {
    use intensio_storage::domain::DomainConstraint;
    let mut out = String::new();
    // Object type declarations (only types with declared attributes).
    for name in model.type_names() {
        let Some(t) = model.object_type(name) else {
            continue;
        };
        if t.declared_attrs.is_empty() {
            continue;
        }
        let _ = writeln!(out, "object type {}", t.name);
        for a in &t.declared_attrs {
            let kw = if a.is_key() { "has key:" } else { "has:" };
            // char[n] widths are expressible; other constraints reduce
            // to the base type keyword.
            let domain = a
                .domain()
                .constraints()
                .iter()
                .find_map(|c| match c {
                    DomainConstraint::CharLen(n) => Some(format!("char[{n}]")),
                    _ => None,
                })
                .unwrap_or_else(|| a.value_type().keyword().to_string());
            let _ = writeln!(out, "  {kw} {} domain: {domain}", a.name());
        }
        let rules: Vec<&ConstraintAst> = t
            .constraints
            .iter()
            .filter(|c| matches!(c, ConstraintAst::Rule { .. }))
            .collect();
        if !rules.is_empty() {
            let _ = writeln!(out, "with");
            let mut last_roles: Option<String> = None;
            for c in rules {
                if let ConstraintAst::Rule { roles, .. } = c {
                    if !roles.is_empty() {
                        let rendered: Vec<String> = roles.iter().map(|r| r.to_string()).collect();
                        let joined = rendered.join(" and ");
                        if last_roles.as_deref() != Some(&joined) {
                            let _ = writeln!(out, "  /* {joined} */");
                            last_roles = Some(joined);
                        }
                    }
                }
                let _ = writeln!(out, "  {c}");
            }
        }
        out.push('\n');
    }
    // Hierarchies: contains lists then isa derivations, parents first.
    for name in model.type_names() {
        let Some(t) = model.object_type(name) else {
            continue;
        };
        if t.children.is_empty() {
            continue;
        }
        let _ = writeln!(out, "{} contains {}", t.name, t.children.join(", "));
    }
    for name in model.type_names() {
        let Some(t) = model.object_type(name) else {
            continue;
        };
        let Some(parent) = &t.parent else { continue };
        if t.derivation.is_empty() {
            continue;
        }
        let clauses: Vec<String> = t.derivation.iter().map(|c| c.to_string()).collect();
        let _ = writeln!(
            out,
            "{} isa {parent} with {}",
            t.name,
            clauses.join(" and ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        object type SUBMARINE
          has key: ShipId domain: char[10]
          has: Displacement domain: integer
        with /* x isa SUBMARINE */
          if x.Displacement >= 7250 then x isa SSBN
          if x.Displacement <= 6955 then x isa SSN

        SUBMARINE contains SSBN, SSN
        SSBN isa SUBMARINE with ShipType = "SSBN"
        SSN isa SUBMARINE with ShipType = "SSN"
    "#;

    #[test]
    fn object_type_box() {
        let m = KerModel::parse(SRC).unwrap();
        let s = render_object_type(&m, "SUBMARINE").unwrap();
        assert!(s.contains("object type SUBMARINE"));
        assert!(s.contains("has key: ShipId"));
        assert!(s.contains("if x.Displacement >= 7250 then x isa SSBN"));
        assert!(s.contains("/* x isa SUBMARINE */"));
    }

    #[test]
    fn hierarchy_tree() {
        let m = KerModel::parse(SRC).unwrap();
        let s = render_hierarchy(&m, "SUBMARINE").unwrap();
        assert!(s.starts_with("SUBMARINE"));
        assert!(s.contains("SSBN"));
        assert!(s.contains("ShipType = \"SSBN\""));
        assert!(s.contains("└── SSN"));
    }

    #[test]
    fn whole_model_renders() {
        let m = KerModel::parse(SRC).unwrap();
        let s = render_model(&m);
        assert!(s.contains("== Type hierarchies =="));
        assert!(s.contains("== Object types =="));
    }

    #[test]
    fn to_source_round_trips() {
        let m = KerModel::parse(SRC).unwrap();
        let src = to_source(&m);
        let m2 = KerModel::parse(&src)
            .unwrap_or_else(|e| panic!("serialized source must re-parse: {e}\n{src}"));
        assert_eq!(m.type_names(), m2.type_names());
        assert_eq!(
            m.descendants_of("SUBMARINE"),
            m2.descendants_of("SUBMARINE")
        );
        assert_eq!(
            m.derivation_of("SSBN"),
            m2.derivation_of("SSBN"),
            "derivations must survive"
        );
        let a1 = m.all_attributes_of("SUBMARINE");
        let a2 = m2.all_attributes_of("SUBMARINE");
        assert_eq!(a1.len(), a2.len());
        for (x, y) in a1.iter().zip(&a2) {
            assert_eq!(x.name(), y.name());
            assert_eq!(x.value_type(), y.value_type());
            assert_eq!(x.is_key(), y.is_key());
        }
        // Rule constraints survive too.
        let c1 = &m.object_type("SUBMARINE").unwrap().constraints;
        let c2 = &m2.object_type("SUBMARINE").unwrap().constraints;
        assert_eq!(c1, c2);
    }

    #[test]
    fn ship_schema_round_trips_through_source() {
        let m = KerModel::parse(intensio_shipdb_src()).unwrap();
        let m2 = KerModel::parse(&to_source(&m)).unwrap();
        assert_eq!(m.type_names().len(), m2.type_names().len());
        assert_eq!(
            m.classifier_of("CLASS").unwrap().attribute,
            m2.classifier_of("CLASS").unwrap().attribute
        );
    }

    /// A trimmed copy of the ship schema (the full text lives in
    /// intensio-shipdb, which this crate cannot depend on).
    fn intensio_shipdb_src() -> &'static str {
        r#"
        object type CLASS
          has key: Class domain: CHAR[4]
          has: Type domain: CHAR[4]
          has: Displacement domain: INTEGER
        with /* x isa CLASS */
          if 2145 <= x.Displacement <= 6955 then x isa SSN
          if 7250 <= x.Displacement <= 30000 then x isa SSBN
        CLASS contains SSBN, SSN
        SSBN isa CLASS with Type = "SSBN"
        SSN isa CLASS with Type = "SSN"
        "#
    }

    #[test]
    fn unknown_type_is_none() {
        let m = KerModel::parse(SRC).unwrap();
        assert!(render_object_type(&m, "NOPE").is_none());
        assert!(render_hierarchy(&m, "NOPE").is_none());
    }
}
