//! The resolved KER model: object types, domains, and type hierarchies
//! with inheritance and derivation specifications.
//!
//! This is the *frame-based* half of the paper's intelligent data
//! dictionary (§5.3): each object type is a frame; the object hierarchy
//! is a hierarchy of frames. The rule-based half (induced semantic
//! rules) lives in `intensio-rules`.

use crate::ast::*;
use intensio_storage::domain::Domain;
use intensio_storage::schema::{Attribute, Schema};
use intensio_storage::value::{Value, ValueType};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An error while resolving a KER schema into a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelError(pub String);

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KER model error: {}", self.0)
    }
}

impl std::error::Error for ModelError {}

fn err(msg: impl Into<String>) -> ModelError {
    ModelError(msg.into())
}

/// A resolved object type (a frame in the data dictionary).
#[derive(Debug, Clone)]
pub struct ObjectType {
    /// The declared name.
    pub name: String,
    /// Attributes declared directly on this type.
    pub declared_attrs: Vec<Attribute>,
    /// Constraints attached to this type (`with` block), in AST form.
    pub constraints: Vec<ConstraintAst>,
    /// The supertype, if this type appears in an `isa`/`contains`.
    pub parent: Option<String>,
    /// Direct subtypes.
    pub children: Vec<String>,
    /// Derivation specification: clauses over the supertype's attributes
    /// that characterize membership (`SSBN isa SUBMARINE with
    /// ShipType = "SSBN"`).
    pub derivation: Vec<ClauseAst>,
}

/// A classifying attribute for a type hierarchy: the attribute whose
/// value determines which subtype an instance belongs to, with the
/// value → subtype mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct Classifier {
    /// The partitioning attribute (e.g. `Type` for the CLASS hierarchy).
    pub attribute: String,
    /// `(value, subtype name)` pairs, one per subtype.
    pub mapping: Vec<(Value, String)>,
}

impl Classifier {
    /// The subtype whose derivation value equals `v`.
    pub fn subtype_for(&self, v: &Value) -> Option<&str> {
        self.mapping
            .iter()
            .find(|(val, _)| val.sem_eq(v))
            .map(|(_, name)| name.as_str())
    }

    /// The derivation value for a subtype.
    pub fn value_for(&self, subtype: &str) -> Option<&Value> {
        self.mapping
            .iter()
            .find(|(_, name)| name.eq_ignore_ascii_case(subtype))
            .map(|(v, _)| v)
    }
}

/// The resolved KER model.
#[derive(Debug, Clone, Default)]
pub struct KerModel {
    domains: HashMap<String, Domain>,
    types: BTreeMap<String, ObjectType>,
    /// Preserves declaration order of object types for rendering.
    type_order: Vec<String>,
}

fn key(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl KerModel {
    /// Build a model from a parsed schema.
    pub fn from_schema(schema: &KerSchema) -> Result<KerModel, ModelError> {
        let mut model = KerModel::default();

        // Pass 1: domains (in order; bases must be defined earlier or be
        // standard).
        for d in schema.domains() {
            let dom = model.resolve_domain_def(d)?;
            model.domains.insert(key(&d.name), dom);
        }

        // Pass 2: declare object types (attributes resolved in pass 3 so
        // object-valued attributes can reference later types).
        for ot in schema.object_types() {
            if model.types.contains_key(&key(&ot.name)) {
                return Err(err(format!("duplicate object type: {}", ot.name)));
            }
            model.type_order.push(ot.name.clone());
            model.types.insert(
                key(&ot.name),
                ObjectType {
                    name: ot.name.clone(),
                    declared_attrs: Vec::new(),
                    constraints: ot.constraints.clone(),
                    parent: None,
                    children: Vec::new(),
                    derivation: Vec::new(),
                },
            );
        }

        // Pass 3: hierarchy edges, creating implicit subtypes.
        for c in schema.contains_defs() {
            if !model.types.contains_key(&key(&c.supertype)) {
                return Err(err(format!(
                    "`contains` on undeclared type: {}",
                    c.supertype
                )));
            }
            for sub in &c.subtypes {
                model.ensure_type(sub);
                model.link(sub, &c.supertype)?;
            }
            let sup = model
                .types
                .get_mut(&key(&c.supertype))
                .expect("checked above");
            sup.constraints.extend(c.constraints.iter().cloned());
            if !c.attrs.is_empty() {
                // Attributes listed on the hierarchy belong to the
                // supertype level.
                let resolved = Self::placeholder_attrs(&c.attrs);
                sup.declared_attrs.extend(resolved);
            }
        }
        for i in schema.isa_defs() {
            if !model.types.contains_key(&key(&i.supertype)) {
                return Err(err(format!("`isa` on undeclared type: {}", i.supertype)));
            }
            model.ensure_type(&i.subtype);
            model.link(&i.subtype, &i.supertype)?;
            let sub = model
                .types
                .get_mut(&key(&i.subtype))
                .expect("ensured above");
            sub.derivation = i.derivation.clone();
        }

        // Pass 4: resolve declared attributes now that all types exist.
        for ot in schema.object_types() {
            let mut resolved = Vec::with_capacity(ot.attrs.len());
            for a in &ot.attrs {
                resolved.push(model.resolve_attribute(a)?);
            }
            model
                .types
                .get_mut(&key(&ot.name))
                .expect("declared in pass 2")
                .declared_attrs = resolved;
        }

        // Pass 5: coerce rule constants to their attributes' types, and
        // check for hierarchy cycles.
        model.check_acyclic()?;
        model.coerce_constraint_values();
        Ok(model)
    }

    /// Parse and resolve in one step.
    pub fn parse(src: &str) -> Result<KerModel, ModelError> {
        let schema = crate::parser::parse(src).map_err(|e| err(e.to_string()))?;
        Self::from_schema(&schema)
    }

    fn ensure_type(&mut self, name: &str) {
        if !self.types.contains_key(&key(name)) {
            self.type_order.push(name.to_string());
            self.types.insert(
                key(name),
                ObjectType {
                    name: name.to_string(),
                    declared_attrs: Vec::new(),
                    constraints: Vec::new(),
                    parent: None,
                    children: Vec::new(),
                    derivation: Vec::new(),
                },
            );
        }
    }

    fn link(&mut self, child: &str, parent: &str) -> Result<(), ModelError> {
        {
            let c = self
                .types
                .get_mut(&key(child))
                .ok_or_else(|| err(format!("unknown type {child}")))?;
            match &c.parent {
                Some(p) if !p.eq_ignore_ascii_case(parent) => {
                    return Err(err(format!(
                        "type {child} has two supertypes: {p} and {parent}"
                    )));
                }
                _ => c.parent = Some(parent.to_string()),
            }
        }
        let p = self
            .types
            .get_mut(&key(parent))
            .ok_or_else(|| err(format!("unknown type {parent}")))?;
        if !p.children.iter().any(|c| c.eq_ignore_ascii_case(child)) {
            p.children.push(child.to_string());
        }
        Ok(())
    }

    fn check_acyclic(&self) -> Result<(), ModelError> {
        for name in self.types.keys() {
            let mut seen = vec![name.clone()];
            let mut cur = name.clone();
            while let Some(parent) = self.types.get(&cur).and_then(|t| t.parent.clone()) {
                let pk = key(&parent);
                if seen.contains(&pk) {
                    return Err(err(format!("hierarchy cycle through {parent}")));
                }
                seen.push(pk.clone());
                cur = pk;
            }
        }
        Ok(())
    }

    fn resolve_domain_def(&self, d: &DomainDef) -> Result<Domain, ModelError> {
        let base = match &d.base {
            DomainBase::Standard(t) => Domain::basic(*t).derive(&d.name),
            DomainBase::CharN(n) => Domain::char_n(*n).derive(&d.name),
            DomainBase::Named(n) => self
                .lookup_domain(n)
                .ok_or_else(|| err(format!("domain {} references unknown domain {n}", d.name)))?
                .derive(&d.name),
        };
        Ok(match &d.spec {
            None => base,
            Some(spec) => base.with_constraint(spec_to_constraint(spec)),
        })
    }

    /// Look up a domain by name: user-defined, `char[n]`, or standard.
    pub fn lookup_domain(&self, name: &str) -> Option<Domain> {
        if let Some(d) = self.domains.get(&key(name)) {
            return Some(d.clone());
        }
        if let Some(n) = parse_char_n(name) {
            return Some(Domain::char_n(n));
        }
        ValueType::from_keyword(name).map(Domain::basic)
    }

    fn resolve_attribute(&self, a: &AttributeDef) -> Result<Attribute, ModelError> {
        let domain = if let Some(d) = self.lookup_domain(&a.domain) {
            d
        } else if let Some(target) = self.types.get(&key(&a.domain)) {
            // Object-valued attribute: adopt the target type's key domain
            // (the paper's INSTALL has `Ship domain: SUBMARINE`).
            target
                .declared_attrs
                .iter()
                .find(|ka| ka.is_key())
                .map(|ka| ka.domain().clone())
                .unwrap_or_else(|| Domain::basic(ValueType::Str))
                .derive(&target.name)
        } else {
            return Err(err(format!(
                "attribute {} has unknown domain {}",
                a.name, a.domain
            )));
        };
        Ok(if a.key {
            Attribute::key(&a.name, domain)
        } else {
            Attribute::new(&a.name, domain)
        })
    }

    fn placeholder_attrs(attrs: &[AttributeDef]) -> Vec<Attribute> {
        attrs
            .iter()
            .map(|a| {
                let d = Domain::basic(ValueType::Str);
                if a.key {
                    Attribute::key(&a.name, d)
                } else {
                    Attribute::new(&a.name, d)
                }
            })
            .collect()
    }

    /// Coerce rule/derivation constants to the types of the attributes
    /// they constrain (class codes written as `0101` become strings when
    /// the attribute is a char domain, and vice versa).
    fn coerce_constraint_values(&mut self) {
        // Collect attribute types per object type (including inherited).
        let mut attr_types: HashMap<String, HashMap<String, ValueType>> = HashMap::new();
        let names: Vec<String> = self.types.keys().cloned().collect();
        for tkey in &names {
            let t = &self.types[tkey];
            let mut map = HashMap::new();
            for a in self.all_attributes_of(&t.name) {
                map.insert(key(a.name()), a.value_type());
            }
            attr_types.insert(tkey.clone(), map);
        }

        for tkey in &names {
            let lookup = |roles: &[RoleDef], attr: &AttrPath| -> Option<ValueType> {
                // Qualified by a role variable: use the role's type.
                if let Some(q) = &attr.qualifier {
                    if let Some(role) = roles.iter().find(|r| r.var.eq_ignore_ascii_case(q)) {
                        return attr_types
                            .get(&key(&role.type_name))
                            .and_then(|m| m.get(&key(&attr.name)))
                            .copied();
                    }
                    // Qualified by a type name directly.
                    return attr_types
                        .get(&key(q))
                        .and_then(|m| m.get(&key(&attr.name)))
                        .copied();
                }
                attr_types
                    .get(tkey)
                    .and_then(|m| m.get(&key(&attr.name)))
                    .copied()
            };

            let t = self.types.get_mut(tkey).expect("iterating keys");
            for c in &mut t.constraints {
                if let ConstraintAst::Rule {
                    roles,
                    premise,
                    consequence,
                } = c
                {
                    for cl in premise.iter_mut() {
                        if let Some(ty) = lookup(roles, &cl.attr) {
                            if let Some(v) = coerce_value(&cl.value, ty) {
                                cl.value = v;
                            }
                        }
                    }
                    if let ConsequenceAst::Clause(cl) = consequence {
                        if let Some(ty) = lookup(roles, &cl.attr) {
                            if let Some(v) = coerce_value(&cl.value, ty) {
                                cl.value = v;
                            }
                        }
                    }
                }
            }
            // Derivations are over the supertype's attributes.
            let parent_key = t.parent.as_deref().map(key);
            let t = self.types.get_mut(tkey).expect("iterating keys");
            for cl in t.derivation.iter_mut() {
                if let Some(pk) = &parent_key {
                    if let Some(ty) = attr_types.get(pk).and_then(|m| m.get(&key(&cl.attr.name))) {
                        if let Some(v) = coerce_value(&cl.value, *ty) {
                            cl.value = v;
                        }
                    }
                }
            }
        }
    }

    // ---- queries ----------------------------------------------------

    /// Look up an object type by name.
    pub fn object_type(&self, name: &str) -> Option<&ObjectType> {
        self.types.get(&key(name))
    }

    /// All object type names, in declaration order.
    pub fn type_names(&self) -> &[String] {
        &self.type_order
    }

    /// Whether a type is declared.
    pub fn contains_type(&self, name: &str) -> bool {
        self.types.contains_key(&key(name))
    }

    /// The attributes of a type, inherited then declared (a subtype
    /// inherits all properties of its supertypes unless redefined, §2).
    pub fn all_attributes_of(&self, name: &str) -> Vec<Attribute> {
        let mut chain: Vec<&ObjectType> = Vec::new();
        let mut cur = self.object_type(name);
        while let Some(t) = cur {
            chain.push(t);
            cur = t.parent.as_deref().and_then(|p| self.object_type(p));
        }
        // Supertype attributes first, subtype redefinitions override.
        let mut attrs: Vec<Attribute> = Vec::new();
        for t in chain.iter().rev() {
            for a in &t.declared_attrs {
                if let Some(existing) = attrs
                    .iter_mut()
                    .find(|x| x.name().eq_ignore_ascii_case(a.name()))
                {
                    *existing = a.clone();
                } else {
                    attrs.push(a.clone());
                }
            }
        }
        attrs
    }

    /// A storage schema for instances of a type.
    pub fn schema_for(&self, name: &str) -> Result<Schema, ModelError> {
        let attrs = self.all_attributes_of(name);
        if attrs.is_empty() {
            return Err(err(format!("type {name} has no attributes")));
        }
        Schema::new(attrs).map_err(|e| err(e.to_string()))
    }

    /// Direct parent of a type.
    pub fn parent_of(&self, name: &str) -> Option<&str> {
        self.object_type(name)?.parent.as_deref()
    }

    /// All ancestors, nearest first.
    pub fn ancestors_of(&self, name: &str) -> Vec<&str> {
        let mut out = Vec::new();
        let mut cur = self.parent_of(name);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent_of(p);
        }
        out
    }

    /// All descendants (preorder).
    pub fn descendants_of(&self, name: &str) -> Vec<&str> {
        let mut out = Vec::new();
        let mut stack: Vec<&str> = match self.object_type(name) {
            Some(t) => t.children.iter().map(String::as_str).collect(),
            None => return out,
        };
        stack.reverse();
        while let Some(c) = stack.pop() {
            out.push(c);
            if let Some(t) = self.object_type(c) {
                for ch in t.children.iter().rev() {
                    stack.push(ch);
                }
            }
        }
        out
    }

    /// Whether `sub` is a (transitive) subtype of `sup`.
    pub fn is_subtype_of(&self, sub: &str, sup: &str) -> bool {
        if sub.eq_ignore_ascii_case(sup) {
            return true;
        }
        self.ancestors_of(sub)
            .iter()
            .any(|a| a.eq_ignore_ascii_case(sup))
    }

    /// Root types (no parent).
    pub fn roots(&self) -> Vec<&str> {
        self.type_order
            .iter()
            .filter(|n| self.parent_of(n).is_none())
            .map(String::as_str)
            .collect()
    }

    /// The classifying attribute of a type's direct subtypes, if every
    /// subtype's derivation is a single equality on the same attribute
    /// (e.g. `Type` partitions CLASS into SSBN and SSN).
    pub fn classifier_of(&self, name: &str) -> Option<Classifier> {
        let t = self.object_type(name)?;
        if t.children.is_empty() {
            return None;
        }
        let mut attribute: Option<String> = None;
        let mut mapping = Vec::with_capacity(t.children.len());
        for child in &t.children {
            let c = self.object_type(child)?;
            let [clause] = c.derivation.as_slice() else {
                return None;
            };
            if clause.op != intensio_storage::expr::CmpOp::Eq {
                return None;
            }
            match &attribute {
                None => attribute = Some(clause.attr.name.clone()),
                Some(a) if a.eq_ignore_ascii_case(&clause.attr.name) => {}
                Some(_) => return None,
            }
            mapping.push((clause.value.clone(), c.name.clone()));
        }
        Some(Classifier {
            attribute: attribute?,
            mapping,
        })
    }

    /// Every classifier in the model: `(parent type name, classifier)`
    /// pairs for each hierarchy level whose subtypes are derived by a
    /// shared attribute equality.
    pub fn classifiers(&self) -> Vec<(&str, Classifier)> {
        self.type_order
            .iter()
            .filter_map(|name| self.classifier_of(name).map(|c| (name.as_str(), c)))
            .collect()
    }

    /// The subtype selected by `attribute = value` in *any* hierarchy
    /// whose classifier uses that attribute name. Classifying attribute
    /// names are assumed unique across the schema (true of the paper's
    /// test bed: `Type`, `Class`, `SonarType`); when several hierarchies
    /// share the attribute name, the first declared match wins.
    pub fn subtype_label_for(&self, attribute: &str, value: &Value) -> Option<String> {
        for (_, c) in self.classifiers() {
            if c.attribute.eq_ignore_ascii_case(attribute) {
                if let Some(s) = c.subtype_for(value) {
                    return Some(s.to_string());
                }
            }
        }
        None
    }

    /// The derivation clause(s) characterizing a subtype, if any.
    pub fn derivation_of(&self, subtype: &str) -> Option<&[ClauseAst]> {
        self.object_type(subtype).map(|t| t.derivation.as_slice())
    }

    /// The subtype of `parent` selected by `attr = value`, if the
    /// hierarchy has a classifier on `attr`.
    pub fn subtype_for_value(&self, parent: &str, attr: &str, value: &Value) -> Option<&str> {
        let c = self.classifier_of(parent)?;
        if !c.attribute.eq_ignore_ascii_case(attr) {
            return None;
        }
        let name = c.subtype_for(value)?;
        // Return the canonical name owned by the model.
        self.object_type(name).map(|t| {
            // Safety: classifier names come from `children`, which exist.
            let t: &ObjectType = t;
            t.name.as_str()
        })
    }
}

fn parse_char_n(name: &str) -> Option<usize> {
    let lower = name.to_ascii_lowercase();
    let rest = lower.strip_prefix("char[")?;
    let n = rest.strip_suffix(']')?;
    n.parse().ok()
}

fn spec_to_constraint(spec: &DomainSpec) -> intensio_storage::domain::DomainConstraint {
    use intensio_storage::domain::{Bound, DomainConstraint};
    match spec {
        DomainSpec::Range {
            lo,
            lo_inclusive,
            hi,
            hi_inclusive,
        } => DomainConstraint::Range {
            lo: lo.clone(),
            lo_bound: if *lo_inclusive {
                Bound::Inclusive
            } else {
                Bound::Exclusive
            },
            hi: hi.clone(),
            hi_bound: if *hi_inclusive {
                Bound::Inclusive
            } else {
                Bound::Exclusive
            },
        },
        DomainSpec::Set(vs) => DomainConstraint::Set(vs.clone()),
    }
}

/// Coerce a constant to an attribute's basic type, preserving meaning:
/// numbers render to strings, numeric strings parse to numbers. Returns
/// `None` when no sensible coercion exists (callers keep the original).
pub fn coerce_value(v: &Value, ty: ValueType) -> Option<Value> {
    match (v, ty) {
        (Value::Int(_), ValueType::Int)
        | (Value::Real(_), ValueType::Real)
        | (Value::Str(_), ValueType::Str)
        | (Value::Date(_), ValueType::Date) => Some(v.clone()),
        (Value::Int(i), ValueType::Real) => Some(Value::Real(*i as f64)),
        (Value::Real(r), ValueType::Int) if r.fract() == 0.0 => Some(Value::Int(*r as i64)),
        (Value::Int(i), ValueType::Str) => Some(Value::Str(i.to_string())),
        (Value::Real(r), ValueType::Str) => Some(Value::Str(r.to_string())),
        (Value::Str(s), ValueType::Int) => s.trim().parse::<i64>().ok().map(Value::Int),
        (Value::Str(s), ValueType::Real) => s.trim().parse::<f64>().ok().map(Value::Real),
        (Value::Str(s), ValueType::Date) => s.trim().parse().ok().map(Value::Date),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SHIP_SRC: &str = r#"
        domain: NAME isa CHAR[20]
        domain: SHIP_NAME isa NAME

        object type CLASS
          has key: Class domain: CHAR[4]
          has: ClassName domain: NAME
          has: Type domain: CHAR[4]
          has: Displacement domain: INTEGER
        with /* x isa CLASS */
          if 2145 <= x.Displacement <= 6955 then x isa SSN
          if 7250 <= x.Displacement <= 30000 then x isa SSBN

        CLASS contains SSBN, SSN

        SSBN isa CLASS with Type = "SSBN"
        SSN isa CLASS with Type = "SSN"

        object type SUBMARINE
          has key: Id domain: CHAR[7]
          has: Name domain: SHIP_NAME
          has: Class domain: class
    "#;

    fn model() -> KerModel {
        KerModel::from_schema(&parse(SHIP_SRC).unwrap()).unwrap()
    }

    #[test]
    fn resolves_domains_and_attributes() {
        let m = model();
        let class = m.object_type("CLASS").unwrap();
        assert_eq!(class.declared_attrs.len(), 4);
        assert!(class.declared_attrs[0].is_key());
        // SHIP_NAME chases NAME chases CHAR[20].
        let sub = m.object_type("SUBMARINE").unwrap();
        assert_eq!(sub.declared_attrs[1].value_type(), ValueType::Str);
        // Object-valued attribute Class adopts CLASS's key domain.
        assert_eq!(sub.declared_attrs[2].value_type(), ValueType::Str);
    }

    #[test]
    fn hierarchy_links() {
        let m = model();
        assert_eq!(m.parent_of("SSBN"), Some("CLASS"));
        assert_eq!(
            m.object_type("CLASS").unwrap().children,
            vec!["SSBN", "SSN"]
        );
        assert!(m.is_subtype_of("SSBN", "CLASS"));
        assert!(!m.is_subtype_of("CLASS", "SSBN"));
        assert!(m.is_subtype_of("CLASS", "CLASS"));
        assert_eq!(m.ancestors_of("SSBN"), vec!["CLASS"]);
        assert_eq!(m.descendants_of("CLASS"), vec!["SSBN", "SSN"]);
    }

    #[test]
    fn subtypes_inherit_attributes() {
        let m = model();
        let attrs = m.all_attributes_of("SSBN");
        assert_eq!(attrs.len(), 4, "SSBN inherits all CLASS attributes");
        assert_eq!(attrs[0].name(), "Class");
    }

    #[test]
    fn classifier_detected() {
        let m = model();
        let c = m.classifier_of("CLASS").unwrap();
        assert_eq!(c.attribute, "Type");
        assert_eq!(c.subtype_for(&Value::str("SSBN")), Some("SSBN"));
        assert_eq!(c.value_for("SSN"), Some(&Value::str("SSN")));
        assert_eq!(
            m.subtype_for_value("CLASS", "Type", &Value::str("SSN")),
            Some("SSN")
        );
        assert_eq!(
            m.subtype_for_value("CLASS", "Displacement", &Value::Int(5)),
            None
        );
    }

    #[test]
    fn roots_listed() {
        let m = model();
        assert_eq!(m.roots(), vec!["CLASS", "SUBMARINE"]);
    }

    #[test]
    fn cycle_detected() {
        let src = "object type A has key: X domain: integer\nA isa B\nB isa A";
        let schema = parse(src).unwrap();
        assert!(KerModel::from_schema(&schema).is_err());
    }

    #[test]
    fn two_parents_rejected() {
        let src = "\
            object type A has key: X domain: integer\n\
            object type B has key: X domain: integer\n\
            C isa A\nC isa B";
        let schema = parse(src).unwrap();
        assert!(KerModel::from_schema(&schema).is_err());
    }

    #[test]
    fn unknown_domain_rejected() {
        let src = "object type A has key: X domain: NOPE";
        let schema = parse(src).unwrap();
        assert!(KerModel::from_schema(&schema).is_err());
    }

    #[test]
    fn coercion_of_class_codes() {
        // `if 0101 <= Class <= 0103` parses as strings (leading zero) and
        // the CLASS.Class attribute is char, so values stay strings.
        let src = r#"
            object type CLASS
              has key: Class domain: CHAR[4]
              has: Type domain: CHAR[4]
            with
              if 0101 <= Class <= 0103 then Type = "SSBN"
        "#;
        let m = KerModel::parse(src).unwrap();
        let t = m.object_type("CLASS").unwrap();
        match &t.constraints[0] {
            ConstraintAst::Rule { premise, .. } => {
                assert_eq!(premise[0].value, Value::str("0101"));
            }
            other => panic!("expected rule, got {other:?}"),
        }
    }

    #[test]
    fn coerce_value_conversions() {
        assert_eq!(
            coerce_value(&Value::str("42"), ValueType::Int),
            Some(Value::Int(42))
        );
        assert_eq!(
            coerce_value(&Value::Int(7), ValueType::Str),
            Some(Value::str("7"))
        );
        assert_eq!(coerce_value(&Value::str("abc"), ValueType::Int), None);
        assert_eq!(
            coerce_value(&Value::Real(2.0), ValueType::Int),
            Some(Value::Int(2))
        );
        assert_eq!(coerce_value(&Value::Real(2.5), ValueType::Int), None);
    }

    #[test]
    fn schema_for_builds_storage_schema() {
        let m = model();
        let s = m.schema_for("SUBMARINE").unwrap();
        assert_eq!(s.arity(), 3);
        assert!(s.attr(0).is_key());
        assert!(m.schema_for("MISSING").is_err());
    }
}
