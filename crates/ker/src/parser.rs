//! Recursive-descent parser for KER schema text.
//!
//! Follows the BNF of the paper's Appendix A while accepting the notational
//! conventions of Appendix B and the figures:
//!
//! * `domain: NAME isa CHAR[20]` (colon after `domain`, `char[n]` bases);
//! * `has key: Class domain: CHAR[4]` (colon after `domain`);
//! * chained comparisons `2145 <= x.Displacement <= 6955`, desugared to a
//!   conjunction of two clauses;
//! * bare identifiers as string constants (`if Skate <= ClassName ...`);
//! * rule role declarations carried in comments
//!   (`with /* x isa SUBMARINE and y isa SONAR */`), which the parser
//!   promotes to real [`RoleDef`]s;
//! * numeric literals with leading zeros (class codes like `0101`) are
//!   preserved as strings so they can later be coerced by the attribute's
//!   domain.

use crate::ast::*;
use crate::lexer::{lex, KerError, Tok, Token};
use intensio_storage::expr::CmpOp;
use intensio_storage::value::{Value, ValueType};

/// Parse KER schema text into an AST.
pub fn parse(src: &str) -> Result<KerSchema, KerError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut statements = Vec::new();
    p.skip_comments();
    while !p.at_end() {
        statements.push(p.statement()?);
        p.skip_comments();
    }
    Ok(KerSchema { statements })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn peek_at(&self, n: usize) -> Option<&Tok> {
        self.tokens.get(self.pos + n).map(|t| &t.tok)
    }

    fn here(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| (t.line, t.col))
            .unwrap_or((0, 0))
    }

    fn err(&self, msg: impl Into<String>) -> KerError {
        let (line, col) = self.here();
        KerError::new(msg, line, col)
    }

    fn advance(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn skip_comments(&mut self) {
        while matches!(self.peek(), Some(Tok::Comment(_))) {
            self.pos += 1;
        }
    }

    /// Peek skipping comments; returns offset of the token found.
    fn peek_ident_kw(&self) -> Option<String> {
        match self.peek() {
            Some(Tok::Ident(s)) => Some(s.to_ascii_lowercase()),
            _ => None,
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), KerError> {
        match self.peek() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn accept_kw(&mut self, kw: &str) -> bool {
        match self.peek() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    fn accept(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), KerError> {
        if self.accept(tok) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{tok}`, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, KerError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    // ---- statements ------------------------------------------------

    fn statement(&mut self) -> Result<KerStatement, KerError> {
        match self.peek_ident_kw().as_deref() {
            Some("domain") => self.domain_def().map(KerStatement::Domain),
            Some("object") => self.object_type_def().map(KerStatement::ObjectType),
            Some(_) => {
                // `X contains ...` or `X isa ...`
                match self.peek_at(1) {
                    Some(Tok::Ident(k)) if k.eq_ignore_ascii_case("contains") => {
                        self.contains_def().map(KerStatement::Contains)
                    }
                    Some(Tok::Ident(k)) if k.eq_ignore_ascii_case("isa") => {
                        self.isa_def().map(KerStatement::Isa)
                    }
                    other => Err(self.err(format!(
                        "expected `contains` or `isa` after type name, found {other:?}"
                    ))),
                }
            }
            None => Err(self.err(format!("expected a statement, found {:?}", self.peek()))),
        }
    }

    /// `domain [:] NAME isa BASE [spec]`
    fn domain_def(&mut self) -> Result<DomainDef, KerError> {
        self.expect_kw("domain")?;
        self.accept(&Tok::Colon);
        let name = self.ident()?;
        self.expect_kw("isa")?;
        let base = self.domain_base()?;
        let spec = self.maybe_domain_spec()?;
        Ok(DomainDef { name, base, spec })
    }

    fn domain_base(&mut self) -> Result<DomainBase, KerError> {
        let name = self.ident()?;
        if name.eq_ignore_ascii_case("char") && self.peek() == Some(&Tok::LBracket) {
            self.expect(&Tok::LBracket)?;
            let n = self.int_literal()?;
            self.expect(&Tok::RBracket)?;
            return Ok(DomainBase::CharN(n as usize));
        }
        if let Some(t) = ValueType::from_keyword(&name) {
            return Ok(DomainBase::Standard(t));
        }
        Ok(DomainBase::Named(name))
    }

    fn int_literal(&mut self) -> Result<i64, KerError> {
        match self.advance() {
            Some(Tok::Num {
                value,
                is_int: true,
                ..
            }) => Ok(value as i64),
            other => Err(self.err(format!("expected integer, found {other:?}"))),
        }
    }

    /// Optional `range [lo..hi]` / `[lo..hi]` / `set of {..}`.
    fn maybe_domain_spec(&mut self) -> Result<Option<DomainSpec>, KerError> {
        if self.accept_kw("range") || matches!(self.peek(), Some(Tok::LBracket) | Some(Tok::LParen))
        {
            return self.range_spec().map(Some);
        }
        if self.peek_ident_kw().as_deref() == Some("set") {
            self.expect_kw("set")?;
            self.expect_kw("of")?;
            self.expect(&Tok::LBrace)?;
            let mut values = Vec::new();
            loop {
                values.push(self.constant()?);
                if !self.accept(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RBrace)?;
            return Ok(Some(DomainSpec::Set(values)));
        }
        Ok(None)
    }

    fn range_spec(&mut self) -> Result<DomainSpec, KerError> {
        let lo_inclusive = match self.advance() {
            Some(Tok::LBracket) => true,
            Some(Tok::LParen) => false,
            other => return Err(self.err(format!("expected `[` or `(`, found {other:?}"))),
        };
        let lo = self.constant()?;
        self.expect(&Tok::DotDot)?;
        let hi = self.constant()?;
        let hi_inclusive = match self.advance() {
            Some(Tok::RBracket) => true,
            Some(Tok::RParen) => false,
            other => return Err(self.err(format!("expected `]` or `)`, found {other:?}"))),
        };
        Ok(DomainSpec::Range {
            lo,
            lo_inclusive,
            hi,
            hi_inclusive,
        })
    }

    /// A constant: number (leading-zero integers become strings to keep
    /// their spelling), quoted string, or bare identifier (as a string).
    fn constant(&mut self) -> Result<Value, KerError> {
        match self.advance() {
            Some(Tok::Num {
                text,
                value,
                is_int,
            }) => Ok(num_value(&text, value, is_int)),
            Some(Tok::Str(s)) => Ok(Value::Str(s)),
            Some(Tok::Ident(s)) => Ok(Value::Str(s)),
            other => Err(self.err(format!("expected constant, found {other:?}"))),
        }
    }

    /// `object type NAME attr* [contains-clause?] [with ...]`
    fn object_type_def(&mut self) -> Result<ObjectTypeDef, KerError> {
        self.expect_kw("object")?;
        self.expect_kw("type")?;
        let name = self.ident()?;
        let attrs = self.attribute_list()?;
        let constraints = self.maybe_with_block()?;
        Ok(ObjectTypeDef {
            name,
            attrs,
            constraints,
        })
    }

    fn attribute_list(&mut self) -> Result<Vec<AttributeDef>, KerError> {
        let mut attrs = Vec::new();
        loop {
            self.skip_comments();
            if self.peek_ident_kw().as_deref() != Some("has") {
                break;
            }
            self.expect_kw("has")?;
            let key = self.accept_kw("key");
            self.expect(&Tok::Colon)?;
            let name = self.ident()?;
            self.expect_kw("domain")?;
            self.accept(&Tok::Colon);
            let domain = self.domain_name()?;
            // Optional trailing comma between attributes.
            self.accept(&Tok::Comma);
            attrs.push(AttributeDef { name, domain, key });
        }
        Ok(attrs)
    }

    fn domain_name(&mut self) -> Result<String, KerError> {
        let name = self.ident()?;
        if self.peek() == Some(&Tok::LBracket) {
            self.expect(&Tok::LBracket)?;
            let n = self.int_literal()?;
            self.expect(&Tok::RBracket)?;
            return Ok(format!("{}[{n}]", name.to_ascii_lowercase()));
        }
        Ok(name)
    }

    /// `SUPER contains S1, S2, ... [attrs] [with ...]`
    fn contains_def(&mut self) -> Result<ContainsDef, KerError> {
        let supertype = self.ident()?;
        self.expect_kw("contains")?;
        let mut subtypes = vec![self.ident()?];
        while self.accept(&Tok::Comma) {
            subtypes.push(self.ident()?);
        }
        let attrs = self.attribute_list()?;
        let constraints = self.maybe_with_block()?;
        Ok(ContainsDef {
            supertype,
            subtypes,
            attrs,
            constraints,
        })
    }

    /// `SUB isa SUPER [with clause (and clause)*]`
    fn isa_def(&mut self) -> Result<IsaDef, KerError> {
        let subtype = self.ident()?;
        self.expect_kw("isa")?;
        let supertype = self.ident()?;
        let mut derivation = Vec::new();
        if self.accept_kw("with") {
            self.skip_comments();
            derivation = self.clause_conjunction()?;
        }
        Ok(IsaDef {
            subtype,
            supertype,
            derivation,
        })
    }

    // ---- with-blocks and rules --------------------------------------

    /// Parse an optional `with` block of constraints. A comment directly
    /// inside the block that reads like role declarations
    /// (`x isa SUBMARINE and y isa SONAR`) sets the roles for the rules
    /// that follow it.
    fn maybe_with_block(&mut self) -> Result<Vec<ConstraintAst>, KerError> {
        if !self.accept_kw("with") {
            return Ok(Vec::new());
        }
        let mut constraints = Vec::new();
        let mut roles: Vec<RoleDef> = Vec::new();
        loop {
            // Role-bearing or decorative comments.
            while let Some(Tok::Comment(body)) = self.peek() {
                if let Some(r) = parse_roles_comment(body) {
                    roles = r;
                }
                self.pos += 1;
            }
            match self.peek_ident_kw().as_deref() {
                Some("if") => {
                    self.expect_kw("if")?;
                    let (inline_roles, premise) = self.premise()?;
                    self.expect_kw("then")?;
                    let consequence = self.consequence()?;
                    self.accept(&Tok::Comma);
                    // Explicit role definitions in the premise (the
                    // Appendix A structure-rule form) extend/override
                    // the comment-declared roles.
                    let mut all_roles = roles.clone();
                    for r in inline_roles {
                        if let Some(existing) = all_roles
                            .iter_mut()
                            .find(|e| e.var.eq_ignore_ascii_case(&r.var))
                        {
                            *existing = r;
                        } else {
                            all_roles.push(r);
                        }
                    }
                    constraints.push(ConstraintAst::Rule {
                        roles: all_roles,
                        premise,
                        consequence,
                    });
                }
                Some(_) if self.peek_at(1).map(is_in_kw).unwrap_or(false) => {
                    // `Attr in [lo..hi]` domain-range constraint.
                    let attr = self.ident()?;
                    self.expect_kw("in")?;
                    let spec = self
                        .maybe_domain_spec()?
                        .ok_or_else(|| self.err("expected range or set after `in`"))?;
                    self.accept(&Tok::Comma);
                    constraints.push(ConstraintAst::DomainRange { attr, spec });
                }
                _ => break,
            }
        }
        Ok(constraints)
    }

    /// A structure-rule premise: `item (and item)*` where each item is a
    /// role definition (`x isa TYPE`, Appendix A's explicit form) or a
    /// comparison chain.
    fn premise(&mut self) -> Result<(Vec<RoleDef>, Vec<ClauseAst>), KerError> {
        let mut roles = Vec::new();
        let mut clauses = Vec::new();
        loop {
            // Role definition lookahead: Ident `isa` Ident.
            let is_role = matches!(
                (self.peek(), self.peek_at(1)),
                (Some(Tok::Ident(_)), Some(Tok::Ident(k))) if k.eq_ignore_ascii_case("isa")
            );
            if is_role {
                let var = self.ident()?;
                self.expect_kw("isa")?;
                let type_name = self.ident()?;
                roles.push(RoleDef { var, type_name });
            } else {
                clauses.extend(self.comparison_chain()?);
            }
            if !self.accept_kw("and") {
                break;
            }
        }
        Ok((roles, clauses))
    }

    /// `chain (and chain)*`, desugaring comparison chains.
    fn clause_conjunction(&mut self) -> Result<Vec<ClauseAst>, KerError> {
        let mut clauses = self.comparison_chain()?;
        while self.accept_kw("and") {
            clauses.extend(self.comparison_chain()?);
        }
        Ok(clauses)
    }

    /// `operand (op operand)+` — two or more operands, one comparison
    /// between each adjacent pair.
    fn comparison_chain(&mut self) -> Result<Vec<ClauseAst>, KerError> {
        let mut operands = vec![self.operand()?];
        let mut ops = Vec::new();
        while let Some(op) = self.maybe_cmp_op() {
            ops.push(op);
            operands.push(self.operand()?);
        }
        if ops.is_empty() {
            return Err(self.err("expected comparison operator"));
        }
        let mut clauses = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            clauses.push(
                resolve_comparison(&operands[i], *op, &operands[i + 1], operands.len() > 2, i)
                    .map_err(|m| self.err(m))?,
            );
        }
        Ok(clauses)
    }

    fn maybe_cmp_op(&mut self) -> Option<CmpOp> {
        let op = match self.peek() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            _ => return None,
        };
        self.pos += 1;
        Some(op)
    }

    fn operand(&mut self) -> Result<Operand, KerError> {
        match self.peek() {
            Some(Tok::Num { .. }) | Some(Tok::Str(_)) => Ok(Operand::Const(self.constant()?)),
            Some(Tok::Ident(_)) => {
                let first = self.ident()?;
                if self.accept(&Tok::Dot) {
                    let name = self.ident()?;
                    Ok(Operand::Path(AttrPath::qualified(first, name)))
                } else {
                    Ok(Operand::Bare(first))
                }
            }
            other => Err(self.err(format!("expected operand, found {other:?}"))),
        }
    }

    fn consequence(&mut self) -> Result<ConsequenceAst, KerError> {
        // `x isa TYPE` or `Attr = constant` / `q.Attr = constant`.
        let op = self.operand()?;
        if self.accept_kw("isa") {
            let type_name = self.ident()?;
            let var = match op {
                Operand::Bare(v) => v,
                other => {
                    return Err(self.err(format!(
                        "expected a role variable before `isa`, found {other:?}"
                    )))
                }
            };
            return Ok(ConsequenceAst::Isa { var, type_name });
        }
        let cmp = self
            .maybe_cmp_op()
            .ok_or_else(|| self.err("expected `isa` or comparison in consequence"))?;
        let rhs = self.operand()?;
        resolve_comparison(&op, cmp, &rhs, false, 0)
            .map(ConsequenceAst::Clause)
            .map_err(|m| self.err(m))
    }
}

fn is_in_kw(tok: &Tok) -> bool {
    matches!(tok, Tok::Ident(s) if s.eq_ignore_ascii_case("in"))
}

/// A comparison operand before attribute/constant resolution.
#[derive(Debug, Clone, PartialEq)]
enum Operand {
    /// Literal constant.
    Const(Value),
    /// Qualified path — always an attribute.
    Path(AttrPath),
    /// Bare identifier — attribute or string constant, by position.
    Bare(String),
}

/// Decide which side of a comparison is the attribute and which is the
/// constant, normalizing so the attribute is on the left.
///
/// Rules (covering every form in the paper):
/// * a qualified path is always the attribute;
/// * a literal is always the constant;
/// * in a chain (`c1 <= A <= c2`), the shared middle operand is the
///   attribute: for the first comparison the attribute is on the right,
///   for later ones on the left;
/// * two bare identifiers: the left one is the attribute.
fn resolve_comparison(
    left: &Operand,
    op: CmpOp,
    right: &Operand,
    in_chain: bool,
    chain_index: usize,
) -> Result<ClauseAst, String> {
    use Operand::*;
    let clause = |attr: AttrPath, op: CmpOp, value: Value| ClauseAst { attr, op, value };
    let bare_path = |s: &str| AttrPath::bare(s);
    match (left, right) {
        (Path(a), Const(v)) => Ok(clause(a.clone(), op, v.clone())),
        (Const(v), Path(a)) => Ok(clause(a.clone(), op.flip(), v.clone())),
        (Path(a), Bare(b)) => Ok(clause(a.clone(), op, Value::Str(b.clone()))),
        (Bare(b), Path(a)) => Ok(clause(a.clone(), op.flip(), Value::Str(b.clone()))),
        (Bare(b), Const(v)) => Ok(clause(bare_path(b), op, v.clone())),
        (Const(v), Bare(b)) => Ok(clause(bare_path(b), op.flip(), v.clone())),
        (Bare(l), Bare(r)) => {
            if in_chain && chain_index == 0 {
                // `Skate <= ClassName <= ...`: middle operand is the attr.
                Ok(clause(bare_path(r), op.flip(), Value::Str(l.clone())))
            } else {
                Ok(clause(bare_path(l), op, Value::Str(r.clone())))
            }
        }
        (Const(_), Const(_)) => Err("comparison between two constants".to_string()),
        (Path(_), Path(_)) => {
            Err("comparison between two attributes is not a valid KER constraint".to_string())
        }
    }
}

/// Integer literals keep their spelling when leading zeros are present
/// (`0101` is a class code, not the number 101).
fn num_value(text: &str, value: f64, is_int: bool) -> Value {
    if is_int {
        if text.len() > 1 && text.starts_with('0') {
            Value::Str(text.to_string())
        } else {
            Value::Int(value as i64)
        }
    } else {
        Value::Real(value)
    }
}

/// Parse a role-declaration comment body: `x isa SUBMARINE` or
/// `x isa SUBMARINE and y isa SONAR`. Returns `None` if the comment is
/// not role-shaped.
fn parse_roles_comment(body: &str) -> Option<Vec<RoleDef>> {
    let mut roles = Vec::new();
    for part in body
        .split(|c: char| c.is_whitespace())
        .collect::<Vec<_>>()
        .join(" ")
        .split(" and ")
    {
        let words: Vec<&str> = part.split_whitespace().collect();
        match words.as_slice() {
            [var, isa, type_name] if isa.eq_ignore_ascii_case("isa") => {
                roles.push(RoleDef {
                    var: (*var).to_string(),
                    type_name: (*type_name).to_string(),
                });
            }
            _ => return None,
        }
    }
    if roles.is_empty() {
        None
    } else {
        Some(roles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1_object_type() {
        let src = r#"
            object type SUBMARINE
              has key: ShipId   domain: char[10]
              has:     ShipName domain: char[20]
              has:     ShipType domain: char[4]
              has:     Displacement domain: integer
            with Displacement in [2000..30000]
        "#;
        let schema = parse(src).unwrap();
        let ot = schema.object_types().next().unwrap();
        assert_eq!(ot.name, "SUBMARINE");
        assert_eq!(ot.attrs.len(), 4);
        assert!(ot.attrs[0].key);
        assert_eq!(ot.attrs[0].domain, "char[10]");
        assert_eq!(ot.constraints.len(), 1);
        match &ot.constraints[0] {
            ConstraintAst::DomainRange { attr, spec } => {
                assert_eq!(attr, "Displacement");
                assert!(matches!(
                    spec,
                    DomainSpec::Range {
                        lo: Value::Int(2000),
                        ..
                    }
                ));
            }
            other => panic!("expected domain range, got {other:?}"),
        }
    }

    #[test]
    fn parses_isa_with_derivation() {
        let src = r#"SSBN isa SUBMARINE with ShipType = "SSBN""#;
        let schema = parse(src).unwrap();
        let isa = schema.isa_defs().next().unwrap();
        assert_eq!(isa.subtype, "SSBN");
        assert_eq!(isa.supertype, "SUBMARINE");
        assert_eq!(isa.derivation.len(), 1);
        assert_eq!(isa.derivation[0].attr, AttrPath::bare("ShipType"));
        assert_eq!(isa.derivation[0].value, Value::str("SSBN"));
    }

    #[test]
    fn parses_figure5_structure_rules() {
        let src = r#"
            object type SUBMARINE
              has key: ShipId domain: char[20]
              has: Displacement domain: integer
            with /* x isa SUBMARINE */
              if x.Displacement >= 7250 then x isa SSBN
              if x.Displacement <= 6955 then x isa SSN
        "#;
        let schema = parse(src).unwrap();
        let ot = schema.object_types().next().unwrap();
        assert_eq!(ot.constraints.len(), 2);
        match &ot.constraints[0] {
            ConstraintAst::Rule {
                roles,
                premise,
                consequence,
            } => {
                assert_eq!(roles.len(), 1);
                assert_eq!(roles[0].var, "x");
                assert_eq!(roles[0].type_name, "SUBMARINE");
                assert_eq!(premise.len(), 1);
                assert_eq!(premise[0].op, CmpOp::Ge);
                assert_eq!(premise[0].value, Value::Int(7250));
                assert_eq!(
                    consequence,
                    &ConsequenceAst::Isa {
                        var: "x".to_string(),
                        type_name: "SSBN".to_string()
                    }
                );
            }
            other => panic!("expected rule, got {other:?}"),
        }
    }

    #[test]
    fn desugars_chained_comparison() {
        let src = r#"
            CLASS contains SSBN, SSN
            with /* x isa CLASS */
              if 2145 <= x.Displacement <= 6955 then x isa SSN
        "#;
        let schema = parse(src).unwrap();
        let c = schema.contains_defs().next().unwrap();
        assert_eq!(c.subtypes, vec!["SSBN", "SSN"]);
        match &c.constraints[0] {
            ConstraintAst::Rule { premise, .. } => {
                assert_eq!(premise.len(), 2);
                // 2145 <= x.D  →  x.D >= 2145
                assert_eq!(premise[0].op, CmpOp::Ge);
                assert_eq!(premise[0].value, Value::Int(2145));
                assert_eq!(premise[1].op, CmpOp::Le);
                assert_eq!(premise[1].value, Value::Int(6955));
            }
            other => panic!("expected rule, got {other:?}"),
        }
    }

    #[test]
    fn bare_identifier_chain_constants() {
        // `if Skate <= ClassName <= Thresher then x isa SSN`
        let src = r#"
            object type CLASS
              has key: Class domain: char[4]
              has: ClassName domain: char[20]
            with /* x isa CLASS */
              if Skate <= ClassName <= Thresher then x isa SSN
        "#;
        let schema = parse(src).unwrap();
        let ot = schema.object_types().next().unwrap();
        match &ot.constraints[0] {
            ConstraintAst::Rule { premise, .. } => {
                assert_eq!(premise.len(), 2);
                assert_eq!(premise[0].attr, AttrPath::bare("ClassName"));
                assert_eq!(premise[0].value, Value::str("Skate"));
                assert_eq!(premise[0].op, CmpOp::Ge);
                assert_eq!(premise[1].value, Value::str("Thresher"));
            }
            other => panic!("expected rule, got {other:?}"),
        }
    }

    #[test]
    fn leading_zero_codes_stay_strings() {
        let src = r#"
            object type CLASS
              has key: Class domain: char[4]
              has: Type domain: char[4]
            with
              if 0101 <= Class <= 0103 then Type = "SSBN"
        "#;
        let schema = parse(src).unwrap();
        let ot = schema.object_types().next().unwrap();
        match &ot.constraints[0] {
            ConstraintAst::Rule {
                premise,
                consequence,
                ..
            } => {
                assert_eq!(premise[0].value, Value::str("0101"));
                assert_eq!(premise[1].value, Value::str("0103"));
                assert!(
                    matches!(consequence, ConsequenceAst::Clause(c) if c.value == Value::str("SSBN"))
                );
            }
            other => panic!("expected rule, got {other:?}"),
        }
    }

    #[test]
    fn multi_role_comment() {
        let src = r#"
            object type INSTALL
              has key: Ship domain: SUBMARINE
              has: Sonar domain: SONAR
            with /* x isa SUBMARINE and y isa SONAR */
              if x.Class = 0203 then y isa BQQ
              if y.Sonar = "BQS-04" then x isa SSN
        "#;
        let schema = parse(src).unwrap();
        let ot = schema.object_types().next().unwrap();
        assert_eq!(ot.constraints.len(), 2);
        for c in &ot.constraints {
            match c {
                ConstraintAst::Rule { roles, .. } => {
                    assert_eq!(roles.len(), 2);
                    assert_eq!(roles[1].type_name, "SONAR");
                }
                other => panic!("expected rule, got {other:?}"),
            }
        }
    }

    #[test]
    fn domain_definitions() {
        let src = r#"
            domain: NAME isa CHAR[20]
            domain: SHIP_NAME isa NAME
            domain: AGE isa integer range [0..200]
            domain: GRADE isa string set of { "A", "B", "C" }
        "#;
        let schema = parse(src).unwrap();
        let domains: Vec<_> = schema.domains().collect();
        assert_eq!(domains.len(), 4);
        assert_eq!(domains[0].base, DomainBase::CharN(20));
        assert_eq!(domains[1].base, DomainBase::Named("NAME".to_string()));
        assert!(matches!(
            domains[2].spec,
            Some(DomainSpec::Range {
                lo: Value::Int(0),
                ..
            })
        ));
        assert!(matches!(&domains[3].spec, Some(DomainSpec::Set(v)) if v.len() == 3));
    }

    #[test]
    fn hyphenated_constants_in_rules() {
        let src = r#"
            object type SONAR
              has key: Sonar domain: char[8]
              has: SonarType domain: char[8]
            with /* x isa SONAR */
              if BQQ-2 <= x.Sonar <= BQQ-8 then x isa BQQ
        "#;
        let schema = parse(src).unwrap();
        let ot = schema.object_types().next().unwrap();
        match &ot.constraints[0] {
            ConstraintAst::Rule { premise, .. } => {
                assert_eq!(premise[0].value, Value::str("BQQ-2"));
                assert_eq!(premise[1].value, Value::str("BQQ-8"));
            }
            other => panic!("expected rule, got {other:?}"),
        }
    }

    #[test]
    fn error_reports_position() {
        let err = parse("object type").unwrap_err();
        assert!(err.line >= 1);
        assert!(!err.message.is_empty());
    }

    #[test]
    fn rejects_constant_only_comparison() {
        let src = r#"
            object type T
              has key: A domain: integer
            with
              if 1 <= 2 then A = 3
        "#;
        assert!(parse(src).is_err());
    }
}
