//! Lexer for KER schema text (paper Appendix A syntax, tolerant of the
//! Appendix B conventions).

use std::fmt;

/// A lexical error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KerError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl KerError {
    pub(crate) fn new(message: impl Into<String>, line: usize, col: usize) -> KerError {
        KerError {
            message: message.into(),
            line,
            col,
        }
    }
}

impl fmt::Display for KerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for KerError {}

/// A token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// A double-quoted string literal (quotes stripped).
    Str(String),
    /// A numeric literal; the raw spelling is preserved so values like
    /// `0101` can later be coerced to `char` domains without losing the
    /// leading zeros.
    Num {
        /// Raw source text.
        text: String,
        /// Parsed value.
        value: f64,
        /// Whether the literal had no fractional part.
        is_int: bool,
    },
    /// A `/* ... */` comment. Preserved because the paper's Appendix B
    /// declares rule roles inside comments (`with /* x isa SUBMARINE */`).
    Comment(String),
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Num { text, .. } => write!(f, "{text}"),
            Tok::Comment(_) => write!(f, "/* comment */"),
            Tok::Colon => write!(f, ":"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::DotDot => write!(f, ".."),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind.
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Tokenize KER source text.
pub fn lex(src: &str) -> Result<Vec<Token>, KerError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;

    let bump = |c: char, line: &mut usize, col: &mut usize| {
        if c == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
    };

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump(c, &mut line, &mut col);
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment; preserved as a token.
                let mut body = String::new();
                bump(c, &mut line, &mut col);
                bump('*', &mut line, &mut col);
                i += 2;
                loop {
                    if i >= chars.len() {
                        return Err(KerError::new("unterminated comment", tline, tcol));
                    }
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        bump('*', &mut line, &mut col);
                        bump('/', &mut line, &mut col);
                        i += 2;
                        break;
                    }
                    body.push(chars[i]);
                    bump(chars[i], &mut line, &mut col);
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Comment(body.trim().to_string()),
                    line: tline,
                    col: tcol,
                });
            }
            '-' if chars.get(i + 1) == Some(&'-') => {
                // Line comment, skipped entirely.
                while i < chars.len() && chars[i] != '\n' {
                    bump(chars[i], &mut line, &mut col);
                    i += 1;
                }
            }
            '"' => {
                bump(c, &mut line, &mut col);
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= chars.len() {
                        return Err(KerError::new("unterminated string", tline, tcol));
                    }
                    let ch = chars[i];
                    bump(ch, &mut line, &mut col);
                    i += 1;
                    if ch == '"' {
                        break;
                    }
                    s.push(ch);
                }
                tokens.push(Token {
                    tok: Tok::Str(s),
                    line: tline,
                    col: tcol,
                });
            }
            ':' => {
                tokens.push(Token {
                    tok: Tok::Colon,
                    line: tline,
                    col: tcol,
                });
                bump(c, &mut line, &mut col);
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    tok: Tok::Comma,
                    line: tline,
                    col: tcol,
                });
                bump(c, &mut line, &mut col);
                i += 1;
            }
            '.' => {
                if chars.get(i + 1) == Some(&'.') {
                    tokens.push(Token {
                        tok: Tok::DotDot,
                        line: tline,
                        col: tcol,
                    });
                    bump('.', &mut line, &mut col);
                    bump('.', &mut line, &mut col);
                    i += 2;
                } else {
                    tokens.push(Token {
                        tok: Tok::Dot,
                        line: tline,
                        col: tcol,
                    });
                    bump(c, &mut line, &mut col);
                    i += 1;
                }
            }
            '[' | ']' | '(' | ')' | '{' | '}' => {
                let tok = match c {
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '{' => Tok::LBrace,
                    _ => Tok::RBrace,
                };
                tokens.push(Token {
                    tok,
                    line: tline,
                    col: tcol,
                });
                bump(c, &mut line, &mut col);
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    tok: Tok::Eq,
                    line: tline,
                    col: tcol,
                });
                bump(c, &mut line, &mut col);
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                tokens.push(Token {
                    tok: Tok::Ne,
                    line: tline,
                    col: tcol,
                });
                bump('!', &mut line, &mut col);
                bump('=', &mut line, &mut col);
                i += 2;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token {
                        tok: Tok::Le,
                        line: tline,
                        col: tcol,
                    });
                    bump('<', &mut line, &mut col);
                    bump('=', &mut line, &mut col);
                    i += 2;
                } else {
                    tokens.push(Token {
                        tok: Tok::Lt,
                        line: tline,
                        col: tcol,
                    });
                    bump(c, &mut line, &mut col);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token {
                        tok: Tok::Ge,
                        line: tline,
                        col: tcol,
                    });
                    bump('>', &mut line, &mut col);
                    bump('=', &mut line, &mut col);
                    i += 2;
                } else {
                    tokens.push(Token {
                        tok: Tok::Gt,
                        line: tline,
                        col: tcol,
                    });
                    bump(c, &mut line, &mut col);
                    i += 1;
                }
            }
            d if d.is_ascii_digit() => {
                let mut text = String::new();
                let mut is_int = true;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    text.push(chars[i]);
                    bump(chars[i], &mut line, &mut col);
                    i += 1;
                }
                // A fractional part, but not `..` (range syntax).
                if i < chars.len()
                    && chars[i] == '.'
                    && chars.get(i + 1) != Some(&'.')
                    && chars.get(i + 1).map(|c| c.is_ascii_digit()) == Some(true)
                {
                    is_int = false;
                    text.push('.');
                    bump('.', &mut line, &mut col);
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        text.push(chars[i]);
                        bump(chars[i], &mut line, &mut col);
                        i += 1;
                    }
                }
                let value: f64 = text
                    .parse()
                    .map_err(|_| KerError::new(format!("bad number: {text}"), tline, tcol))?;
                tokens.push(Token {
                    tok: Tok::Num {
                        text,
                        value,
                        is_int,
                    },
                    line: tline,
                    col: tcol,
                });
            }
            a if a.is_ascii_alphabetic() || a == '_' => {
                let mut text = String::new();
                // Identifiers may contain '-' (ship ids like BQS-04 and
                // type names like CLASS-0101 appear in the paper).
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric()
                        || chars[i] == '_'
                        || (chars[i] == '-'
                            && chars
                                .get(i + 1)
                                .map(|c| c.is_ascii_alphanumeric())
                                .unwrap_or(false)))
                {
                    text.push(chars[i]);
                    bump(chars[i], &mut line, &mut col);
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Ident(text),
                    line: tline,
                    col: tcol,
                });
            }
            other => {
                return Err(KerError::new(
                    format!("unexpected character: {other:?}"),
                    tline,
                    tcol,
                ));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_object_type_header() {
        let t = toks("object type SUBMARINE has key: ShipId domain: char[10]");
        assert_eq!(t[0], Tok::Ident("object".to_string()));
        assert_eq!(t[2], Tok::Ident("SUBMARINE".to_string()));
        assert!(t.contains(&Tok::LBracket));
        assert!(matches!(t.last().unwrap(), Tok::RBracket));
    }

    #[test]
    fn lexes_range_with_dotdot() {
        let t = toks("with Displacement in [2000..30000]");
        assert!(t.contains(&Tok::DotDot));
        assert!(t
            .iter()
            .any(|x| matches!(x, Tok::Num { text, .. } if text == "2000")));
    }

    #[test]
    fn preserves_leading_zero_numbers() {
        let t = toks("0101");
        match &t[0] {
            Tok::Num {
                text,
                value,
                is_int,
            } => {
                assert_eq!(text, "0101");
                assert_eq!(*value, 101.0);
                assert!(is_int);
            }
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn comments_are_tokens() {
        let t = toks("with /* x isa SUBMARINE */ if");
        assert!(matches!(&t[1], Tok::Comment(c) if c == "x isa SUBMARINE"));
    }

    #[test]
    fn hyphenated_identifiers() {
        let t = toks("BQS-04 <= x.Sonar");
        assert_eq!(t[0], Tok::Ident("BQS-04".to_string()));
        assert_eq!(t[1], Tok::Le);
        assert_eq!(t[3], Tok::Dot);
    }

    #[test]
    fn comparison_operators() {
        let t = toks("= != < <= > >=");
        assert_eq!(
            t,
            vec![Tok::Eq, Tok::Ne, Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge]
        );
    }

    #[test]
    fn string_literals() {
        let t = toks(r#"ShipType = "SSBN""#);
        assert_eq!(t[2], Tok::Str("SSBN".to_string()));
    }

    #[test]
    fn reals_and_ranges_disambiguate() {
        let t = toks("[1.5..2.5]");
        assert!(t
            .iter()
            .any(|x| matches!(x, Tok::Num { value, is_int, .. } if *value == 1.5 && !is_int)));
        assert!(t.contains(&Tok::DotDot));
    }

    #[test]
    fn errors_carry_position() {
        let err = lex("ok\n  @").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.col, 3);
    }

    #[test]
    fn unterminated_comment_and_string() {
        assert!(lex("/* never ends").is_err());
        assert!(lex("\"never ends").is_err());
    }
}
