//! Robustness: the KER parser must return `Err`, never panic, on
//! arbitrary input, and must round-trip the schemas it accepts through
//! the model without loss of hierarchy structure.

use intensio_ker::model::KerModel;
use intensio_ker::parser::parse;
use proptest::prelude::*;

proptest! {
    #[test]
    fn parser_never_panics_on_noise(s in "[ -~\n\t]{0,200}") {
        let _ = parse(&s);
    }

    #[test]
    fn parser_never_panics_on_schema_like_noise(
        kw in prop::sample::select(vec![
            "object type", "domain:", "isa", "contains", "with", "if", "then", "has key:",
        ]),
        ident in "[A-Za-z][A-Za-z0-9_]{0,8}",
        tail in "[ -~]{0,40}",
    ) {
        let src = format!("{kw} {ident} {tail}");
        let _ = parse(&src);
    }

    #[test]
    fn generated_hierarchies_round_trip(
        n_subs in 1usize..6,
        attr in "[A-Z][a-z]{1,6}",
    ) {
        let mut src = format!(
            "object type ROOT\n  has key: Id domain: char[8]\n  has: {attr} domain: char[8]\n"
        );
        let subs: Vec<String> = (0..n_subs).map(|i| format!("SUB{i}")).collect();
        src.push_str(&format!("ROOT contains {}\n", subs.join(", ")));
        for (i, s) in subs.iter().enumerate() {
            src.push_str(&format!("{s} isa ROOT with {attr} = \"v{i}\"\n"));
        }
        let model = KerModel::parse(&src).unwrap();
        prop_assert_eq!(model.descendants_of("ROOT").len(), n_subs);
        let c = model.classifier_of("ROOT").unwrap();
        prop_assert!(c.attribute.eq_ignore_ascii_case(&attr));
        for (i, s) in subs.iter().enumerate() {
            prop_assert_eq!(
                model.subtype_label_for(&attr, &intensio_storage::value::Value::str(format!("v{i}"))),
                Some(s.clone())
            );
        }
    }
}

#[test]
fn pathological_nesting_is_rejected_cleanly() {
    // Deep garbage that once tripped naive recursive parsers.
    let src =
        "object type T has key: A domain: integer with ".to_string() + &"if 1 <= A and ".repeat(50);
    assert!(parse(&src).is_err());
}
