//! Appendix A structure rules with *explicit* role definitions in the
//! premise: `if <role definitions> and <conjunctives> then <variable>
//! isa <object type name>`.

use intensio_ker::ast::{ConsequenceAst, ConstraintAst};
use intensio_ker::model::KerModel;
use intensio_ker::parser::parse;
use intensio_storage::expr::CmpOp;
use intensio_storage::value::Value;

#[test]
fn explicit_roles_in_premise() {
    let src = r#"
        object type CLASS
          has key: Class domain: CHAR[4]
          has: Displacement domain: INTEGER
        with
          if x isa CLASS and x.Displacement >= 7250 then x isa SSBN
    "#;
    let schema = parse(src).unwrap();
    let ot = schema.object_types().next().unwrap();
    match &ot.constraints[0] {
        ConstraintAst::Rule {
            roles,
            premise,
            consequence,
        } => {
            assert_eq!(roles.len(), 1);
            assert_eq!(roles[0].var, "x");
            assert_eq!(roles[0].type_name, "CLASS");
            assert_eq!(premise.len(), 1);
            assert_eq!(premise[0].op, CmpOp::Ge);
            assert_eq!(premise[0].value, Value::Int(7250));
            assert_eq!(
                consequence,
                &ConsequenceAst::Isa {
                    var: "x".to_string(),
                    type_name: "SSBN".to_string()
                }
            );
        }
        other => panic!("expected rule, got {other:?}"),
    }
}

#[test]
fn two_explicit_roles_inter_object() {
    // The paper's INSTALL rules in the pure Appendix A form.
    let src = r#"
        object type INSTALL
          has key: Ship domain: CHAR[7]
          has: Sonar domain: CHAR[8]
        with
          if x isa SUBMARINE and y isa SONAR and x.Class = "0203" then y isa BQQ
    "#;
    let schema = parse(src).unwrap();
    let ot = schema.object_types().next().unwrap();
    match &ot.constraints[0] {
        ConstraintAst::Rule { roles, premise, .. } => {
            assert_eq!(roles.len(), 2);
            assert_eq!(roles[0].type_name, "SUBMARINE");
            assert_eq!(roles[1].type_name, "SONAR");
            assert_eq!(premise.len(), 1);
        }
        other => panic!("expected rule, got {other:?}"),
    }
}

#[test]
fn explicit_roles_override_comment_roles() {
    let src = r#"
        object type T
          has key: A domain: INTEGER
        with /* x isa OLD */
          if x isa NEW and x.A >= 1 then x isa SUB
    "#;
    let schema = parse(src).unwrap();
    let ot = schema.object_types().next().unwrap();
    match &ot.constraints[0] {
        ConstraintAst::Rule { roles, .. } => {
            assert_eq!(roles.len(), 1);
            assert_eq!(roles[0].type_name, "NEW", "inline definition wins");
        }
        other => panic!("expected rule, got {other:?}"),
    }
}

#[test]
fn model_compiles_explicit_role_rules() {
    let src = r#"
        object type CLASS
          has key: Class domain: CHAR[4]
          has: Type domain: CHAR[4]
          has: Displacement domain: INTEGER
        CLASS contains SSBN, SSN
        SSBN isa CLASS with Type = "SSBN"
        SSN isa CLASS with Type = "SSN"

        object type RULEHOST
          has key: Id domain: CHAR[4]
        with
          if x isa CLASS and 7250 <= x.Displacement <= 30000 then x isa SSBN
    "#;
    let m = KerModel::parse(src).unwrap();
    let host = m.object_type("RULEHOST").unwrap();
    assert_eq!(host.constraints.len(), 1);
}
