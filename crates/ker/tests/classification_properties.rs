//! Property tests tying the classification API together:
//! `classify_instance` and `instances_of` must agree, and
//! `instance_distribution` must partition the relation.

use intensio_ker::model::KerModel;
use intensio_storage::prelude::*;
use intensio_storage::tuple::Tuple;
use proptest::prelude::*;

fn model() -> KerModel {
    KerModel::parse(
        r#"
        object type ITEM
          has key: Id domain: CHAR[6]
          has: Kind domain: CHAR[2]
          has: Size domain: INTEGER
        ITEM contains KA, KB, KC
        KA isa ITEM with Kind = "ka"
        KB isa ITEM with Kind = "kb"
        KC isa ITEM with Kind = "kc"
        "#,
    )
    .unwrap()
}

fn relation(rows: &[(u8, i64)]) -> Relation {
    let schema = Schema::new(vec![
        Attribute::key("Id", Domain::char_n(6)),
        Attribute::new("Kind", Domain::char_n(2)),
        Attribute::new("Size", Domain::basic(ValueType::Int)),
    ])
    .unwrap();
    let mut r = Relation::new("ITEM", schema);
    for (i, (k, size)) in rows.iter().enumerate() {
        // k in 0..4: 3 real kinds plus an unknown one.
        let kind = match k % 4 {
            0 => "ka",
            1 => "kb",
            2 => "kc",
            _ => "zz",
        };
        r.insert(Tuple::new(vec![
            Value::str(format!("I{i:05}")),
            Value::str(kind),
            Value::Int(*size),
        ]))
        .unwrap();
    }
    r
}

proptest! {
    #[test]
    fn classify_agrees_with_instances_of(rows in prop::collection::vec((0u8..4, -5i64..5), 0..40)) {
        let m = model();
        let rel = relation(&rows);
        for t in rel.iter() {
            let class = m.classify_instance("ITEM", rel.schema(), t);
            if class != "ITEM" {
                let members = m.instances_of("ITEM", class, &rel);
                prop_assert!(
                    members.iter().any(|x| x == t),
                    "tuple classified as {class} must be among its instances"
                );
            }
        }
    }

    #[test]
    fn distribution_partitions_relation(rows in prop::collection::vec((0u8..4, -5i64..5), 0..40)) {
        let m = model();
        let rel = relation(&rows);
        let dist = m.instance_distribution("ITEM", &rel);
        let total: usize = dist.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(total, rel.len(), "every tuple lands in exactly one bucket");
        // Unknown kinds land in the root bucket.
        let unknown = rows.iter().filter(|(k, _)| k % 4 == 3).count();
        let root = dist
            .iter()
            .find(|(name, _)| name == "ITEM")
            .map(|(_, n)| *n)
            .unwrap_or(0);
        prop_assert_eq!(root, unknown);
    }
}
