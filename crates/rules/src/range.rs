//! Value ranges and their algebra.
//!
//! The paper's rule clauses are closed intervals `(lvalue, attribute,
//! uvalue)` ≡ `lvalue ≤ attribute ≤ uvalue` (§5.2.2). Query conditions,
//! however, can be half-open (`Displacement > 8000`), so the general
//! [`ValueRange`] supports optional, inclusive-or-exclusive endpoints.
//! Subsumption between query conditions and rule premises — the heart of
//! forward type inference (§4) — is interval containment.

use intensio_storage::expr::CmpOp;
use intensio_storage::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// One endpoint of a range.
#[derive(Debug, Clone, PartialEq)]
pub struct Endpoint {
    /// The boundary value.
    pub value: Value,
    /// Whether the boundary itself is included.
    pub inclusive: bool,
}

impl Endpoint {
    /// An inclusive endpoint.
    pub fn incl(value: impl Into<Value>) -> Endpoint {
        Endpoint {
            value: value.into(),
            inclusive: true,
        }
    }

    /// An exclusive endpoint.
    pub fn excl(value: impl Into<Value>) -> Endpoint {
        Endpoint {
            value: value.into(),
            inclusive: false,
        }
    }
}

/// A (possibly unbounded) interval of values of one comparable type.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueRange {
    /// Lower bound; `None` means unbounded below.
    pub lo: Option<Endpoint>,
    /// Upper bound; `None` means unbounded above.
    pub hi: Option<Endpoint>,
}

impl ValueRange {
    /// The full range (no constraint).
    pub fn full() -> ValueRange {
        ValueRange { lo: None, hi: None }
    }

    /// The closed interval `[lo, hi]` — the paper's clause form.
    pub fn closed(lo: impl Into<Value>, hi: impl Into<Value>) -> ValueRange {
        ValueRange {
            lo: Some(Endpoint::incl(lo)),
            hi: Some(Endpoint::incl(hi)),
        }
    }

    /// The degenerate interval `[v, v]` (an equality).
    pub fn point(v: impl Into<Value>) -> ValueRange {
        let v = v.into();
        ValueRange::closed(v.clone(), v)
    }

    /// The range equivalent to `attribute op constant`.
    ///
    /// `Ne` has no single-interval equivalent and returns `None`.
    pub fn from_cmp(op: CmpOp, v: impl Into<Value>) -> Option<ValueRange> {
        let v = v.into();
        Some(match op {
            CmpOp::Eq => ValueRange::point(v),
            CmpOp::Ne => return None,
            CmpOp::Lt => ValueRange {
                lo: None,
                hi: Some(Endpoint::excl(v)),
            },
            CmpOp::Le => ValueRange {
                lo: None,
                hi: Some(Endpoint::incl(v)),
            },
            CmpOp::Gt => ValueRange {
                lo: Some(Endpoint::excl(v)),
                hi: None,
            },
            CmpOp::Ge => ValueRange {
                lo: Some(Endpoint::incl(v)),
                hi: None,
            },
        })
    }

    /// Whether this is a single point (`lo == hi`, both inclusive).
    pub fn is_point(&self) -> bool {
        match (&self.lo, &self.hi) {
            (Some(l), Some(h)) => l.inclusive && h.inclusive && l.value.sem_eq(&h.value),
            _ => false,
        }
    }

    /// The point value, if this is a degenerate interval.
    pub fn as_point(&self) -> Option<&Value> {
        if self.is_point() {
            self.lo.as_ref().map(|e| &e.value)
        } else {
            None
        }
    }

    /// Whether `v` lies in the range. Incomparable values are outside.
    pub fn contains(&self, v: &Value) -> bool {
        if let Some(lo) = &self.lo {
            match v.compare(&lo.value) {
                Ok(Ordering::Greater) => {}
                Ok(Ordering::Equal) if lo.inclusive => {}
                _ => return false,
            }
        }
        if let Some(hi) = &self.hi {
            match v.compare(&hi.value) {
                Ok(Ordering::Less) => {}
                Ok(Ordering::Equal) if hi.inclusive => {}
                _ => return false,
            }
        }
        true
    }

    /// Whether `self` contains every value of `other` (self ⊇ other).
    ///
    /// Comparisons between incomparable endpoint types yield `false`
    /// (conservative: no subsumption claimed).
    pub fn subsumes(&self, other: &ValueRange) -> bool {
        let lo_ok = match (&self.lo, &other.lo) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => match b.value.compare(&a.value) {
                Ok(Ordering::Greater) => true,
                Ok(Ordering::Equal) => a.inclusive || !b.inclusive,
                _ => false,
            },
        };
        if !lo_ok {
            return false;
        }
        match (&self.hi, &other.hi) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => match b.value.compare(&a.value) {
                Ok(Ordering::Less) => true,
                Ok(Ordering::Equal) => a.inclusive || !b.inclusive,
                _ => false,
            },
        }
    }

    /// The intersection, or `None` when provably empty.
    ///
    /// With incomparable endpoints the result is `None` (conservative).
    pub fn intersect(&self, other: &ValueRange) -> Option<ValueRange> {
        let lo = tighter(&self.lo, &other.lo, true)?;
        let hi = tighter(&self.hi, &other.hi, false)?;
        if let (Some(l), Some(h)) = (&lo, &hi) {
            match l.value.compare(&h.value) {
                Ok(Ordering::Greater) => return None,
                Ok(Ordering::Equal) if !(l.inclusive && h.inclusive) => return None,
                Ok(_) => {}
                Err(_) => return None,
            }
        }
        Some(ValueRange { lo, hi })
    }

    /// Whether the two ranges overlap.
    pub fn intersects(&self, other: &ValueRange) -> bool {
        self.intersect(other).is_some()
    }

    /// Merge two *overlapping or touching* ranges into their hull; `None`
    /// if they are disjoint and non-adjacent (a union would not be an
    /// interval).
    pub fn merge(&self, other: &ValueRange) -> Option<ValueRange> {
        let touching = self.intersects(other)
            || adjacent(&self.hi, &other.lo)
            || adjacent(&other.hi, &self.lo);
        if !touching {
            return None;
        }
        let lo = looser(&self.lo, &other.lo, true)?;
        let hi = looser(&self.hi, &other.hi, false)?;
        Some(ValueRange { lo, hi })
    }
}

/// Two endpoints are adjacent when `hi` and `lo` share a value and at
/// least one side includes it (`[a, b] ∪ (b, c] = [a, c]`).
fn adjacent(hi: &Option<Endpoint>, lo: &Option<Endpoint>) -> bool {
    match (hi, lo) {
        (Some(h), Some(l)) => h.value.sem_eq(&l.value) && (h.inclusive || l.inclusive),
        _ => false,
    }
}

/// The tighter of two bounds (max of lower bounds / min of upper bounds).
/// Returns `Err`-like `None` on incomparable values.
#[allow(clippy::type_complexity)]
fn tighter(a: &Option<Endpoint>, b: &Option<Endpoint>, is_lower: bool) -> Option<Option<Endpoint>> {
    match (a, b) {
        (None, None) => Some(None),
        (Some(x), None) | (None, Some(x)) => Some(Some(x.clone())),
        (Some(x), Some(y)) => {
            let ord = x.value.compare(&y.value).ok()?;
            let pick_x = match ord {
                Ordering::Equal => !x.inclusive || y.inclusive,
                Ordering::Greater => is_lower,
                Ordering::Less => !is_lower,
            };
            Some(Some(if pick_x { x.clone() } else { y.clone() }))
        }
    }
}

/// The looser of two bounds (min of lower bounds / max of upper bounds).
#[allow(clippy::type_complexity)]
fn looser(a: &Option<Endpoint>, b: &Option<Endpoint>, is_lower: bool) -> Option<Option<Endpoint>> {
    match (a, b) {
        (None, _) | (_, None) => Some(None),
        (Some(x), Some(y)) => {
            let ord = x.value.compare(&y.value).ok()?;
            let pick_x = match ord {
                Ordering::Equal => x.inclusive || !y.inclusive,
                Ordering::Greater => !is_lower,
                Ordering::Less => is_lower,
            };
            Some(Some(if pick_x { x.clone() } else { y.clone() }))
        }
    }
}

impl fmt::Display for ValueRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = self.as_point() {
            return write!(f, "= {p}");
        }
        match (&self.lo, &self.hi) {
            (None, None) => write!(f, "(unconstrained)"),
            (Some(l), None) => write!(f, "{} {}", if l.inclusive { ">=" } else { ">" }, l.value),
            (None, Some(h)) => write!(f, "{} {}", if h.inclusive { "<=" } else { "<" }, h.value),
            (Some(l), Some(h)) => write!(
                f,
                "in {}{}, {}{}",
                if l.inclusive { '[' } else { '(' },
                l.value,
                h.value,
                if h.inclusive { ']' } else { ')' }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_respects_bounds() {
        let r = ValueRange::closed(7250, 30000);
        assert!(r.contains(&Value::Int(7250)));
        assert!(r.contains(&Value::Int(30000)));
        assert!(!r.contains(&Value::Int(7249)));
        let open = ValueRange::from_cmp(CmpOp::Gt, 8000).unwrap();
        assert!(!open.contains(&Value::Int(8000)));
        assert!(open.contains(&Value::Int(8001)));
    }

    #[test]
    fn strings_work_too() {
        // R1: SSN623 <= Id <= SSN635.
        let r = ValueRange::closed("SSBN623", "SSBN635");
        assert!(r.contains(&Value::str("SSBN629")));
        assert!(!r.contains(&Value::str("SSBN644")));
        assert!(!r.contains(&Value::Int(5)), "incomparable is outside");
    }

    #[test]
    fn subsumption_paper_example1() {
        // "Displacement > 8000 is subsumed by Displacement >= 7250".
        let rule_lhs = ValueRange::from_cmp(CmpOp::Ge, 7250).unwrap();
        let cond = ValueRange::from_cmp(CmpOp::Gt, 8000).unwrap();
        assert!(rule_lhs.subsumes(&cond));
        assert!(!cond.subsumes(&rule_lhs));
    }

    #[test]
    fn subsumption_boundary_inclusivity() {
        let a = ValueRange::from_cmp(CmpOp::Ge, 10).unwrap();
        let b = ValueRange::from_cmp(CmpOp::Gt, 10).unwrap();
        assert!(a.subsumes(&b));
        assert!(!b.subsumes(&a));
        assert!(a.subsumes(&a));
        assert!(b.subsumes(&b));
    }

    #[test]
    fn intersect_closed() {
        let a = ValueRange::closed(0, 10);
        let b = ValueRange::closed(5, 20);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, ValueRange::closed(5, 10));
        let c = ValueRange::closed(11, 20);
        assert!(a.intersect(&c).is_none());
        // Touching at a point with both inclusive is non-empty.
        let d = ValueRange::closed(10, 15);
        assert_eq!(a.intersect(&d).unwrap(), ValueRange::point(10));
    }

    #[test]
    fn intersect_exclusive_touch_is_empty() {
        let a = ValueRange::from_cmp(CmpOp::Lt, 10).unwrap();
        let b = ValueRange::from_cmp(CmpOp::Ge, 10).unwrap();
        assert!(a.intersect(&b).is_none());
        let c = ValueRange::from_cmp(CmpOp::Le, 10).unwrap();
        assert_eq!(c.intersect(&b).unwrap(), ValueRange::point(10));
    }

    #[test]
    fn merge_overlapping_and_adjacent() {
        let a = ValueRange::closed(0, 10);
        let b = ValueRange::closed(5, 20);
        assert_eq!(a.merge(&b).unwrap(), ValueRange::closed(0, 20));
        // Adjacent: [0,10] and (10, 20].
        let c = ValueRange {
            lo: Some(Endpoint::excl(10)),
            hi: Some(Endpoint::incl(20)),
        };
        assert_eq!(a.merge(&c).unwrap(), ValueRange::closed(0, 20));
        // Disjoint.
        let d = ValueRange::closed(12, 20);
        assert!(a.merge(&d).is_none());
    }

    #[test]
    fn from_cmp_covers_operators() {
        assert_eq!(
            ValueRange::from_cmp(CmpOp::Eq, 5).unwrap(),
            ValueRange::point(5)
        );
        assert!(ValueRange::from_cmp(CmpOp::Ne, 5).is_none());
        assert!(ValueRange::from_cmp(CmpOp::Le, 5)
            .unwrap()
            .contains(&Value::Int(5)));
        assert!(!ValueRange::from_cmp(CmpOp::Lt, 5)
            .unwrap()
            .contains(&Value::Int(5)));
    }

    #[test]
    fn point_detection() {
        assert!(ValueRange::point("SSBN").is_point());
        assert_eq!(
            ValueRange::point("SSBN").as_point(),
            Some(&Value::str("SSBN"))
        );
        assert!(!ValueRange::closed(1, 2).is_point());
        assert!(!ValueRange::full().is_point());
    }

    #[test]
    fn full_range_subsumes_everything() {
        let f = ValueRange::full();
        assert!(f.subsumes(&ValueRange::closed(0, 1)));
        assert!(f.subsumes(&f));
        assert!(!ValueRange::closed(0, 1).subsumes(&f));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ValueRange::point(5).to_string(), "= 5");
        assert_eq!(ValueRange::closed(1, 2).to_string(), "in [1, 2]");
        assert_eq!(
            ValueRange::from_cmp(CmpOp::Gt, 8000).unwrap().to_string(),
            "> 8000"
        );
    }
}
