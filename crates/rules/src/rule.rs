//! Induced rules: Horn clauses over attribute value ranges (§5.2.2).
//!
//! Each rule is `if C_L1 and ... and C_Ln then C_R`, where every clause
//! constrains one attribute to a closed value range. A rule may carry a
//! *subtype label*: when its consequence equates a hierarchy's
//! classifying attribute with a subtype's derivation value, the rule is
//! equivalently `... then x isa SUBTYPE` (the form the paper prints).

use crate::range::ValueRange;
use intensio_storage::value::Value;
use std::fmt;

/// An attribute identified by its owning object type (or relation) and
/// name, e.g. `CLASS.Displacement`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId {
    /// The object type / relation name.
    pub object: String,
    /// The attribute name.
    pub attribute: String,
}

impl AttrId {
    /// Construct an attribute id.
    pub fn new(object: impl Into<String>, attribute: impl Into<String>) -> AttrId {
        AttrId {
            object: object.into(),
            attribute: attribute.into(),
        }
    }

    /// Case-insensitive equality.
    pub fn matches(&self, object: &str, attribute: &str) -> bool {
        self.object.eq_ignore_ascii_case(object) && self.attribute.eq_ignore_ascii_case(attribute)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.object, self.attribute)
    }
}

/// A clause `(lvalue, attribute, uvalue)`: the attribute's value lies in
/// a range. Rule clauses are closed ranges; clause ranges derived from
/// query conditions may be half-open.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    /// The constrained attribute.
    pub attr: AttrId,
    /// The admitted range.
    pub range: ValueRange,
}

impl Clause {
    /// `lvalue <= attr <= uvalue`.
    pub fn between(attr: AttrId, lo: impl Into<Value>, hi: impl Into<Value>) -> Clause {
        Clause {
            attr,
            range: ValueRange::closed(lo, hi),
        }
    }

    /// `attr = value`.
    pub fn equals(attr: AttrId, v: impl Into<Value>) -> Clause {
        Clause {
            attr,
            range: ValueRange::point(v),
        }
    }

    /// Whether this clause's range subsumes another clause on the same
    /// attribute.
    pub fn subsumes(&self, other: &Clause) -> bool {
        self.attr == other.attr && self.range.subsumes(&other.range)
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = self.range.as_point() {
            return write!(f, "{} = {p}", self.attr);
        }
        match (&self.range.lo, &self.range.hi) {
            (Some(l), Some(h)) if l.inclusive && h.inclusive => {
                write!(f, "{} <= {} <= {}", l.value, self.attr, h.value)
            }
            _ => write!(f, "{} {}", self.attr, self.range),
        }
    }
}

/// An induced rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule number (unique within a [`RuleSet`]).
    pub id: u32,
    /// Premise clauses (conjunction).
    pub lhs: Vec<Clause>,
    /// Consequence clause (Horn: exactly one).
    pub rhs: Clause,
    /// When the consequence selects a subtype of a hierarchy, its name
    /// (`then x isa SSBN`).
    pub rhs_subtype: Option<String>,
    /// Number of database instances satisfying the rule when induced.
    pub support: usize,
}

impl Rule {
    /// Build a rule; id and support can be adjusted afterwards.
    pub fn new(id: u32, lhs: Vec<Clause>, rhs: Clause) -> Rule {
        Rule {
            id,
            lhs,
            rhs,
            rhs_subtype: None,
            support: 0,
        }
    }

    /// Attach a subtype label (builder style).
    pub fn with_subtype(mut self, name: impl Into<String>) -> Rule {
        self.rhs_subtype = Some(name.into());
        self
    }

    /// Attach a support count (builder style).
    pub fn with_support(mut self, support: usize) -> Rule {
        self.support = support;
        self
    }

    /// Whether the premise constrains the given attribute.
    pub fn lhs_mentions(&self, object: &str, attribute: &str) -> bool {
        self.lhs.iter().any(|c| c.attr.matches(object, attribute))
    }

    /// The premise clause over the given attribute, if present.
    pub fn lhs_clause(&self, object: &str, attribute: &str) -> Option<&Clause> {
        self.lhs.iter().find(|c| c.attr.matches(object, attribute))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}: if ", self.id)?;
        for (i, c) in self.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{c}")?;
        }
        match &self.rhs_subtype {
            Some(s) => write!(f, " then x isa {s}"),
            None => write!(f, " then {}", self.rhs),
        }
    }
}

/// A collection of rules with stable numbering.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// An empty rule set.
    pub fn new() -> RuleSet {
        RuleSet::default()
    }

    /// Build from rules, renumbering them 1..n.
    pub fn from_rules(rules: impl IntoIterator<Item = Rule>) -> RuleSet {
        let mut rs = RuleSet::new();
        for r in rules {
            rs.push(r);
        }
        rs
    }

    /// Append a rule, assigning the next id.
    pub fn push(&mut self, mut rule: Rule) -> u32 {
        let id = self.rules.len() as u32 + 1;
        rule.id = id;
        self.rules.push(rule);
        id
    }

    /// The rules, in id order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Look up by id.
    pub fn get(&self, id: u32) -> Option<&Rule> {
        self.rules.iter().find(|r| r.id == id)
    }

    /// Rules whose consequence constrains `object.attribute`.
    pub fn rules_concluding(&self, object: &str, attribute: &str) -> Vec<&Rule> {
        self.rules
            .iter()
            .filter(|r| r.rhs.attr.matches(object, attribute))
            .collect()
    }

    /// Rules whose consequence is the given subtype.
    pub fn rules_concluding_subtype(&self, subtype: &str) -> Vec<&Rule> {
        self.rules
            .iter()
            .filter(|r| {
                r.rhs_subtype
                    .as_deref()
                    .map(|s| s.eq_ignore_ascii_case(subtype))
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Rules whose premise mentions `object.attribute`.
    pub fn rules_premised_on(&self, object: &str, attribute: &str) -> Vec<&Rule> {
        self.rules
            .iter()
            .filter(|r| r.lhs_mentions(object, attribute))
            .collect()
    }

    /// Drop rules with support below `min_support`, renumbering. Returns
    /// the number removed. This is the §5.2.1 step-4 pruning with
    /// threshold `N_c`.
    pub fn prune_below(&mut self, min_support: usize) -> usize {
        let before = self.rules.len();
        self.rules.retain(|r| r.support >= min_support);
        for (i, r) in self.rules.iter_mut().enumerate() {
            r.id = i as u32 + 1;
        }
        before - self.rules.len()
    }

    /// Remove redundant rules: a rule is dropped when another rule with
    /// the same consequence has a premise that subsumes it clause-for-
    /// clause (every clause of the keeper covers the corresponding
    /// attribute's clause of the dropped rule). Ties keep the wider
    /// rule; among equals, the lower id. Returns the number removed.
    ///
    /// This is an optional pass beyond the paper's support-based pruning
    /// (§5.2.1 step 4): it trades no applicability at all, since every
    /// query the dropped rule would answer is answered by its subsumer.
    pub fn minimize(&mut self) -> usize {
        let rules = std::mem::take(&mut self.rules);
        let mut keep: Vec<bool> = vec![true; rules.len()];
        for i in 0..rules.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..rules.len() {
                if i == j || !keep[j] {
                    continue;
                }
                let (a, b) = (&rules[j], &rules[i]); // does a subsume b?
                let same_consequence = a.rhs.attr == b.rhs.attr
                    && a.rhs.range == b.rhs.range
                    && a.rhs_subtype == b.rhs_subtype;
                if !same_consequence {
                    continue;
                }
                // Every clause of a must subsume b's clause on the same
                // attribute (and a must not constrain attributes b does
                // not — that would make a narrower).
                let a_subsumes_b = a.lhs.iter().all(|ca| {
                    b.lhs_clause(&ca.attr.object, &ca.attr.attribute)
                        .map(|cb| ca.range.subsumes(&cb.range))
                        .unwrap_or(false)
                });
                let strictly_wider = a_subsumes_b && (a.lhs != b.lhs || a.id < b.id);
                if strictly_wider {
                    keep[i] = false;
                    break;
                }
            }
        }
        let removed = keep.iter().filter(|k| !**k).count();
        self.rules = rules
            .into_iter()
            .zip(keep)
            .filter(|(_, k)| *k)
            .map(|(r, _)| r)
            .collect();
        for (i, r) in self.rules.iter_mut().enumerate() {
            r.id = i as u32 + 1;
        }
        removed
    }

    /// Merge another rule set into this one, renumbering its rules.
    pub fn extend(&mut self, other: RuleSet) {
        for r in other.rules {
            self.push(r);
        }
    }

    /// Iterate over rules.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter()
    }
}

impl fmt::Display for RuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

impl IntoIterator for RuleSet {
    type Item = Rule;
    type IntoIter = std::vec::IntoIter<Rule>;

    fn into_iter(self) -> Self::IntoIter {
        self.rules.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r9() -> Rule {
        // R9: if 7250 <= Displacement <= 30000 then x isa SSBN.
        Rule::new(
            9,
            vec![Clause::between(
                AttrId::new("CLASS", "Displacement"),
                7250,
                30000,
            )],
            Clause::equals(AttrId::new("CLASS", "Type"), "SSBN"),
        )
        .with_subtype("SSBN")
        .with_support(4)
    }

    #[test]
    fn display_matches_paper_style() {
        let r = r9();
        assert_eq!(
            r.to_string(),
            "R9: if 7250 <= CLASS.Displacement <= 30000 then x isa SSBN"
        );
        let plain = Rule::new(
            1,
            vec![Clause::equals(AttrId::new("R", "A"), 1)],
            Clause::equals(AttrId::new("R", "B"), 2),
        );
        assert_eq!(plain.to_string(), "R1: if R.A = 1 then R.B = 2");
    }

    #[test]
    fn clause_subsumption() {
        let a = Clause::between(AttrId::new("C", "D"), 0, 100);
        let b = Clause::between(AttrId::new("C", "D"), 10, 20);
        let c = Clause::between(AttrId::new("C", "E"), 10, 20);
        assert!(a.subsumes(&b));
        assert!(!b.subsumes(&a));
        assert!(!a.subsumes(&c), "different attribute");
    }

    #[test]
    fn ruleset_numbering_and_lookup() {
        let mut rs = RuleSet::new();
        let id1 = rs.push(r9());
        let id2 = rs.push(r9());
        assert_eq!((id1, id2), (1, 2));
        assert!(rs.get(2).is_some());
        assert!(rs.get(3).is_none());
        assert_eq!(rs.rules_concluding("class", "type").len(), 2);
        assert_eq!(rs.rules_concluding_subtype("ssbn").len(), 2);
        assert_eq!(rs.rules_premised_on("CLASS", "Displacement").len(), 2);
        assert_eq!(rs.rules_premised_on("CLASS", "Nope").len(), 0);
    }

    #[test]
    fn minimize_drops_subsumed_rules() {
        let wide = Rule::new(
            0,
            vec![Clause::between(AttrId::new("C", "D"), 0, 100)],
            Clause::equals(AttrId::new("C", "T"), "SSN"),
        )
        .with_subtype("SSN");
        let narrow = Rule::new(
            0,
            vec![Clause::between(AttrId::new("C", "D"), 10, 20)],
            Clause::equals(AttrId::new("C", "T"), "SSN"),
        )
        .with_subtype("SSN");
        let other_consequence = Rule::new(
            0,
            vec![Clause::between(AttrId::new("C", "D"), 10, 20)],
            Clause::equals(AttrId::new("C", "T"), "SSBN"),
        )
        .with_subtype("SSBN");
        let mut rs = RuleSet::from_rules([wide.clone(), narrow, other_consequence]);
        let removed = rs.minimize();
        assert_eq!(removed, 1, "only the subsumed same-consequence rule goes");
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.rules()[0].lhs, wide.lhs);
        // Ids renumbered.
        assert_eq!(rs.rules()[0].id, 1);
        assert_eq!(rs.rules()[1].id, 2);
    }

    #[test]
    fn minimize_keeps_multi_clause_non_subsumed() {
        // A two-clause rule is NOT subsumed by a one-clause rule that
        // constrains an attribute the other also constrains — unless the
        // one-clause rule's premise covers every clause.
        let two = Rule::new(
            0,
            vec![
                Clause::between(AttrId::new("E", "Age"), 18, 65),
                Clause::equals(AttrId::new("E", "Dept"), "ENG"),
            ],
            Clause::equals(AttrId::new("E", "Grade"), "SENIOR"),
        );
        let one = Rule::new(
            0,
            vec![Clause::between(AttrId::new("E", "Age"), 0, 100)],
            Clause::equals(AttrId::new("E", "Grade"), "SENIOR"),
        );
        // `one` covers `two`'s Age clause AND does not constrain Dept,
        // so it subsumes the narrower rule.
        let mut rs = RuleSet::from_rules([two.clone(), one.clone()]);
        let removed = rs.minimize();
        assert_eq!(removed, 1);
        assert_eq!(rs.rules()[0].lhs, one.lhs, "the wide rule survives");

        // But two multi-clause rules on different attributes coexist.
        let other = Rule::new(
            0,
            vec![Clause::equals(AttrId::new("E", "Office"), "HQ")],
            Clause::equals(AttrId::new("E", "Grade"), "SENIOR"),
        );
        let mut rs = RuleSet::from_rules([two, other]);
        assert_eq!(rs.minimize(), 0);
    }

    #[test]
    fn minimize_identical_rules_keeps_one() {
        let r = Rule::new(
            0,
            vec![Clause::between(AttrId::new("C", "D"), 0, 10)],
            Clause::equals(AttrId::new("C", "T"), "X"),
        );
        let mut rs = RuleSet::from_rules([r.clone(), r]);
        assert_eq!(rs.minimize(), 1);
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn pruning_renumbers() {
        let mut rs = RuleSet::new();
        rs.push(r9().with_support(1));
        rs.push(r9().with_support(5));
        rs.push(r9().with_support(2));
        let removed = rs.prune_below(2);
        assert_eq!(removed, 1);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.rules()[0].id, 1);
        assert_eq!(rs.rules()[1].id, 2);
    }
}
