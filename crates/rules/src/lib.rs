//! # intensio-rules
//!
//! Rule representation and storage for the intensional query processing
//! system of Chu & Lee (ICDE 1991):
//!
//! * [`range::ValueRange`] — interval algebra (containment, subsumption,
//!   intersection, merging) over typed values, the machinery behind
//!   forward/backward type inference;
//! * [`rule::Rule`] / [`rule::RuleSet`] — Horn rules whose clauses are
//!   attribute value ranges, with support counts and subtype labels;
//! * [`encode`] — the §5.2.2 *rule relations* encoding, storing a rule
//!   set as ordinary relations `(RuleNo, Role, Lvalue, Att_no, Uvalue)`
//!   plus an attribute value mapping, so knowledge relocates with the
//!   database.
//!
//! ```
//! use intensio_rules::prelude::*;
//!
//! let rule = Rule::new(
//!     9,
//!     vec![Clause::between(AttrId::new("CLASS", "Displacement"), 7250, 30000)],
//!     Clause::equals(AttrId::new("CLASS", "Type"), "SSBN"),
//! ).with_subtype("SSBN");
//! assert_eq!(
//!     rule.to_string(),
//!     "R9: if 7250 <= CLASS.Displacement <= 30000 then x isa SSBN"
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;
pub mod range;
pub mod rule;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::encode::{decode, encode, RuleRelations};
    pub use crate::range::{Endpoint, ValueRange};
    pub use crate::rule::{AttrId, Clause, Rule, RuleSet};
}

pub use prelude::*;
