//! Rule relations: storing induced rules *in the database itself*
//! (paper §5.2.2).
//!
//! Each rule becomes rows of the relation
//! `R' = (RuleNo, Role, Lvalue, Att_no, Uvalue)` — one row per clause,
//! `Role` being `L` (premise) or `R` (consequence) — and every attribute
//! boundary value is encoded as a real number through an *attribute value
//! mapping relation* `(Att_no, Value, RealValue)`. The paper leans on an
//! INGRES system table to identify attributes; we carry an explicit
//! attribute catalog `(Att_no, Object, Attribute, AttrType)` instead,
//! plus a small rule-metadata relation `(RuleNo, Support, Subtype)` so
//! that support counts and subtype labels survive relocation (an
//! extension the paper's encoding loses).

use crate::range::ValueRange;
use crate::rule::{AttrId, Clause, Rule, RuleSet};
use intensio_storage::domain::Domain;
use intensio_storage::error::{Result, StorageError};
use intensio_storage::relation::Relation;
use intensio_storage::schema::{Attribute, Schema};
use intensio_storage::tuple::Tuple;
use intensio_storage::value::{Value, ValueKey, ValueType};
use std::collections::BTreeMap;

/// The four relations a rule set is stored as.
#[derive(Debug, Clone)]
pub struct RuleRelations {
    /// `R' = (RuleNo, Role, Lvalue, Att_no, Uvalue)`.
    pub rules: Relation,
    /// `(Att_no, Value, RealValue)` — encoded boundary values.
    pub value_map: Relation,
    /// `(Att_no, Object, Attribute, AttrType)` — attribute catalog.
    pub attr_catalog: Relation,
    /// `(RuleNo, Support, Subtype)` — rule metadata (extension).
    pub meta: Relation,
}

impl RuleRelations {
    /// The four relations, empty, under their canonical names and
    /// schemas. Deserializers (CSV import, WAL replay, checkpoint
    /// loading) start from this shape.
    pub fn empty() -> RuleRelations {
        RuleRelations {
            rules: Relation::new("RULES", rules_schema()),
            value_map: Relation::new("ATTRVALUEMAP", value_map_schema()),
            attr_catalog: Relation::new("ATTRCATALOG", attr_catalog_schema()),
            meta: Relation::new("RULEMETA", meta_schema()),
        }
    }

    /// The relations in a stable order, paired with their names — the
    /// relocation set of paper §5.2.2.
    pub fn named(&self) -> [(&'static str, &Relation); 4] {
        [
            ("RULES", &self.rules),
            ("ATTRVALUEMAP", &self.value_map),
            ("ATTRCATALOG", &self.attr_catalog),
            ("RULEMETA", &self.meta),
        ]
    }
}

fn rules_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("RuleNo", Domain::basic(ValueType::Int)),
        Attribute::new("Role", Domain::char_n(1)),
        Attribute::new("Lvalue", Domain::basic(ValueType::Real)),
        Attribute::new("Att_no", Domain::basic(ValueType::Int)),
        Attribute::new("Uvalue", Domain::basic(ValueType::Real)),
    ])
    .expect("static schema")
}

fn value_map_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("Att_no", Domain::basic(ValueType::Int)),
        Attribute::new("Value", Domain::basic(ValueType::Real)),
        Attribute::new("RealValue", Domain::basic(ValueType::Str)),
    ])
    .expect("static schema")
}

fn attr_catalog_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("Att_no", Domain::basic(ValueType::Int)),
        Attribute::new("Object", Domain::basic(ValueType::Str)),
        Attribute::new("Attribute", Domain::basic(ValueType::Str)),
        Attribute::new("AttrType", Domain::basic(ValueType::Str)),
    ])
    .expect("static schema")
}

fn meta_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("RuleNo", Domain::basic(ValueType::Int)),
        Attribute::new("Support", Domain::basic(ValueType::Int)),
        Attribute::new("Subtype", Domain::basic(ValueType::Str)),
    ])
    .expect("static schema")
}

/// Encode a rule set into rule relations.
///
/// Only closed, finite clause ranges can be stored (the paper's clause
/// form); an open-ended range is an encoding error.
pub fn encode(rules: &RuleSet) -> Result<RuleRelations> {
    // Assign attribute numbers in sorted order for determinism.
    let mut attrs: BTreeMap<AttrId, i64> = BTreeMap::new();
    let mut attr_types: BTreeMap<AttrId, ValueType> = BTreeMap::new();
    let mut boundary_values: BTreeMap<AttrId, Vec<ValueKey>> = BTreeMap::new();

    let mut visit = |clause: &Clause| -> Result<()> {
        let (lo, hi) = closed_bounds(clause)?;
        let next = attrs.len() as i64;
        attrs.entry(clause.attr.clone()).or_insert(next);
        for v in [lo, hi] {
            if let Some(t) = v.value_type() {
                attr_types.entry(clause.attr.clone()).or_insert(t);
            }
            let list = boundary_values.entry(clause.attr.clone()).or_default();
            let k = ValueKey(v.clone());
            if !list.contains(&k) {
                list.push(k);
            }
        }
        Ok(())
    };
    for rule in rules.iter() {
        for c in &rule.lhs {
            visit(c)?;
        }
        visit(&rule.rhs)?;
    }
    for list in boundary_values.values_mut() {
        list.sort();
    }

    // Code assignment: 1.00, 2.00, ... per attribute, in value order.
    let code_of = |attr: &AttrId, v: &Value| -> f64 {
        let list = &boundary_values[attr];
        let k = ValueKey(v.clone());
        (list.iter().position(|x| *x == k).expect("visited above") + 1) as f64
    };

    let mut rules_rel = Relation::new("RULES", rules_schema());
    let mut meta_rel = Relation::new("RULEMETA", meta_schema());
    for rule in rules.iter() {
        let mut emit = |role: &str, clause: &Clause| -> Result<()> {
            let (lo, hi) = closed_bounds(clause)?;
            rules_rel.insert(Tuple::new(vec![
                Value::Int(i64::from(rule.id)),
                Value::str(role),
                Value::Real(code_of(&clause.attr, lo)),
                Value::Int(attrs[&clause.attr]),
                Value::Real(code_of(&clause.attr, hi)),
            ]))
        };
        for c in &rule.lhs {
            emit("L", c)?;
        }
        emit("R", &rule.rhs)?;
        meta_rel.insert(Tuple::new(vec![
            Value::Int(i64::from(rule.id)),
            Value::Int(rule.support as i64),
            rule.rhs_subtype
                .as_ref()
                .map(|s| Value::str(s.clone()))
                .unwrap_or(Value::Null),
        ]))?;
    }

    let mut map_rel = Relation::new("ATTRVALUEMAP", value_map_schema());
    let mut cat_rel = Relation::new("ATTRCATALOG", attr_catalog_schema());
    for (attr, no) in &attrs {
        let ty = attr_types.get(attr).copied().unwrap_or(ValueType::Str);
        cat_rel.insert(Tuple::new(vec![
            Value::Int(*no),
            Value::str(attr.object.clone()),
            Value::str(attr.attribute.clone()),
            Value::str(ty.keyword()),
        ]))?;
        for (i, v) in boundary_values[attr].iter().enumerate() {
            map_rel.insert(Tuple::new(vec![
                Value::Int(*no),
                Value::Real((i + 1) as f64),
                Value::str(v.0.render_bare()),
            ]))?;
        }
    }

    Ok(RuleRelations {
        rules: rules_rel,
        value_map: map_rel,
        attr_catalog: cat_rel,
        meta: meta_rel,
    })
}

fn closed_bounds(clause: &Clause) -> Result<(&Value, &Value)> {
    match (&clause.range.lo, &clause.range.hi) {
        (Some(l), Some(h)) if l.inclusive && h.inclusive => Ok((&l.value, &h.value)),
        _ => Err(StorageError::Invalid(format!(
            "rule clause on {} is not a closed range and cannot be stored",
            clause.attr
        ))),
    }
}

/// Decode rule relations back into a rule set.
pub fn decode(rels: &RuleRelations) -> Result<RuleSet> {
    // Attribute catalog: Att_no -> (AttrId, type).
    let mut attr_of: BTreeMap<i64, (AttrId, ValueType)> = BTreeMap::new();
    for t in rels.attr_catalog.iter() {
        let no = expect_int(t.get(0), "Att_no")?;
        let object = expect_str(t.get(1), "Object")?;
        let attribute = expect_str(t.get(2), "Attribute")?;
        let ty = ValueType::from_keyword(&expect_str(t.get(3), "AttrType")?)
            .ok_or_else(|| StorageError::Invalid("bad AttrType".to_string()))?;
        attr_of.insert(no, (AttrId::new(object, attribute), ty));
    }

    // Value map: (Att_no, code) -> typed value.
    let mut value_of: BTreeMap<(i64, ValueKey), Value> = BTreeMap::new();
    for t in rels.value_map.iter() {
        let no = expect_int(t.get(0), "Att_no")?;
        let code = t.get(1).clone();
        let raw = expect_str(t.get(2), "RealValue")?;
        let ty = attr_of.get(&no).map(|(_, t)| *t).ok_or_else(|| {
            StorageError::Invalid(format!("value map references unknown attribute {no}"))
        })?;
        value_of.insert((no, ValueKey(code)), Value::parse_as(&raw, ty)?);
    }

    // Meta: RuleNo -> (support, subtype).
    let mut meta_of: BTreeMap<i64, (usize, Option<String>)> = BTreeMap::new();
    for t in rels.meta.iter() {
        let no = expect_int(t.get(0), "RuleNo")?;
        let support = expect_int(t.get(1), "Support")? as usize;
        let subtype = t.get(2).as_str().map(str::to_string);
        meta_of.insert(no, (support, subtype));
    }

    // Group clause rows by rule number.
    let mut grouped: BTreeMap<i64, (Vec<Clause>, Option<Clause>)> = BTreeMap::new();
    for t in rels.rules.iter() {
        let no = expect_int(t.get(0), "RuleNo")?;
        let role = expect_str(t.get(1), "Role")?;
        let lcode = t.get(2).clone();
        let att_no = expect_int(t.get(3), "Att_no")?;
        let ucode = t.get(4).clone();
        let (attr, _) = attr_of
            .get(&att_no)
            .ok_or_else(|| StorageError::Invalid(format!("unknown Att_no {att_no}")))?;
        let lo = value_of
            .get(&(att_no, ValueKey(lcode)))
            .ok_or_else(|| StorageError::Invalid("unknown Lvalue code".to_string()))?;
        let hi = value_of
            .get(&(att_no, ValueKey(ucode)))
            .ok_or_else(|| StorageError::Invalid("unknown Uvalue code".to_string()))?;
        let clause = Clause {
            attr: attr.clone(),
            range: ValueRange::closed(lo.clone(), hi.clone()),
        };
        let entry = grouped.entry(no).or_default();
        match role.as_str() {
            "L" => entry.0.push(clause),
            "R" => {
                if entry.1.replace(clause).is_some() {
                    return Err(StorageError::Invalid(format!(
                        "rule {no} has two consequences (not Horn)"
                    )));
                }
            }
            other => {
                return Err(StorageError::Invalid(format!("bad Role {other:?}")));
            }
        }
    }

    let mut out = Vec::with_capacity(grouped.len());
    for (no, (lhs, rhs)) in grouped {
        let rhs =
            rhs.ok_or_else(|| StorageError::Invalid(format!("rule {no} has no consequence")))?;
        let mut rule = Rule::new(no as u32, lhs, rhs);
        if let Some((support, subtype)) = meta_of.get(&no) {
            rule.support = *support;
            rule.rhs_subtype = subtype.clone();
        }
        out.push(rule);
    }
    Ok(RuleSet::from_rules(out))
}

fn expect_int(v: &Value, what: &str) -> Result<i64> {
    v.as_int().ok_or_else(|| StorageError::TypeMismatch {
        expected: "integer".to_string(),
        found: v.to_string(),
        context: what.to_string(),
    })
}

fn expect_str(v: &Value, what: &str) -> Result<String> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| StorageError::TypeMismatch {
            expected: "string".to_string(),
            found: v.to_string(),
            context: what.to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rules() -> RuleSet {
        RuleSet::from_rules([
            // R5-like: if 0101 <= Class <= 0103 then Type = SSBN.
            Rule::new(
                0,
                vec![Clause::between(
                    AttrId::new("CLASS", "Class"),
                    "0101",
                    "0103",
                )],
                Clause::equals(AttrId::new("CLASS", "Type"), "SSBN"),
            )
            .with_subtype("SSBN")
            .with_support(3),
            // R8-like: numeric ranges.
            Rule::new(
                0,
                vec![Clause::between(
                    AttrId::new("CLASS", "Displacement"),
                    2145,
                    6955,
                )],
                Clause::equals(AttrId::new("CLASS", "Type"), "SSN"),
            )
            .with_subtype("SSN")
            .with_support(10),
            // Multi-clause premise.
            Rule::new(
                0,
                vec![
                    Clause::between(AttrId::new("EMP", "Age"), 18, 65),
                    Clause::equals(AttrId::new("EMP", "Position"), "ENGINEER"),
                ],
                Clause::between(AttrId::new("EMP", "Salary"), 50, 90),
            )
            .with_support(7),
        ])
    }

    #[test]
    fn round_trip_preserves_rules() {
        let rs = sample_rules();
        let encoded = encode(&rs).unwrap();
        let decoded = decode(&encoded).unwrap();
        assert_eq!(decoded.len(), rs.len());
        for (a, b) in rs.iter().zip(decoded.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.lhs, b.lhs);
            assert_eq!(a.rhs, b.rhs);
            assert_eq!(a.support, b.support);
            assert_eq!(a.rhs_subtype, b.rhs_subtype);
        }
    }

    #[test]
    fn encoding_shape_matches_paper() {
        let rs = RuleSet::from_rules([Rule::new(
            0,
            vec![Clause::between(AttrId::new("R", "A"), 1, 2)],
            Clause::equals(AttrId::new("R", "B"), 10),
        )]);
        let enc = encode(&rs).unwrap();
        // Paper's example: two rows for a one-premise rule, roles L and R.
        assert_eq!(enc.rules.len(), 2);
        let roles: Vec<String> = enc
            .rules
            .iter()
            .map(|t| t.get(1).as_str().unwrap().to_string())
            .collect();
        assert_eq!(roles, vec!["L", "R"]);
        // A has boundary values {1, 2} coded 1.00, 2.00; B has {10} coded 1.00.
        assert_eq!(enc.value_map.len(), 3);
        // Consequence row has Lvalue = Uvalue (a point).
        let rrow = &enc.rules.tuples()[1];
        assert_eq!(rrow.get(2), rrow.get(4));
        assert_eq!(enc.attr_catalog.len(), 2);
    }

    #[test]
    fn open_range_rejected() {
        let rs = RuleSet::from_rules([Rule::new(
            0,
            vec![Clause {
                attr: AttrId::new("R", "A"),
                range: ValueRange::from_cmp(intensio_storage::expr::CmpOp::Gt, 5).unwrap(),
            }],
            Clause::equals(AttrId::new("R", "B"), 1),
        )]);
        assert!(encode(&rs).is_err());
    }

    #[test]
    fn decode_rejects_double_consequence() {
        let rs = RuleSet::from_rules([Rule::new(
            0,
            vec![Clause::between(AttrId::new("R", "A"), 1, 2)],
            Clause::equals(AttrId::new("R", "B"), 10),
        )]);
        let mut enc = encode(&rs).unwrap();
        // Duplicate the consequence row with role R.
        let row = enc.rules.tuples()[1].clone();
        enc.rules.insert(row).unwrap();
        assert!(decode(&enc).is_err());
    }

    #[test]
    fn csv_relocation_round_trip() {
        // §5.2.2: "a database and its associated rule relations can be
        // relocated together" — rule relations survive CSV export/import.
        let rs = sample_rules();
        let enc = encode(&rs).unwrap();
        let csv = intensio_storage::csv::to_csv(&enc.rules);
        let back =
            intensio_storage::csv::from_csv("RULES", enc.rules.schema().clone(), &csv).unwrap();
        let rebuilt = RuleRelations {
            rules: back,
            value_map: enc.value_map.clone(),
            attr_catalog: enc.attr_catalog.clone(),
            meta: enc.meta.clone(),
        };
        let decoded = decode(&rebuilt).unwrap();
        assert_eq!(decoded.len(), rs.len());
    }
}
