//! # intensio-fault
//!
//! A zero-dependency failpoint framework for fault injection across the
//! intensional query pipeline. Production code marks *named injection
//! points* with [`fire`]; tests and operators arm those points with
//! actions — inject an error, add latency, panic, or any of these with
//! a probability and a trigger budget — without recompiling.
//!
//! ## Cost when disarmed
//!
//! With no failpoint configured, [`fire`] is one relaxed atomic load
//! and a branch (the `ACTIVE` flag), so injection points can sit on hot
//! paths — storage scans, cache lookups — without measurable overhead.
//! The slow path (registry lookup, RNG roll) runs only while at least
//! one point is armed.
//!
//! ## Spec grammar
//!
//! One failpoint: `name=[P%]action[*N]`, several separated by `;`:
//!
//! ```text
//! storage.scan=25%error        inject an error on 25% of firings
//! serve.worker=panic*2         panic, at most twice in total
//! serve.cache=delay:50         sleep 50 ms on every firing
//! induction.run=error*3        fail the next three firings
//! storage.scan=off             disarm the point
//! ```
//!
//! The same grammar is accepted by the `INTENSIO_FAILPOINTS`
//! environment variable (read by [`init_from_env`]) and by the serve
//! protocol's `FAULT SET` verb.
//!
//! ## Determinism
//!
//! Probabilistic triggering uses a process-global xorshift generator
//! seeded by [`set_seed`], so a chaos schedule replays identically for
//! a fixed seed and thread interleaving.
//!
//! ```
//! use intensio_fault as fault;
//!
//! fault::clear();
//! assert!(fault::fire("demo.point").is_ok(), "disarmed points are no-ops");
//! fault::configure("demo.point", "error*1").unwrap();
//! assert!(fault::fire("demo.point").is_err(), "armed: injects once");
//! assert!(fault::fire("demo.point").is_ok(), "budget of 1 is spent");
//! fault::clear();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

pub mod backoff;
pub use backoff::Backoff;

/// What an armed failpoint does when it triggers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// [`fire`] returns `Err(InjectedFault)`.
    Error,
    /// [`fire`] sleeps for the duration, then returns `Ok`.
    Delay(Duration),
    /// [`fire`] panics (for exercising `catch_unwind` isolation and
    /// worker supervision).
    Panic,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Error => write!(f, "error"),
            Action::Delay(d) => write!(f, "delay:{}", d.as_millis()),
            Action::Panic => write!(f, "panic"),
        }
    }
}

/// One armed failpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Spec {
    /// Trigger probability in parts per million (1_000_000 = always).
    prob_ppm: u32,
    action: Action,
    /// Remaining trigger budget; `None` is unlimited.
    remaining: Option<u64>,
    /// Times [`fire`] consulted this point.
    hits: u64,
    /// Times the action actually ran.
    triggered: u64,
}

impl Spec {
    fn render(&self) -> String {
        let mut out = String::new();
        if self.prob_ppm < 1_000_000 {
            out.push_str(&format!("{}%", self.prob_ppm as f64 / 10_000.0));
        }
        out.push_str(&self.action.to_string());
        if let Some(n) = self.remaining {
            out.push_str(&format!("*{n}"));
        }
        out
    }
}

/// A point-in-time view of one armed failpoint, for `FAULT LIST` and
/// test assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailpointStatus {
    /// The injection point's name.
    pub name: String,
    /// The armed spec, re-rendered in the grammar of [`configure`].
    pub spec: String,
    /// Times [`fire`] consulted this point while armed.
    pub hits: u64,
    /// Times the action actually ran.
    pub triggered: u64,
}

/// The error injected by an `error` action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The failpoint that injected this error.
    pub point: String,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at {}", self.point)
    }
}

impl std::error::Error for InjectedFault {}

/// Fast-path gate: true iff at least one failpoint is armed. Checked
/// with a relaxed load before any other work in [`fire`].
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// Deterministic xorshift state for probabilistic triggering.
static RNG: AtomicU64 = AtomicU64::new(0x9E3779B97F4A7C15);

fn registry() -> &'static Mutex<BTreeMap<String, Spec>> {
    static REGISTRY: std::sync::OnceLock<Mutex<BTreeMap<String, Spec>>> =
        std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Whether any failpoint is currently armed (one relaxed load).
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Seed the deterministic trigger RNG (zero is remapped — xorshift has
/// a fixed point at 0).
pub fn set_seed(seed: u64) {
    RNG.store(if seed == 0 { 0xDEADBEEF } else { seed }, Ordering::SeqCst);
}

fn next_rand() -> u64 {
    // xorshift64*, advanced with a CAS-free fetch_update; contention
    // only matters while failpoints are armed.
    let mut x = RNG.load(Ordering::Relaxed);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    RNG.store(x, Ordering::Relaxed);
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// Hit a named injection point.
///
/// Disarmed (the common case): returns `Ok(())` after one relaxed
/// atomic load. Armed: rolls the probability, spends the trigger
/// budget, and runs the action — sleeping for `delay`, returning
/// `Err` for `error`, panicking for `panic`.
#[inline]
pub fn fire(name: &str) -> Result<(), InjectedFault> {
    if !active() {
        return Ok(());
    }
    fire_armed(name)
}

#[cold]
fn fire_armed(name: &str) -> Result<(), InjectedFault> {
    let action = {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        let Some(spec) = reg.get_mut(name) else {
            return Ok(());
        };
        spec.hits += 1;
        if spec.remaining == Some(0) {
            return Ok(());
        }
        if spec.prob_ppm < 1_000_000 && next_rand() % 1_000_000 >= spec.prob_ppm as u64 {
            return Ok(());
        }
        if let Some(n) = spec.remaining.as_mut() {
            *n -= 1;
        }
        spec.triggered += 1;
        spec.action.clone()
        // Lock released before acting: a delay must not serialize every
        // other armed failpoint behind this one.
    };
    match action {
        Action::Error => Err(InjectedFault {
            point: name.to_string(),
        }),
        Action::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
        Action::Panic => panic!("injected panic at failpoint {name}"),
    }
}

/// Parse one action spec (`[P%]action[*N]`, or `off`).
fn parse_spec(point: &str, s: &str) -> Result<Option<Spec>, String> {
    let s = s.trim();
    if s.is_empty() {
        return Err(format!("{point}: empty action"));
    }
    if s.eq_ignore_ascii_case("off") {
        return Ok(None);
    }
    let (prob_ppm, rest) = match s.split_once('%') {
        Some((p, rest)) => {
            let pct: f64 = p
                .trim()
                .parse()
                .map_err(|_| format!("{point}: bad probability {p:?}"))?;
            if !(0.0..=100.0).contains(&pct) {
                return Err(format!("{point}: probability {pct} outside 0..=100"));
            }
            ((pct * 10_000.0).round() as u32, rest)
        }
        None => (1_000_000u32, s),
    };
    let (body, remaining) = match rest.split_once('*') {
        Some((body, n)) => {
            let n: u64 = n
                .trim()
                .parse()
                .map_err(|_| format!("{point}: bad trigger budget {n:?}"))?;
            (body.trim(), Some(n))
        }
        None => (rest.trim(), None),
    };
    let action = if body.eq_ignore_ascii_case("error") {
        Action::Error
    } else if body.eq_ignore_ascii_case("panic") {
        Action::Panic
    } else if let Some(ms) = body
        .strip_prefix("delay:")
        .or_else(|| body.strip_prefix("DELAY:"))
    {
        let ms: u64 = ms
            .trim()
            .parse()
            .map_err(|_| format!("{point}: bad delay {ms:?}"))?;
        Action::Delay(Duration::from_millis(ms))
    } else {
        return Err(format!(
            "{point}: unknown action {body:?}; expected error, panic, delay:MS, or off"
        ));
    };
    Ok(Some(Spec {
        prob_ppm,
        action,
        remaining,
        hits: 0,
        triggered: 0,
    }))
}

/// Arm (or, with `off`, disarm) one failpoint. See the module docs for
/// the spec grammar.
pub fn configure(name: &str, spec: &str) -> Result<(), String> {
    let name = name.trim();
    if name.is_empty() {
        return Err("failpoint name is empty".to_string());
    }
    let parsed = parse_spec(name, spec)?;
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    match parsed {
        Some(spec) => {
            reg.insert(name.to_string(), spec);
        }
        None => {
            reg.remove(name);
        }
    }
    ACTIVE.store(!reg.is_empty(), Ordering::SeqCst);
    Ok(())
}

/// Arm several failpoints from `name=spec;name=spec` text (the
/// `INTENSIO_FAILPOINTS` grammar). Stops at the first malformed entry.
pub fn configure_str(s: &str) -> Result<(), String> {
    for part in s.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, spec) = part
            .split_once('=')
            .ok_or_else(|| format!("malformed failpoint {part:?}; expected name=action"))?;
        configure(name, spec)?;
    }
    Ok(())
}

/// Disarm one failpoint.
pub fn remove(name: &str) {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.remove(name.trim());
    ACTIVE.store(!reg.is_empty(), Ordering::SeqCst);
}

/// Disarm every failpoint.
pub fn clear() {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.clear();
    ACTIVE.store(false, Ordering::SeqCst);
}

/// Arm failpoints from the `INTENSIO_FAILPOINTS` environment variable,
/// if set. Malformed specs are reported on stderr and skipped, never
/// fatal — a typo in an ops knob must not take the service down.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("INTENSIO_FAILPOINTS") {
        if let Err(e) = configure_str(&v) {
            eprintln!("intensio-fault: ignoring INTENSIO_FAILPOINTS: {e}");
        }
    }
}

/// Every armed failpoint with its hit/trigger counts, name-sorted.
pub fn list() -> Vec<FailpointStatus> {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.iter()
        .map(|(name, spec)| FailpointStatus {
            name: name.clone(),
            spec: spec.render(),
            hits: spec.hits,
            triggered: spec.triggered,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests that arm points must not
    /// interleave. One lock serializes them.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        let guard = GATE.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        guard
    }

    #[test]
    fn disarmed_fire_is_ok_and_inactive() {
        let _g = serial();
        assert!(!active());
        assert!(fire("nothing.armed").is_ok());
        assert!(list().is_empty());
    }

    #[test]
    fn error_action_injects_until_budget_spent() {
        let _g = serial();
        configure("p.err", "error*2").unwrap();
        assert!(active());
        assert_eq!(
            fire("p.err"),
            Err(InjectedFault {
                point: "p.err".to_string()
            })
        );
        assert!(fire("p.err").is_err());
        assert!(fire("p.err").is_ok(), "budget of 2 spent");
        let st = &list()[0];
        assert_eq!((st.hits, st.triggered), (3, 2));
        assert_eq!(st.spec, "error*0");
    }

    #[test]
    fn other_points_are_unaffected() {
        let _g = serial();
        configure("p.one", "error").unwrap();
        assert!(fire("p.other").is_ok());
        assert!(fire("p.one").is_err());
    }

    #[test]
    fn delay_action_sleeps() {
        let _g = serial();
        configure("p.slow", "delay:30").unwrap();
        let t = std::time::Instant::now();
        assert!(fire("p.slow").is_ok());
        assert!(
            t.elapsed() >= Duration::from_millis(25),
            "{:?}",
            t.elapsed()
        );
    }

    #[test]
    fn panic_action_panics() {
        let _g = serial();
        configure("p.boom", "panic*1").unwrap();
        let r = std::panic::catch_unwind(|| fire("p.boom"));
        assert!(r.is_err());
        assert!(fire("p.boom").is_ok(), "budget spent by the panic");
    }

    #[test]
    fn probability_is_seeded_and_roughly_calibrated() {
        let _g = serial();
        set_seed(42);
        configure("p.half", "50%error").unwrap();
        let errs = (0..1000).filter(|_| fire("p.half").is_err()).count();
        assert!((350..=650).contains(&errs), "50% armed, got {errs}/1000");

        // Same seed, same schedule.
        set_seed(42);
        configure("p.half", "50%error").unwrap();
        let replay = (0..1000).filter(|_| fire("p.half").is_err()).count();
        assert_eq!(errs, replay, "fixed seed must replay identically");
    }

    #[test]
    fn off_disarms_and_clear_resets_active() {
        let _g = serial();
        configure_str("a=error;b=delay:1").unwrap();
        assert_eq!(list().len(), 2);
        configure("a", "off").unwrap();
        assert_eq!(list().len(), 1);
        assert!(fire("a").is_ok());
        clear();
        assert!(!active());
    }

    #[test]
    fn spec_grammar_rejections() {
        let _g = serial();
        assert!(configure("x", "explode").is_err());
        assert!(configure("x", "150%error").is_err());
        assert!(configure("x", "delay:abc").is_err());
        assert!(configure("x", "error*many").is_err());
        assert!(configure("", "error").is_err());
        assert!(configure_str("no-equals-sign").is_err());
        assert!(!active(), "failed configs arm nothing");
    }

    #[test]
    fn configure_str_parses_multiple_and_skips_blanks() {
        let _g = serial();
        configure_str(" a = 10%delay:5 ;; b=panic*1 ;").unwrap();
        let st = list();
        assert_eq!(st.len(), 2);
        assert_eq!(st[0].name, "a");
        assert_eq!(st[0].spec, "10%delay:5");
        assert_eq!(st[1].spec, "panic*1");
    }
}
