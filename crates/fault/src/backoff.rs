//! Capped exponential backoff with deterministic jitter — the shared
//! retry schedule for self-healing loops (background re-induction,
//! replication reconnects).
//!
//! Delays double from a base up to a cap, and each delay is jittered
//! into `[delay/2, delay)` by a process-independent xorshift64 stream,
//! so a fleet of retrying loops does not reconnect in lockstep. For a
//! fixed seed the schedule is fully deterministic, which keeps chaos
//! runs replayable.

use std::time::Duration;

/// A capped-exponential retry schedule. Call [`Backoff::next_delay`]
/// after each failure and sleep for the returned duration; call
/// [`Backoff::reset`] after a success.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    jitter: u64,
}

impl Backoff {
    /// A schedule doubling from `base` up to `cap`, jittered by a
    /// deterministic stream seeded with `seed` (0 is remapped — the
    /// xorshift state must never be zero).
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            base: base.max(Duration::from_millis(1)),
            cap: cap.max(base),
            attempt: 0,
            jitter: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// How many consecutive failures have been recorded.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Record a failure and return how long to wait before retrying:
    /// `min(base * 2^(attempt-1), cap)`, jittered into `[d/2, d)`.
    pub fn next_delay(&mut self) -> Duration {
        self.attempt = self.attempt.saturating_add(1);
        self.delay_for(self.attempt)
    }

    /// The jittered delay for a given 1-based attempt number, without
    /// advancing the failure count (for callers that track their own).
    pub fn delay_for(&mut self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.clamp(1, 20).saturating_sub(1));
        let delay = exp.min(self.cap);
        // xorshift64: cheap, deterministic, good enough to decorrelate.
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        let half_ms = (delay.as_millis() as u64 / 2).max(1);
        delay / 2 + Duration::from_millis(self.jitter % half_ms)
    }

    /// Record a success: the next failure starts from `base` again.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_to_the_cap_and_stays_bounded() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        let mut b = Backoff::new(base, cap, 7);
        let mut last = Duration::ZERO;
        for _ in 0..12 {
            let d = b.next_delay();
            assert!(d >= base / 2, "jitter floor is half the delay");
            assert!(d < cap, "jittered delay stays under the cap");
            last = d;
        }
        assert!(last >= cap / 2, "late attempts sit at the cap");
    }

    #[test]
    fn reset_returns_to_the_base() {
        let mut b = Backoff::new(Duration::from_millis(8), Duration::from_secs(1), 3);
        for _ in 0..6 {
            b.next_delay();
        }
        assert_eq!(b.attempt(), 6);
        b.reset();
        assert_eq!(b.attempt(), 0);
        let d = b.next_delay();
        assert!(d < Duration::from_millis(8), "first retry is near base/2");
    }

    #[test]
    fn same_seed_same_schedule() {
        let mk = || Backoff::new(Duration::from_millis(5), Duration::from_millis(500), 42);
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..10 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
        let mut c = Backoff::new(Duration::from_millis(5), Duration::from_millis(500), 43);
        let differs = (0..10).any(|_| a.next_delay() != c.next_delay());
        assert!(differs, "different seeds must decorrelate");
    }

    #[test]
    fn zero_seed_and_zero_base_are_remapped() {
        let mut b = Backoff::new(Duration::ZERO, Duration::ZERO, 0);
        let d = b.next_delay();
        assert!(d <= Duration::from_millis(1));
    }
}
