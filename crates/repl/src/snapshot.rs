//! Serializing a whole database to one byte buffer, for followers that
//! must bootstrap over the wire.
//!
//! A checkpoint materializes the database through `storage::persist` as
//! a *directory* — fine for disk, useless for a TCP stream. This codec
//! renders the same information (a schema manifest plus one CSV section
//! per relation) into a single sectioned buffer, mirroring the WAL's
//! rule-relation encoding:
//!
//! ```text
//! %intensio-db v1
//! %relation _schema
//! Relation,Position,Attribute,IsKey,Type,CharLen
//! ...
//! %relation CLASS
//! Class,Displacement,Type,...
//! ...
//! ```
//!
//! Domain range/set constraints are not shipped (they live in the KER
//! schema source, exactly as `storage::persist` documents); `char[n]`
//! widths are, because they affect value validation on the follower.

use crate::ReplError;
use intensio_storage::csv::{from_csv, to_csv};
use intensio_storage::{
    Attribute, Database, Domain, DomainConstraint, Relation, Schema, Tuple, Value, ValueType,
};

const HEADER: &str = "%intensio-db v1";
const SECTION: &str = "%relation ";
const MANIFEST: &str = "_schema";

fn manifest_schema() -> Result<Schema, ReplError> {
    Schema::new(vec![
        Attribute::new("Relation", Domain::basic(ValueType::Str)),
        Attribute::new("Position", Domain::basic(ValueType::Int)),
        Attribute::new("Attribute", Domain::basic(ValueType::Str)),
        Attribute::new("IsKey", Domain::basic(ValueType::Int)),
        Attribute::new("Type", Domain::basic(ValueType::Str)),
        Attribute::new("CharLen", Domain::basic(ValueType::Int)),
    ])
    .map_err(|e| ReplError(format!("manifest schema: {e}")))
}

/// Encode a database as a sectioned-CSV buffer.
pub fn db_to_bytes(db: &Database) -> Result<Vec<u8>, ReplError> {
    let mut manifest = Relation::new(MANIFEST, manifest_schema()?);
    for rel in db.relations() {
        for (pos, a) in rel.schema().attributes().iter().enumerate() {
            let char_len = a
                .domain()
                .constraints()
                .iter()
                .find_map(|c| match c {
                    DomainConstraint::CharLen(n) => Some(*n as i64),
                    _ => None,
                })
                .unwrap_or(0);
            manifest
                .insert(Tuple::new(vec![
                    Value::str(rel.name()),
                    Value::Int(pos as i64),
                    Value::str(a.name()),
                    Value::Int(i64::from(a.is_key())),
                    Value::str(a.value_type().keyword()),
                    Value::Int(char_len),
                ]))
                .map_err(|e| ReplError(format!("building manifest: {e}")))?;
        }
    }
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(SECTION);
    out.push_str(MANIFEST);
    out.push('\n');
    out.push_str(&to_csv(&manifest));
    for rel in db.relations() {
        out.push_str(SECTION);
        out.push_str(rel.name());
        out.push('\n');
        out.push_str(&to_csv(rel));
    }
    Ok(out.into_bytes())
}

/// Decode a buffer written by [`db_to_bytes`].
pub fn db_from_bytes(bytes: &[u8]) -> Result<Database, ReplError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| ReplError("database snapshot is not UTF-8".to_string()))?;
    let mut lines = text.lines();
    if lines.next() != Some(HEADER) {
        return Err(ReplError("database snapshot missing header".to_string()));
    }
    let mut sections: Vec<(String, String)> = Vec::new();
    for line in lines {
        if let Some(name) = line.strip_prefix(SECTION) {
            sections.push((name.trim().to_string(), String::new()));
        } else {
            let Some((_, body)) = sections.last_mut() else {
                return Err(ReplError("snapshot CSV outside any section".to_string()));
            };
            body.push_str(line);
            body.push('\n');
        }
    }
    let Some((first_name, manifest_csv)) = sections.first() else {
        return Err(ReplError("database snapshot has no sections".to_string()));
    };
    if first_name != MANIFEST {
        return Err(ReplError(format!(
            "first snapshot section is {first_name:?}, expected {MANIFEST:?}"
        )));
    }
    let manifest = from_csv(MANIFEST, manifest_schema()?, manifest_csv)
        .map_err(|e| ReplError(format!("parsing schema manifest: {e}")))?;

    let mut db = Database::new();
    for (name, body) in sections.iter().skip(1) {
        let mut attrs: Vec<(i64, Attribute)> = Vec::new();
        for t in manifest.iter() {
            if t.get(0).as_str() != Some(name.as_str()) {
                continue;
            }
            let bad = |what: &str| ReplError(format!("bad manifest {what} for {name}"));
            let pos = t.get(1).as_int().ok_or_else(|| bad("Position"))?;
            let attr_name = t.get(2).as_str().ok_or_else(|| bad("Attribute"))?;
            let is_key = t.get(3).as_int().unwrap_or(0) != 0;
            let ty = ValueType::from_keyword(t.get(4).as_str().unwrap_or(""))
                .ok_or_else(|| bad("Type"))?;
            let char_len = t.get(5).as_int().unwrap_or(0);
            let domain = if char_len > 0 && ty == ValueType::Str {
                Domain::char_n(char_len as usize)
            } else {
                Domain::basic(ty)
            };
            let attr = if is_key {
                Attribute::key(attr_name, domain)
            } else {
                Attribute::new(attr_name, domain)
            };
            attrs.push((pos, attr));
        }
        if attrs.is_empty() {
            return Err(ReplError(format!(
                "snapshot section {name:?} has no manifest entry"
            )));
        }
        attrs.sort_by_key(|(pos, _)| *pos);
        let schema = Schema::new(attrs.into_iter().map(|(_, a)| a).collect())
            .map_err(|e| ReplError(format!("rebuilding schema for {name}: {e}")))?;
        let rel = from_csv(name, schema, body)
            .map_err(|e| ReplError(format!("parsing relation {name}: {e}")))?;
        db.create(rel)
            .map_err(|e| ReplError(format!("installing relation {name}: {e}")))?;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intensio_storage::tuple;

    fn sample_db() -> Database {
        let schema = Schema::new(vec![
            Attribute::key("Id", Domain::char_n(7)),
            Attribute::new("Name", Domain::char_n(20)),
            Attribute::new("Displacement", Domain::basic(ValueType::Int)),
        ])
        .unwrap();
        let mut ships = Relation::new("SHIPS", schema);
        ships
            .insert_all([
                tuple!["SSBN730", "Rhode Island", 16600],
                tuple!["SSN671", "Narwhal", 4450],
            ])
            .unwrap();
        let schema2 = Schema::new(vec![
            Attribute::key("Type", Domain::char_n(4)),
            Attribute::new("Count", Domain::basic(ValueType::Int)),
        ])
        .unwrap();
        let mut types = Relation::new("TYPES", schema2);
        types.insert(tuple!["SSN", 17]).unwrap();
        let mut db = Database::new();
        db.create(ships).unwrap();
        db.create(types).unwrap();
        db
    }

    #[test]
    fn round_trip_preserves_schema_and_data() {
        let db = sample_db();
        let bytes = db_to_bytes(&db).unwrap();
        let mut back = db_from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.get("SHIPS").unwrap().tuples(),
            db.get("SHIPS").unwrap().tuples()
        );
        // Keys and char[n] widths survive the trip.
        assert!(back
            .get_mut("SHIPS")
            .unwrap()
            .insert(tuple!["SSBN730", "Impostor", 1])
            .is_err());
        assert!(back
            .get_mut("SHIPS")
            .unwrap()
            .insert(tuple!["WAY-TOO-LONG-ID", "x", 1])
            .is_err());
    }

    #[test]
    fn empty_database_round_trips() {
        let bytes = db_to_bytes(&Database::new()).unwrap();
        assert_eq!(db_from_bytes(&bytes).unwrap().len(), 0);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(db_from_bytes(b"not a snapshot").is_err());
        assert!(db_from_bytes(&[0xFF, 0xFE]).is_err());
        let valid = db_to_bytes(&sample_db()).unwrap();
        let truncated = &valid[..valid.len() / 3];
        assert!(db_from_bytes(truncated).is_err());
    }
}
