//! The replication stream's wire format.
//!
//! A follower sends the ordinary protocol line `REPLICATE <from_epoch>`
//! (optionally `REPLICATE <from_epoch> term=<t>` to declare the highest
//! term it has durably observed) and the connection switches from
//! request/response into a one-way stream of `#repl`-prefixed lines:
//!
//! ```text
//! #repl ok 42 3                        handshake: primary at epoch 42, term 3
//! #repl snapshot 42 17 3 <db-hex> <rules-hex|->   full-state bootstrap
//! #repl record write 3 43 18 <body-hex>   one shipped WAL record
//! #repl record rules 3 44 18 <body-hex>
//! #repl record term 4 45 18               a promotion fencepost (empty body)
//! #repl record write 4 46 19 <body-hex> <trace:016x>:<span:016x>
//! #repl heartbeat 44 3                 idle keepalive: primary epoch + term
//! #repl error <message>                stream is over; reconnect
//! ```
//!
//! Every frame that describes primary state carries the primary's
//! **term** — the monotonic failover counter (see `intensio_wal`'s
//! record format). A follower that has durably observed term `t`
//! rejects any stream whose frames carry a lower term: that stream
//! comes from a deposed primary that has not yet noticed its own
//! demotion. The rejection travels as an `error` frame whose message
//! starts with `STALE_TERM`.
//!
//! A record line may carry one optional trailing token: the trace
//! context of the primary-side commit (`<trace id>:<commit span id>`,
//! both 16 lowercase hex digits). A follower installs it before
//! applying, so its apply span joins the same trace with the primary's
//! commit span as its parent. Records replayed from history (which the
//! WAL does not trace) ship without the token.
//!
//! Bodies are lowercase hex so the stream stays line-framed like the
//! rest of the protocol (a record body is a QUEL script or encoded rule
//! relations — both may contain newlines). The handshake line always
//! comes first; exactly one of snapshot-then-records or records-only
//! follows, depending on whether the primary's log still covers
//! `from_epoch` (see `intensio_wal::read`).

use crate::ReplError;
use intensio_wal::{Record, RecordKind};

/// The message prefix an `error` frame uses to tell a peer its term is
/// stale. Receivers match on this prefix to distinguish fencing (which
/// demands demotion or target rotation) from ordinary stream teardown.
pub const STALE_TERM: &str = "STALE_TERM";

/// One line of the replication stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamMsg {
    /// Handshake: the stream is live; the primary's committed position.
    Ok {
        /// The primary's committed epoch at stream start.
        epoch: u64,
        /// The primary's current term.
        term: u64,
    },
    /// Full-state bootstrap: the primary's pinned snapshot.
    Snapshot {
        /// Epoch of the shipped state.
        epoch: u64,
        /// Data version of the shipped state.
        data_version: u64,
        /// Term under which the shipped state was committed.
        term: u64,
        /// The database, encoded by [`crate::snapshot::db_to_bytes`].
        db: Vec<u8>,
        /// The installed rule set in its WAL record encoding
        /// (`intensio_wal::rules_codec`), when one was installed.
        rules: Option<Vec<u8>>,
    },
    /// One shipped WAL record (a QUEL write, a rule-set install, or a
    /// term-bump fencepost). The record's own `term` field is on the
    /// wire, so fencing survives history replay.
    Record {
        /// The shipped record.
        rec: Record,
        /// The primary-side commit's `(trace id, span id)`, when the
        /// committing request was traced. Followers parent their apply
        /// span on it.
        trace: Option<(u64, u64)>,
    },
    /// Idle keepalive carrying the primary's current committed epoch
    /// and term, so followers track lag (and fence) between writes.
    Heartbeat {
        /// The primary's committed epoch.
        epoch: u64,
        /// The primary's current term.
        term: u64,
    },
    /// The stream is over; the follower should reconnect. A message
    /// starting with [`STALE_TERM`] means the receiver's lineage lost a
    /// failover and it must not retry the same target unchanged.
    Error(String),
}

const PREFIX: &str = "#repl ";

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{b:02x}"));
    }
    out
}

fn hex_decode(s: &str) -> Result<Vec<u8>, ReplError> {
    if !s.len().is_multiple_of(2) {
        return Err(ReplError("odd-length hex body".to_string()));
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    let nibble = |c: u8| -> Result<u8, ReplError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(ReplError(format!("bad hex digit {:?}", c as char))),
        }
    };
    for pair in bytes.chunks_exact(2) {
        out.push(nibble(pair[0])? << 4 | nibble(pair[1])?);
    }
    Ok(out)
}

impl StreamMsg {
    /// Render the message as one protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            StreamMsg::Ok { epoch, term } => format!("{PREFIX}ok {epoch} {term}"),
            StreamMsg::Snapshot {
                epoch,
                data_version,
                term,
                db,
                rules,
            } => {
                let rules = match rules {
                    Some(r) => hex_encode(r),
                    None => "-".to_string(),
                };
                format!(
                    "{PREFIX}snapshot {epoch} {data_version} {term} {} {rules}",
                    hex_encode(db)
                )
            }
            StreamMsg::Record { rec, trace } => {
                let mut line = format!(
                    "{PREFIX}record {} {} {} {} {}",
                    rec.kind.name(),
                    rec.term,
                    rec.epoch,
                    rec.data_version,
                    hex_encode(&rec.body)
                );
                if let Some((trace_id, span_id)) = trace {
                    let _ = std::fmt::Write::write_fmt(
                        &mut line,
                        format_args!(" {trace_id:016x}:{span_id:016x}"),
                    );
                }
                line
            }
            StreamMsg::Heartbeat { epoch, term } => format!("{PREFIX}heartbeat {epoch} {term}"),
            StreamMsg::Error(msg) => {
                format!("{PREFIX}error {}", msg.replace(['\n', '\r'], " "))
            }
        }
    }

    /// Parse one stream line (as produced by [`StreamMsg::encode`]).
    pub fn parse(line: &str) -> Result<StreamMsg, ReplError> {
        let rest = line
            .trim_end_matches(['\r', '\n'])
            .strip_prefix(PREFIX)
            .ok_or_else(|| ReplError(format!("not a replication line: {line:?}")))?;
        let (verb, args) = rest.split_once(' ').unwrap_or((rest, ""));
        let int = |s: &str| -> Result<u64, ReplError> {
            s.parse()
                .map_err(|_| ReplError(format!("bad integer {s:?} in {verb} line")))
        };
        let two_ints = |args: &str| -> Result<(u64, u64), ReplError> {
            let (a, b) = args
                .split_once(' ')
                .ok_or_else(|| ReplError(format!("{verb} line missing term field")))?;
            if b.contains(' ') {
                return Err(ReplError(format!("trailing fields on {verb} line")));
            }
            Ok((int(a)?, int(b)?))
        };
        match verb {
            "ok" => {
                let (epoch, term) = two_ints(args)?;
                Ok(StreamMsg::Ok { epoch, term })
            }
            "heartbeat" => {
                let (epoch, term) = two_ints(args)?;
                Ok(StreamMsg::Heartbeat { epoch, term })
            }
            "error" => Ok(StreamMsg::Error(args.to_string())),
            "snapshot" => {
                let mut it = args.split(' ');
                let mut next = || -> Result<&str, ReplError> {
                    it.next()
                        .ok_or_else(|| ReplError("snapshot line missing fields".to_string()))
                };
                let epoch = int(next()?)?;
                let data_version = int(next()?)?;
                let term = int(next()?)?;
                let db = hex_decode(next()?)?;
                let rules = match next()? {
                    "-" => None,
                    hex => Some(hex_decode(hex)?),
                };
                if it.next().is_some() {
                    return Err(ReplError("trailing fields on snapshot line".to_string()));
                }
                Ok(StreamMsg::Snapshot {
                    epoch,
                    data_version,
                    term,
                    db,
                    rules,
                })
            }
            "record" => {
                let mut it = args.split(' ');
                let mut next = || -> Result<&str, ReplError> {
                    it.next()
                        .ok_or_else(|| ReplError("record line missing fields".to_string()))
                };
                let kind = match next()? {
                    "write" => RecordKind::Write,
                    "rules" => RecordKind::Rules,
                    "term" => RecordKind::Term,
                    other => return Err(ReplError(format!("unknown record kind {other:?}"))),
                };
                let term = int(next()?)?;
                let epoch = int(next()?)?;
                let data_version = int(next()?)?;
                let body = hex_decode(next()?)?;
                let trace = match it.next() {
                    None => None,
                    Some(tok) => Some(parse_trace_token(tok)?),
                };
                if it.next().is_some() {
                    return Err(ReplError("trailing fields on record line".to_string()));
                }
                Ok(StreamMsg::Record {
                    rec: Record {
                        kind,
                        term,
                        epoch,
                        data_version,
                        body,
                    },
                    trace,
                })
            }
            other => Err(ReplError(format!("unknown replication verb {other:?}"))),
        }
    }

    /// Whether a protocol line belongs to a replication stream.
    pub fn is_stream_line(line: &str) -> bool {
        line.starts_with(PREFIX)
    }

    /// Whether the message is a fencing rejection (an `error` frame
    /// whose message starts with [`STALE_TERM`]).
    pub fn is_stale_term(&self) -> bool {
        matches!(self, StreamMsg::Error(msg) if msg.starts_with(STALE_TERM))
    }
}

/// Parse the optional `<trace:016x>:<span:016x>` token on a record line.
fn parse_trace_token(tok: &str) -> Result<(u64, u64), ReplError> {
    let bad = || ReplError(format!("bad trace token {tok:?} on record line"));
    let (t, s) = tok.split_once(':').ok_or_else(bad)?;
    if t.len() != 16 || s.len() != 16 {
        return Err(bad());
    }
    let trace_id = u64::from_str_radix(t, 16).map_err(|_| bad())?;
    let span_id = u64::from_str_radix(s, 16).map_err(|_| bad())?;
    if trace_id == 0 {
        return Err(bad());
    }
    Ok((trace_id, span_id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_round_trips() {
        let msgs = [
            StreamMsg::Ok { epoch: 42, term: 3 },
            StreamMsg::Snapshot {
                epoch: 7,
                data_version: 3,
                term: 2,
                db: b"%intensio-db v1\n".to_vec(),
                rules: Some(vec![0, 1, 254, 255]),
            },
            StreamMsg::Snapshot {
                epoch: 0,
                data_version: 0,
                term: 0,
                db: Vec::new(),
                rules: None,
            },
            StreamMsg::Record {
                rec: Record::write(9, 4, "append to R (Id = \"x\")\nmore"),
                trace: None,
            },
            StreamMsg::Record {
                rec: Record::rules(10, 4, vec![7; 33]).with_term(1),
                trace: None,
            },
            StreamMsg::Record {
                rec: Record::term_bump(2, 11, 4),
                trace: None,
            },
            StreamMsg::Record {
                rec: Record::write(12, 5, "append to R (Id = \"y\")").with_term(2),
                trace: Some((0xdead_beef_cafe_f00d, 0x0000_0000_0000_002a)),
            },
            StreamMsg::Heartbeat { epoch: 11, term: 2 },
            StreamMsg::Error("primary shutting down".to_string()),
        ];
        for msg in msgs {
            let line = msg.encode();
            assert!(StreamMsg::is_stream_line(&line));
            assert!(!line.contains('\n'), "stream lines must stay line-framed");
            assert_eq!(StreamMsg::parse(&line).unwrap(), msg);
        }
    }

    #[test]
    fn garbage_is_rejected_not_misread() {
        for bad in [
            "",
            "SQL select 1",
            "#repl",
            "#repl bogus 1",
            "#repl ok",
            "#repl ok 1",
            "#repl ok notanumber 2",
            "#repl ok 1 2 3",
            "#repl heartbeat 4",
            "#repl record write 1",
            "#repl record write 1 2 3",
            "#repl record write 0 1 2 xyz",
            "#repl record mystery 0 1 2 00",
            "#repl record write 0 1 2 00 nottrace",
            "#repl record write 0 1 2 00 0000000000000000:0000000000000001",
            "#repl record write 0 1 2 00 0000000000000001:0000000000000002 extra",
            "#repl snapshot 1 2",
            "#repl snapshot 1 2 3",
            "#repl snapshot 1 2 3 0g -",
            "#repl snapshot 1 2 3 00 - extra",
        ] {
            assert!(StreamMsg::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn error_messages_with_newlines_stay_on_one_line() {
        let msg = StreamMsg::Error("two\nlines".to_string());
        let line = msg.encode();
        assert!(!line.contains('\n'));
        assert_eq!(
            StreamMsg::parse(&line).unwrap(),
            StreamMsg::Error("two lines".to_string())
        );
    }

    #[test]
    fn stale_term_errors_are_recognized() {
        let msg = StreamMsg::Error(format!("{STALE_TERM}: stream term 1 below follower term 2"));
        assert!(msg.is_stale_term());
        assert!(StreamMsg::parse(&msg.encode()).unwrap().is_stale_term());
        assert!(!StreamMsg::Error("primary shutting down".into()).is_stale_term());
        assert!(!StreamMsg::Heartbeat { epoch: 1, term: 1 }.is_stale_term());
    }

    /// xorshift64: deterministic pseudo-random stream for the property
    /// tests below — no external crates, seed-reproducible.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    fn random_msg(rng: &mut Rng) -> StreamMsg {
        let body = |rng: &mut Rng| -> Vec<u8> {
            let len = (rng.next() % 64) as usize;
            (0..len).map(|_| (rng.next() & 0xff) as u8).collect()
        };
        match rng.next() % 5 {
            0 => StreamMsg::Ok {
                epoch: rng.next(),
                term: rng.next(),
            },
            1 => StreamMsg::Heartbeat {
                epoch: rng.next(),
                term: rng.next(),
            },
            2 => StreamMsg::Snapshot {
                epoch: rng.next(),
                data_version: rng.next(),
                term: rng.next(),
                db: body(rng),
                rules: if rng.next().is_multiple_of(2) {
                    Some(body(rng))
                } else {
                    None
                },
            },
            3 => {
                let kind = match rng.next() % 3 {
                    0 => RecordKind::Write,
                    1 => RecordKind::Rules,
                    _ => RecordKind::Term,
                };
                let trace = if rng.next().is_multiple_of(2) {
                    Some((rng.next() | 1, rng.next()))
                } else {
                    None
                };
                StreamMsg::Record {
                    rec: Record {
                        kind,
                        term: rng.next(),
                        epoch: rng.next(),
                        data_version: rng.next(),
                        body: body(rng),
                    },
                    trace,
                }
            }
            _ => {
                let len = 1 + (rng.next() % 40) as usize;
                let msg: String = (0..len)
                    .map(|_| (b'a' + (rng.next() % 26) as u8) as char)
                    .collect();
                StreamMsg::Error(msg)
            }
        }
    }

    #[test]
    fn property_random_frames_round_trip() {
        let mut rng = Rng(0x5eed_f011_0b5e_55ed);
        for i in 0..500 {
            let msg = random_msg(&mut rng);
            let line = msg.encode();
            let back = StreamMsg::parse(&line)
                .unwrap_or_else(|e| panic!("round {i}: {line:?} failed to parse: {e:?}"));
            assert_eq!(back, msg, "round {i}: {line:?} round-tripped wrong");
        }
    }

    #[test]
    fn property_truncated_frames_error_or_differ_never_panic() {
        // A frame cut anywhere — a peer dying mid-write, a link fault
        // tearing the line — must parse to an error or to a *different*
        // message. Parsing a strict prefix back to the original would
        // mean a field silently defaulted under truncation.
        let mut rng = Rng(0x070c_47ed_f4a3_3751);
        for _ in 0..200 {
            let msg = random_msg(&mut rng);
            let line = msg.encode(); // always ASCII, so byte cuts are char-safe
            for keep in 0..line.len() {
                if let Ok(back) = StreamMsg::parse(&line[..keep]) {
                    assert_ne!(
                        back, msg,
                        "prefix of {keep} bytes of {line:?} still read as the original"
                    );
                }
            }
        }
    }

    #[test]
    fn property_interleaved_garbage_never_panics() {
        // Bytes that were never a frame — noise spliced into the stream
        // by a duplicating or tearing link — may only ever produce a
        // parse error (or, by blind luck, a syntactically valid frame);
        // the reader must not panic on any of them.
        let mut rng = Rng(0x6a5b_a6e5_eed1_1235);
        for i in 0..500 {
            let len = (rng.next() % 120) as usize;
            let mut s = if rng.next().is_multiple_of(2) {
                String::new()
            } else {
                // Half the inputs start as stream lines so the garbage
                // reaches the per-verb field parsers, not just the
                // prefix check.
                "#repl ".to_string()
            };
            for _ in 0..len {
                // Printable ASCII, space-heavy to vary token counts.
                let c = match rng.next() % 4 {
                    0 => b' ',
                    _ => (0x20 + (rng.next() % 0x5f) as u8).min(0x7e),
                };
                s.push(c as char);
            }
            let _ = StreamMsg::parse(&s); // round {i}: must return, not panic
            let _ = i;
        }
    }

    #[test]
    fn property_mutated_frames_never_misread() {
        // Deleting any single token from an encoded frame must yield a
        // parse error or a *different* message — never the original
        // (i.e. no field is silently defaulted).
        let mut rng = Rng(0xdefa_ced5_7a1e_7e12);
        for _ in 0..200 {
            let msg = random_msg(&mut rng);
            let line = msg.encode();
            let tokens: Vec<&str> = line.split(' ').collect();
            // Skip the "#repl" prefix and verb; removing those makes a
            // trivially-not-a-stream-line string.
            for drop_at in 2..tokens.len() {
                let mut kept: Vec<&str> = tokens.clone();
                kept.remove(drop_at);
                let mutated = kept.join(" ");
                if let Ok(back) = StreamMsg::parse(&mutated) {
                    assert_ne!(
                        back, msg,
                        "dropping token {drop_at} from {line:?} still read as the original"
                    );
                }
            }
        }
    }
}
