//! The replication stream's wire format.
//!
//! A follower sends the ordinary protocol line `REPLICATE <from_epoch>`
//! and the connection switches from request/response into a one-way
//! stream of `#repl`-prefixed lines:
//!
//! ```text
//! #repl ok 42                          handshake: primary is at epoch 42
//! #repl snapshot 42 17 <db-hex> <rules-hex|->   full-state bootstrap
//! #repl record write 43 18 <body-hex>  one shipped WAL record
//! #repl record rules 44 18 <body-hex>
//! #repl record write 45 19 <body-hex> <trace:016x>:<span:016x>
//! #repl heartbeat 44                   idle keepalive with primary epoch
//! #repl error <message>                stream is over; reconnect
//! ```
//!
//! A record line may carry one optional trailing token: the trace
//! context of the primary-side commit (`<trace id>:<commit span id>`,
//! both 16 lowercase hex digits). A follower installs it before
//! applying, so its apply span joins the same trace with the primary's
//! commit span as its parent. Records replayed from history (which the
//! WAL does not trace) ship without the token.
//!
//! Bodies are lowercase hex so the stream stays line-framed like the
//! rest of the protocol (a record body is a QUEL script or encoded rule
//! relations — both may contain newlines). The handshake line always
//! comes first; exactly one of snapshot-then-records or records-only
//! follows, depending on whether the primary's log still covers
//! `from_epoch` (see `intensio_wal::read`).

use crate::ReplError;
use intensio_wal::{Record, RecordKind};

/// One line of the replication stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamMsg {
    /// Handshake: the stream is live; the primary's committed epoch.
    Ok {
        /// The primary's committed epoch at stream start.
        epoch: u64,
    },
    /// Full-state bootstrap: the primary's pinned snapshot.
    Snapshot {
        /// Epoch of the shipped state.
        epoch: u64,
        /// Data version of the shipped state.
        data_version: u64,
        /// The database, encoded by [`crate::snapshot::db_to_bytes`].
        db: Vec<u8>,
        /// The installed rule set in its WAL record encoding
        /// (`intensio_wal::rules_codec`), when one was installed.
        rules: Option<Vec<u8>>,
    },
    /// One shipped WAL record (a QUEL write or a rule-set install).
    Record {
        /// The shipped record.
        rec: Record,
        /// The primary-side commit's `(trace id, span id)`, when the
        /// committing request was traced. Followers parent their apply
        /// span on it.
        trace: Option<(u64, u64)>,
    },
    /// Idle keepalive carrying the primary's current committed epoch,
    /// so followers track lag even between writes.
    Heartbeat {
        /// The primary's committed epoch.
        epoch: u64,
    },
    /// The stream is over; the follower should reconnect.
    Error(String),
}

const PREFIX: &str = "#repl ";

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{b:02x}"));
    }
    out
}

fn hex_decode(s: &str) -> Result<Vec<u8>, ReplError> {
    if !s.len().is_multiple_of(2) {
        return Err(ReplError("odd-length hex body".to_string()));
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    let nibble = |c: u8| -> Result<u8, ReplError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(ReplError(format!("bad hex digit {:?}", c as char))),
        }
    };
    for pair in bytes.chunks_exact(2) {
        out.push(nibble(pair[0])? << 4 | nibble(pair[1])?);
    }
    Ok(out)
}

impl StreamMsg {
    /// Render the message as one protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            StreamMsg::Ok { epoch } => format!("{PREFIX}ok {epoch}"),
            StreamMsg::Snapshot {
                epoch,
                data_version,
                db,
                rules,
            } => {
                let rules = match rules {
                    Some(r) => hex_encode(r),
                    None => "-".to_string(),
                };
                format!(
                    "{PREFIX}snapshot {epoch} {data_version} {} {rules}",
                    hex_encode(db)
                )
            }
            StreamMsg::Record { rec, trace } => {
                let mut line = format!(
                    "{PREFIX}record {} {} {} {}",
                    rec.kind.name(),
                    rec.epoch,
                    rec.data_version,
                    hex_encode(&rec.body)
                );
                if let Some((trace_id, span_id)) = trace {
                    let _ = std::fmt::Write::write_fmt(
                        &mut line,
                        format_args!(" {trace_id:016x}:{span_id:016x}"),
                    );
                }
                line
            }
            StreamMsg::Heartbeat { epoch } => format!("{PREFIX}heartbeat {epoch}"),
            StreamMsg::Error(msg) => {
                format!("{PREFIX}error {}", msg.replace(['\n', '\r'], " "))
            }
        }
    }

    /// Parse one stream line (as produced by [`StreamMsg::encode`]).
    pub fn parse(line: &str) -> Result<StreamMsg, ReplError> {
        let rest = line
            .trim_end_matches(['\r', '\n'])
            .strip_prefix(PREFIX)
            .ok_or_else(|| ReplError(format!("not a replication line: {line:?}")))?;
        let (verb, args) = rest.split_once(' ').unwrap_or((rest, ""));
        let int = |s: &str| -> Result<u64, ReplError> {
            s.parse()
                .map_err(|_| ReplError(format!("bad integer {s:?} in {verb} line")))
        };
        match verb {
            "ok" => Ok(StreamMsg::Ok { epoch: int(args)? }),
            "heartbeat" => Ok(StreamMsg::Heartbeat { epoch: int(args)? }),
            "error" => Ok(StreamMsg::Error(args.to_string())),
            "snapshot" => {
                let mut it = args.split(' ');
                let mut next = || -> Result<&str, ReplError> {
                    it.next()
                        .ok_or_else(|| ReplError("snapshot line missing fields".to_string()))
                };
                let epoch = int(next()?)?;
                let data_version = int(next()?)?;
                let db = hex_decode(next()?)?;
                let rules = match next()? {
                    "-" => None,
                    hex => Some(hex_decode(hex)?),
                };
                Ok(StreamMsg::Snapshot {
                    epoch,
                    data_version,
                    db,
                    rules,
                })
            }
            "record" => {
                let mut it = args.split(' ');
                let mut next = || -> Result<&str, ReplError> {
                    it.next()
                        .ok_or_else(|| ReplError("record line missing fields".to_string()))
                };
                let kind = match next()? {
                    "write" => RecordKind::Write,
                    "rules" => RecordKind::Rules,
                    other => return Err(ReplError(format!("unknown record kind {other:?}"))),
                };
                let epoch = int(next()?)?;
                let data_version = int(next()?)?;
                let body = hex_decode(next()?)?;
                let trace = match it.next() {
                    None => None,
                    Some(tok) => Some(parse_trace_token(tok)?),
                };
                if it.next().is_some() {
                    return Err(ReplError("trailing fields on record line".to_string()));
                }
                Ok(StreamMsg::Record {
                    rec: Record {
                        kind,
                        epoch,
                        data_version,
                        body,
                    },
                    trace,
                })
            }
            other => Err(ReplError(format!("unknown replication verb {other:?}"))),
        }
    }

    /// Whether a protocol line belongs to a replication stream.
    pub fn is_stream_line(line: &str) -> bool {
        line.starts_with(PREFIX)
    }
}

/// Parse the optional `<trace:016x>:<span:016x>` token on a record line.
fn parse_trace_token(tok: &str) -> Result<(u64, u64), ReplError> {
    let bad = || ReplError(format!("bad trace token {tok:?} on record line"));
    let (t, s) = tok.split_once(':').ok_or_else(bad)?;
    if t.len() != 16 || s.len() != 16 {
        return Err(bad());
    }
    let trace_id = u64::from_str_radix(t, 16).map_err(|_| bad())?;
    let span_id = u64::from_str_radix(s, 16).map_err(|_| bad())?;
    if trace_id == 0 {
        return Err(bad());
    }
    Ok((trace_id, span_id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_round_trips() {
        let msgs = [
            StreamMsg::Ok { epoch: 42 },
            StreamMsg::Snapshot {
                epoch: 7,
                data_version: 3,
                db: b"%intensio-db v1\n".to_vec(),
                rules: Some(vec![0, 1, 254, 255]),
            },
            StreamMsg::Snapshot {
                epoch: 0,
                data_version: 0,
                db: Vec::new(),
                rules: None,
            },
            StreamMsg::Record {
                rec: Record::write(9, 4, "append to R (Id = \"x\")\nmore"),
                trace: None,
            },
            StreamMsg::Record {
                rec: Record::rules(10, 4, vec![7; 33]),
                trace: None,
            },
            StreamMsg::Record {
                rec: Record::write(11, 5, "append to R (Id = \"y\")"),
                trace: Some((0xdead_beef_cafe_f00d, 0x0000_0000_0000_002a)),
            },
            StreamMsg::Heartbeat { epoch: 11 },
            StreamMsg::Error("primary shutting down".to_string()),
        ];
        for msg in msgs {
            let line = msg.encode();
            assert!(StreamMsg::is_stream_line(&line));
            assert!(!line.contains('\n'), "stream lines must stay line-framed");
            assert_eq!(StreamMsg::parse(&line).unwrap(), msg);
        }
    }

    #[test]
    fn garbage_is_rejected_not_misread() {
        for bad in [
            "",
            "SQL select 1",
            "#repl",
            "#repl bogus 1",
            "#repl ok",
            "#repl ok notanumber",
            "#repl record write 1",
            "#repl record write 1 2 xyz",
            "#repl record mystery 1 2 00",
            "#repl record write 1 2 00 nottrace",
            "#repl record write 1 2 00 0000000000000000:0000000000000001",
            "#repl record write 1 2 00 0000000000000001:0000000000000002 extra",
            "#repl snapshot 1 2",
            "#repl snapshot 1 2 0g -",
        ] {
            assert!(StreamMsg::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn error_messages_with_newlines_stay_on_one_line() {
        let msg = StreamMsg::Error("two\nlines".to_string());
        let line = msg.encode();
        assert!(!line.contains('\n'));
        assert_eq!(
            StreamMsg::parse(&line).unwrap(),
            StreamMsg::Error("two lines".to_string())
        );
    }
}
