//! The primary-side broadcast hub: fan freshly committed WAL records
//! out to every live replication stream.
//!
//! The serve write path publishes each record *after* its snapshot
//! installs, while still holding the write lock — so subscribers
//! observe records in strict epoch order with no interleaving. A
//! stream handler subscribes *before* reading the historical tail and
//! dedupes by epoch, which closes the bootstrap race: any record not in
//! the history it read is waiting in its channel.
//!
//! Channels are unbounded: a stalled follower buffers records in the
//! primary's memory rather than back-pressuring the write path. A
//! disconnected subscriber's channel errors on the next publish and is
//! dropped then.

use intensio_wal::Record;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

/// One published item: a committed record paired with the committing
/// request's trace context (`(trace id, commit span id)`, when
/// traced), so followers can parent their apply span on the primary's
/// commit span.
pub type TracedRecord = (Record, Option<(u64, u64)>);

/// A broadcast of committed records to replication streams.
#[derive(Debug, Default)]
pub struct ReplHub {
    subs: Mutex<Vec<Sender<TracedRecord>>>,
}

impl ReplHub {
    /// A hub with no subscribers.
    pub fn new() -> ReplHub {
        ReplHub::default()
    }

    /// Register a new stream: every record published after this call is
    /// delivered to the returned receiver, in publish order, paired
    /// with its commit trace context (if any).
    pub fn subscribe(&self) -> Receiver<TracedRecord> {
        let (tx, rx) = channel();
        self.subs.lock().unwrap_or_else(|e| e.into_inner()).push(tx);
        rx
    }

    /// Deliver one committed record to every live subscriber, dropping
    /// the ones whose stream has disconnected.
    pub fn publish(&self, record: &Record, trace: Option<(u64, u64)>) {
        let mut subs = self.subs.lock().unwrap_or_else(|e| e.into_inner());
        subs.retain(|tx| tx.send((record.clone(), trace)).is_ok());
    }

    /// How many streams are currently registered. Counts channels not
    /// yet swept by a publish, so it may briefly overcount after a
    /// disconnect.
    pub fn subscriber_count(&self) -> usize {
        self.subs.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publishes_in_order_to_every_subscriber() {
        let hub = ReplHub::new();
        let a = hub.subscribe();
        let b = hub.subscribe();
        for e in 1..=3u64 {
            hub.publish(&Record::write(e, e, "x"), Some((7, e)));
        }
        for rx in [a, b] {
            let records: Vec<(u64, Option<(u64, u64)>)> =
                rx.try_iter().map(|(r, t)| (r.epoch, t)).collect();
            assert_eq!(
                records,
                vec![(1, Some((7, 1))), (2, Some((7, 2))), (3, Some((7, 3)))]
            );
        }
    }

    #[test]
    fn dropped_subscribers_are_swept() {
        let hub = ReplHub::new();
        let a = hub.subscribe();
        let b = hub.subscribe();
        assert_eq!(hub.subscriber_count(), 2);
        drop(a);
        hub.publish(&Record::write(1, 1, "x"), None);
        assert_eq!(hub.subscriber_count(), 1);
        assert_eq!(b.try_iter().count(), 1);
    }

    #[test]
    fn late_subscribers_miss_earlier_records() {
        let hub = ReplHub::new();
        hub.publish(&Record::write(1, 1, "x"), None);
        let rx = hub.subscribe();
        hub.publish(&Record::write(2, 2, "y"), None);
        let epochs: Vec<u64> = rx.try_iter().map(|(r, _)| r.epoch).collect();
        assert_eq!(
            epochs,
            vec![2],
            "history must come from the log, not the hub"
        );
    }
}
