//! intensio-repl: WAL-shipping replication for the intensional query
//! service.
//!
//! The paper's intensional answers are computed from a small induced
//! rule set, not the raw tuples — so once the log carries both QUEL
//! writes and rule-set installs as §5.2.2 rule relations, a follower
//! that replays that log serves intensional and extensional reads with
//! full fidelity. This crate provides the pieces a primary and its
//! followers share:
//!
//! - **Wire format** ([`wire`]): the line-oriented replication stream a
//!   `REPLICATE <from_epoch>` request switches a protocol connection
//!   into — a bootstrap (snapshot or log tail), then live records, with
//!   heartbeats carrying the primary's epoch so followers can measure
//!   lag.
//! - **State codec** ([`snapshot`]): a whole database serialized to one
//!   byte buffer (sectioned CSV, mirroring `storage::persist`'s
//!   directory layout), so a follower too far behind the truncated log
//!   can bootstrap over the wire. Rule sets travel separately in their
//!   WAL record encoding (`intensio_wal::rules_codec`) — shipping the
//!   *induced* rules rather than re-inducing per follower is what keeps
//!   intensional answers identical cluster-wide.
//! - **Hub** ([`hub`]): the primary-side broadcast that fans freshly
//!   committed records out to every live replication stream.
//!
//! The follower-side apply loop lives in `intensio-serve`, which owns
//! the snapshot installation machinery; everything protocol-shaped
//! lives here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod hub;
pub mod snapshot;
pub mod wire;

pub use hub::ReplHub;
pub use wire::{StreamMsg, STALE_TERM};

use std::fmt;

/// A replication error: malformed stream line, undecodable snapshot,
/// or a broken record chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplError(pub String);

impl fmt::Display for ReplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "repl: {}", self.0)
    }
}

impl std::error::Error for ReplError {}
