//! The link-fault registry: named, seeded network faults over
//! (directed or symmetric) links between labeled endpoints.
//!
//! A fault is configured as `name=spec`, exactly like an
//! `intensio-fault` failpoint, and shares the `FAULT SET` / `FAULT
//! LIST` / `FAULT CLEAR` administration surface — specs whose name
//! starts with `net.` route here. The *name* carries the fault kind,
//! the *spec* carries the link:
//!
//! ```text
//! net.partition=a<->b        sever the a↔b link (both directions)
//! net.oneway=a->b            drop only a→b traffic (asymmetric)
//! net.delay:50=a->b          add 50ms to every a→b operation
//! net.dup=a->b               every a→b frame arrives twice
//! net.torn_write=a->b*1      the next a→b write ships half, then dies
//! net.reset=25%a<->b         25% of a↔b operations see ECONNRESET
//! net.partition#2=a<->c      `#tag` makes names unique per link
//! ```
//!
//! Endpoints are node labels (`--net-name`), raw `host:port` addresses,
//! registered aliases ([`register_alias`]), or `*`. The optional
//! modifiers mirror `intensio-fault`: a leading `P%` probability
//! (seeded, deterministic — see [`set_seed`]) and a trailing `*N`
//! trigger budget. Spec value `off` removes the fault.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What a fault does to matching traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Sever both directions: connects refuse, writes blackhole, reads
    /// starve (buffered data survives for the heal).
    Partition,
    /// Sever one direction only (the spec's `->` direction).
    Oneway,
    /// Sleep before every matching operation.
    Delay,
    /// Write every matching chunk twice.
    Dup,
    /// Ship half of one matching write, then fail it.
    TornWrite,
    /// Fail matching operations with `ECONNRESET`.
    Reset,
}

impl Kind {
    fn parse(token: &str) -> Option<Kind> {
        Some(match token {
            "partition" => Kind::Partition,
            "oneway" => Kind::Oneway,
            "delay" => Kind::Delay,
            "dup" => Kind::Dup,
            "torn_write" => Kind::TornWrite,
            "reset" => Kind::Reset,
            _ => return None,
        })
    }
}

/// One configured link fault.
#[derive(Debug, Clone)]
struct LinkFault {
    kind: Kind,
    /// Source endpoint pattern (label, address, alias, or `*`).
    a: String,
    /// Destination endpoint pattern.
    b: String,
    /// `a<->b` (either direction) vs `a->b` (src→dst only).
    symmetric: bool,
    /// [`Kind::Delay`] only.
    delay: Duration,
    /// Probability in parts-per-million (1_000_000 = always).
    prob_ppm: u32,
    /// Remaining trigger budget (`*N`); `None` = unbounded.
    remaining: Option<u64>,
    /// The spec text as configured, echoed by `FAULT LIST`.
    spec: String,
    /// Times a matching operation consulted this fault.
    hits: u64,
    /// Times it actually fired.
    triggered: u64,
}

/// The effects the caller must apply to one operation, merged across
/// every fault matching the link direction.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkEffects {
    /// The direction is severed (partition or oneway): blackhole
    /// writes, starve reads, refuse connects.
    pub severed: bool,
    /// Sleep this long before the operation.
    pub delay: Option<Duration>,
    /// Write the chunk twice.
    pub dup: bool,
    /// Ship half the chunk, then fail.
    pub torn: bool,
    /// Fail with `ECONNRESET`.
    pub reset: bool,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static RNG: AtomicU64 = AtomicU64::new(0x9E3779B97F4A7C15);

fn registry() -> &'static Mutex<BTreeMap<String, LinkFault>> {
    static REGISTRY: Mutex<BTreeMap<String, LinkFault>> = Mutex::new(BTreeMap::new());
    &REGISTRY
}

fn aliases() -> &'static Mutex<BTreeMap<String, String>> {
    static ALIASES: Mutex<BTreeMap<String, String>> = Mutex::new(BTreeMap::new());
    &ALIASES
}

/// Seed the probability RNG (deterministic drills set this from
/// `INTENSIO_CHAOS_SEED`, like the failpoint registry).
pub fn set_seed(seed: u64) {
    RNG.store(seed | 1, Ordering::SeqCst);
}

/// xorshift64* step, same generator the failpoint registry uses.
fn next_rand() -> u64 {
    let mut x = RNG.load(Ordering::Relaxed);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    RNG.store(x, Ordering::Relaxed);
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// Does this failpoint name belong to the net registry?
pub fn is_net_name(name: &str) -> bool {
    name.starts_with("net.")
}

/// Map a listening address to a node label, so fault specs written
/// against labels also catch connections that only know the address
/// (in-process multi-node harnesses register every node here).
pub fn register_alias(addr: &str, label: &str) {
    aliases()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(addr.to_string(), label.to_string());
}

/// Drop every registered alias (test isolation).
pub fn clear_aliases() {
    aliases().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Configure one link fault: `configure("net.partition", "a<->b")`.
/// Spec `off` removes the named fault.
pub fn configure(name: &str, spec: &str) -> Result<(), String> {
    let name = name.trim();
    let spec = spec.trim();
    if !is_net_name(name) {
        return Err(format!("not a net fault: {name:?} (expected net.<kind>)"));
    }
    if spec.eq_ignore_ascii_case("off") {
        remove(name);
        return Ok(());
    }
    let fault = parse(name, spec)?;
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.insert(name.to_string(), fault);
    ACTIVE.store(true, Ordering::SeqCst);
    Ok(())
}

/// Configure several faults at once: `"net.partition=a<->b;net.delay:50=a->c"`.
pub fn configure_str(s: &str) -> Result<(), String> {
    for part in s.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, spec) = part
            .split_once('=')
            .ok_or_else(|| format!("net fault spec without '=': {part:?}"))?;
        configure(name, spec)?;
    }
    Ok(())
}

/// Remove one fault by name. Returns whether it existed.
pub fn remove(name: &str) -> bool {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let existed = reg.remove(name).is_some();
    if reg.is_empty() {
        ACTIVE.store(false, Ordering::SeqCst);
    }
    existed
}

/// Remove every configured fault (aliases survive — they are topology,
/// not faults).
pub fn clear() {
    registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
    ACTIVE.store(false, Ordering::SeqCst);
}

/// Configure from `INTENSIO_NET_FAULTS` (same format as
/// [`configure_str`]); invalid specs are reported on stderr, not fatal.
/// `INTENSIO_CHAOS_SEED` (the same knob the chaos suites honor) seeds
/// the probability RNG first, so a `P%` spec replays identically.
pub fn init_from_env() {
    if let Ok(s) = std::env::var("INTENSIO_CHAOS_SEED") {
        if let Ok(seed) = s.trim().parse::<u64>() {
            set_seed(seed);
        }
    }
    if let Ok(s) = std::env::var("INTENSIO_NET_FAULTS") {
        if let Err(e) = configure_str(&s) {
            eprintln!("intensio-net: ignoring INTENSIO_NET_FAULTS: {e}");
        }
    }
}

/// Every configured link fault, for `FAULT LIST` (merged with the
/// failpoint registry's own listing).
pub fn list() -> Vec<intensio_fault::FailpointStatus> {
    registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(name, f)| intensio_fault::FailpointStatus {
            name: name.clone(),
            spec: f.spec.clone(),
            hits: f.hits,
            triggered: f.triggered,
        })
        .collect()
}

/// Parse `[P%]A<->B[*N]` / `[P%]A->B[@MS][*N]` under `net.<kind>[:MS][#tag]`.
fn parse(name: &str, spec: &str) -> Result<LinkFault, String> {
    let body = &name["net.".len()..];
    let body = body.split('#').next().unwrap_or(body);
    let (kind_token, name_arg) = match body.split_once(':') {
        Some((k, arg)) => (k, Some(arg)),
        None => (body, None),
    };
    let kind = Kind::parse(kind_token).ok_or_else(|| {
        format!(
            "unknown net fault kind {kind_token:?} \
             (expected partition|oneway|delay|dup|torn_write|reset)"
        )
    })?;
    let mut rest = spec;
    // Leading probability: `25%...`.
    let mut prob_ppm = 1_000_000u32;
    if let Some(pct) = rest.find('%') {
        if rest[..pct].chars().all(|c| c.is_ascii_digit()) && pct > 0 {
            let p: u32 = rest[..pct]
                .parse()
                .map_err(|_| format!("bad probability in {spec:?}"))?;
            if p > 100 {
                return Err(format!("probability over 100% in {spec:?}"));
            }
            prob_ppm = p * 10_000;
            rest = &rest[pct + 1..];
        }
    }
    // Trailing trigger budget: `...*N`.
    let mut remaining = None;
    if let Some(star) = rest.rfind('*') {
        let tail = &rest[star + 1..];
        if !tail.is_empty() && tail.chars().all(|c| c.is_ascii_digit()) {
            remaining = Some(
                tail.parse::<u64>()
                    .map_err(|_| format!("bad trigger budget in {spec:?}"))?,
            );
            rest = &rest[..star];
        }
    }
    // Trailing delay: `...@MS` (alternative to `net.delay:MS`).
    let mut delay_ms: Option<u64> = name_arg
        .map(|arg| {
            arg.parse::<u64>()
                .map_err(|_| format!("bad delay in fault name {name:?}"))
        })
        .transpose()?;
    if let Some(at) = rest.rfind('@') {
        let tail = &rest[at + 1..];
        if !tail.is_empty() && tail.chars().all(|c| c.is_ascii_digit()) {
            delay_ms = Some(
                tail.parse::<u64>()
                    .map_err(|_| format!("bad delay in {spec:?}"))?,
            );
            rest = &rest[..at];
        }
    }
    if kind == Kind::Delay && delay_ms.is_none() {
        return Err(format!(
            "net.delay needs a duration: net.delay:MS={spec} or {name}={rest}@MS"
        ));
    }
    // The link itself: `A<->B` or `A->B`.
    let (a, b, symmetric) = if let Some((a, b)) = rest.split_once("<->") {
        (a, b, true)
    } else if let Some((a, b)) = rest.split_once("->") {
        (a, b, false)
    } else {
        return Err(format!(
            "net fault spec {spec:?} has no link (expected A<->B or A->B)"
        ));
    };
    let (a, b) = (a.trim(), b.trim());
    if a.is_empty() || b.is_empty() {
        return Err(format!("net fault spec {spec:?} has an empty endpoint"));
    }
    Ok(LinkFault {
        kind,
        a: a.to_string(),
        b: b.to_string(),
        symmetric,
        delay: Duration::from_millis(delay_ms.unwrap_or(0)),
        prob_ppm,
        remaining,
        spec: spec.to_string(),
        hits: 0,
        triggered: 0,
    })
}

/// Does `pattern` name this endpoint? An endpoint is known by its label
/// (when any), its address, and the label its address is aliased to.
fn endpoint_matches(
    pattern: &str,
    label: Option<&str>,
    addr: &str,
    aliases: &BTreeMap<String, String>,
) -> bool {
    if pattern == "*" {
        return true;
    }
    if let Some(l) = label {
        if !l.is_empty() && pattern == l {
            return true;
        }
    }
    if !addr.is_empty() {
        if pattern == addr {
            return true;
        }
        if aliases.get(addr).is_some_and(|l| l == pattern) {
            return true;
        }
    }
    false
}

/// Merge the effects of every fault matching traffic flowing
/// `src → dst`. `src`/`dst` are each identified by an optional label
/// and an address (either may be empty).
fn effects_for(
    src_label: Option<&str>,
    src_addr: &str,
    dst_label: Option<&str>,
    dst_addr: &str,
) -> LinkEffects {
    let mut fx = LinkEffects::default();
    if !ACTIVE.load(Ordering::Relaxed) {
        return fx;
    }
    let al = aliases().lock().unwrap_or_else(|e| e.into_inner()).clone();
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    for fault in reg.values_mut() {
        let forward = endpoint_matches(&fault.a, src_label, src_addr, &al)
            && endpoint_matches(&fault.b, dst_label, dst_addr, &al);
        let backward = fault.symmetric
            && endpoint_matches(&fault.a, dst_label, dst_addr, &al)
            && endpoint_matches(&fault.b, src_label, src_addr, &al);
        if !forward && !backward {
            continue;
        }
        fault.hits += 1;
        if fault.remaining == Some(0) {
            continue;
        }
        if fault.prob_ppm < 1_000_000 && (next_rand() % 1_000_000) as u32 >= fault.prob_ppm {
            continue;
        }
        if let Some(n) = fault.remaining.as_mut() {
            *n -= 1;
        }
        fault.triggered += 1;
        match fault.kind {
            Kind::Partition | Kind::Oneway => fx.severed = true,
            Kind::Delay => {
                fx.delay = Some(fx.delay.map_or(fault.delay, |d| d + fault.delay));
            }
            Kind::Dup => fx.dup = true,
            Kind::TornWrite => fx.torn = true,
            Kind::Reset => fx.reset = true,
        }
    }
    fx
}

/// Effects for traffic *leaving* the local endpoint for the peer.
pub fn effects(
    local_label: &str,
    local_addr: &str,
    peer_label: Option<&str>,
    peer_addr: &str,
) -> LinkEffects {
    effects_for(Some(local_label), local_addr, peer_label, peer_addr)
}

/// Effects for traffic *arriving* at the local endpoint from the peer.
pub fn effects_inbound(
    local_label: &str,
    local_addr: &str,
    peer_label: Option<&str>,
    peer_addr: &str,
) -> LinkEffects {
    effects_for(peer_label, peer_addr, Some(local_label), local_addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let guard = GATE.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        clear_aliases();
        guard
    }

    #[test]
    fn parses_the_grammar() {
        let f = parse("net.partition", "a<->b").unwrap();
        assert!(f.symmetric);
        assert_eq!((f.a.as_str(), f.b.as_str()), ("a", "b"));
        let f = parse("net.oneway", "a->b").unwrap();
        assert!(!f.symmetric);
        let f = parse("net.delay:50", "a->b").unwrap();
        assert_eq!(f.delay, Duration::from_millis(50));
        let f = parse("net.delay", "a->b@75").unwrap();
        assert_eq!(f.delay, Duration::from_millis(75));
        let f = parse("net.reset", "25%a<->b*3").unwrap();
        assert_eq!(f.prob_ppm, 250_000);
        assert_eq!(f.remaining, Some(3));
        assert!(parse("net.delay", "a->b").is_err(), "delay needs MS");
        assert!(parse("net.partition", "ab").is_err(), "no link arrow");
        assert!(parse("net.bogus", "a->b").is_err(), "unknown kind");
    }

    #[test]
    fn direction_and_symmetry() {
        let _g = lock();
        configure("net.oneway", "a->b").unwrap();
        assert!(effects("a", "", Some("b"), "").severed);
        assert!(!effects("b", "", Some("a"), "").severed, "reverse is open");
        assert!(!effects_inbound("a", "", Some("b"), "").severed);
        assert!(effects_inbound("b", "", Some("a"), "").severed);
        configure("net.partition", "a<->c").unwrap();
        assert!(effects("a", "", Some("c"), "").severed);
        assert!(effects("c", "", Some("a"), "").severed);
    }

    #[test]
    fn aliases_resolve_addresses_to_labels() {
        let _g = lock();
        register_alias("127.0.0.1:9999", "b");
        configure("net.partition", "a<->b").unwrap();
        assert!(effects("a", "", None, "127.0.0.1:9999").severed);
        assert!(!effects("c", "", None, "127.0.0.1:9999").severed);
    }

    #[test]
    fn trigger_budget_depletes() {
        let _g = lock();
        configure("net.torn_write", "a->b*2").unwrap();
        assert!(effects("a", "", Some("b"), "").torn);
        assert!(effects("a", "", Some("b"), "").torn);
        assert!(!effects("a", "", Some("b"), "").torn, "budget spent");
        let status = list();
        assert_eq!(status.len(), 1);
        assert_eq!(status[0].triggered, 2);
        assert_eq!(status[0].hits, 3);
    }

    #[test]
    fn seeded_probability_is_deterministic() {
        let _g = lock();
        configure("net.reset", "50%a->b").unwrap();
        set_seed(42);
        let run1: Vec<bool> = (0..32)
            .map(|_| effects("a", "", Some("b"), "").reset)
            .collect();
        set_seed(42);
        let run2: Vec<bool> = (0..32)
            .map(|_| effects("a", "", Some("b"), "").reset)
            .collect();
        assert_eq!(run1, run2);
        assert!(run1.iter().any(|&b| b) && run1.iter().any(|&b| !b));
    }

    #[test]
    fn off_and_clear_remove() {
        let _g = lock();
        configure_str("net.partition=a<->b;net.dup=a->b").unwrap();
        assert_eq!(list().len(), 2);
        configure("net.dup", "off").unwrap();
        assert_eq!(list().len(), 1);
        clear();
        assert!(list().is_empty());
        assert!(!effects("a", "", Some("b"), "").severed);
    }
}
