//! The reconnecting client: bounded, jittered redial over [`NetConn`].
//!
//! Cluster code that "retries until it works" is how outages turn into
//! thundering herds; a [`Dialer`] makes the retry policy explicit — a
//! connect timeout per attempt, read/write timeouts applied to the won
//! connection, `intensio_fault::Backoff` jitter between attempts, and a
//! total attempt budget after which the caller gets the last error and
//! must decide for itself.

use crate::{connect_timeout, NetConn};
use std::time::Duration;

/// Timeouts and retry policy for a [`Dialer`].
#[derive(Debug, Clone)]
pub struct DialConfig {
    /// Per-attempt connect bound.
    pub connect_timeout: Duration,
    /// Applied to the connection once established (`None`: blocking).
    pub read_timeout: Option<Duration>,
    /// Applied to the connection once established (`None`: blocking).
    pub write_timeout: Option<Duration>,
    /// Total connect attempts across the dialer's lifetime before
    /// [`Dialer::dial`] stops retrying.
    pub retry_budget: u32,
    /// First retry delay; doubles (with seeded jitter) up to the cap.
    pub backoff_initial: Duration,
    /// Retry delay ceiling.
    pub backoff_cap: Duration,
    /// Jitter seed, so drills redial deterministically.
    pub seed: u64,
}

impl Default for DialConfig {
    fn default() -> DialConfig {
        DialConfig {
            connect_timeout: Duration::from_secs(1),
            read_timeout: None,
            write_timeout: None,
            retry_budget: 8,
            backoff_initial: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            seed: 0,
        }
    }
}

/// A reconnecting client for one target address. Each [`Dialer::dial`]
/// call makes up to the *remaining* retry budget's worth of attempts,
/// sleeping a jittered backoff between them; a success resets the
/// backoff (but never refills the budget — reconnect storms stay
/// bounded for the dialer's lifetime).
#[derive(Debug)]
pub struct Dialer {
    label: String,
    addr: String,
    cfg: DialConfig,
    backoff: intensio_fault::Backoff,
    attempts_left: u32,
}

impl Dialer {
    /// A dialer for `addr`, dialing as `local_label`, with defaults.
    pub fn new(local_label: &str, addr: &str) -> Dialer {
        Dialer::with_config(local_label, addr, DialConfig::default())
    }

    /// A dialer with an explicit policy.
    pub fn with_config(local_label: &str, addr: &str, cfg: DialConfig) -> Dialer {
        let backoff = intensio_fault::Backoff::new(cfg.backoff_initial, cfg.backoff_cap, cfg.seed);
        let attempts_left = cfg.retry_budget.max(1);
        Dialer {
            label: local_label.to_string(),
            addr: addr.to_string(),
            cfg,
            backoff,
            attempts_left,
        }
    }

    /// The target address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Connect attempts left before [`Dialer::dial`] gives up.
    pub fn budget_left(&self) -> u32 {
        self.attempts_left
    }

    /// One bounded attempt, no backoff sleep and no budget spend on
    /// success; spends one attempt on failure.
    pub fn try_once(&mut self) -> std::io::Result<NetConn> {
        match connect_timeout(&self.label, &self.addr, self.cfg.connect_timeout) {
            Ok(conn) => {
                conn.set_read_timeout(self.cfg.read_timeout)?;
                conn.set_write_timeout(self.cfg.write_timeout)?;
                self.backoff.reset();
                Ok(conn)
            }
            Err(e) => {
                self.attempts_left = self.attempts_left.saturating_sub(1);
                Err(e)
            }
        }
    }

    /// Connect, retrying with jittered backoff until the total budget
    /// runs out; the final error is the last attempt's.
    pub fn dial(&mut self) -> std::io::Result<NetConn> {
        loop {
            match self.try_once() {
                Ok(conn) => return Ok(conn),
                Err(e) => {
                    if self.attempts_left == 0 {
                        return Err(std::io::Error::new(
                            e.kind(),
                            format!(
                                "retry budget exhausted dialing {} ({} attempts): {e}",
                                self.addr,
                                self.cfg.retry_budget.max(1)
                            ),
                        ));
                    }
                    std::thread::sleep(self.backoff.next_delay());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn dial_connects_to_a_live_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let mut dialer = Dialer::new("cli", &addr);
        assert!(dialer.dial().is_ok());
        assert_eq!(dialer.budget_left(), 8, "success spends no budget");
    }

    #[test]
    fn dial_exhausts_its_budget_against_a_dead_port() {
        // Bind-then-drop: the port is (very likely) refused, not filtered,
        // so each attempt fails fast.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let cfg = DialConfig {
            retry_budget: 3,
            backoff_initial: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            ..DialConfig::default()
        };
        let mut dialer = Dialer::with_config("cli", &addr, cfg);
        let err = dialer.dial().unwrap_err();
        assert!(err.to_string().contains("retry budget exhausted"), "{err}");
        assert_eq!(dialer.budget_left(), 0);
        // A later call fails immediately — the budget is for a lifetime.
        assert!(dialer.dial().is_err());
    }
}
